//! A toy Celeritas: Monte Carlo particle transport through a slab
//! geometry (paper §IV-D).
//!
//! The real Celeritas offloads Geant4 detector simulation to GPUs with a
//! 1:1 process–GPU mapping. What the paper needs from it is (a) a
//! fixed-work compute kernel driven by `.inp.json` input files and (b)
//! the device-binding convention: `HIP_VISIBLE_DEVICES=$(({%} - 1))
//! celer-sim {}`. Both are reproduced here; the kernel is a real random
//! walk, deterministic per seed, so outputs are assertable.

use htpar_simkit::stream_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One material slab the beam traverses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slab {
    /// Thickness in arbitrary length units.
    pub thickness: f64,
    /// Interaction probability per unit length.
    pub sigma: f64,
    /// Probability an interaction absorbs the particle (vs scatters,
    /// costing energy).
    pub absorption: f64,
}

/// A `celer-sim` input file (`*.inp.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CelerInput {
    /// Number of primary particles.
    pub primaries: u64,
    /// Initial particle energy (MeV).
    pub energy_mev: f64,
    /// Energy lost per scattering event (MeV).
    pub scatter_loss_mev: f64,
    /// Geometry: slabs traversed in order.
    pub geometry: Vec<Slab>,
    /// RNG seed.
    pub seed: u64,
}

impl CelerInput {
    /// A standard detector-ish benchmark input.
    pub fn benchmark(primaries: u64, seed: u64) -> CelerInput {
        CelerInput {
            primaries,
            energy_mev: 1000.0,
            scatter_loss_mev: 40.0,
            geometry: vec![
                Slab {
                    thickness: 1.0,
                    sigma: 0.3,
                    absorption: 0.1,
                },
                Slab {
                    thickness: 5.0,
                    sigma: 0.8,
                    absorption: 0.3,
                },
                Slab {
                    thickness: 2.0,
                    sigma: 1.5,
                    absorption: 0.6,
                },
            ],
            seed,
        }
    }

    /// Parse an `.inp.json` string. Every field is required; missing or
    /// mistyped fields are errors, as is non-JSON input.
    pub fn from_json(json: &str) -> Result<CelerInput, serde_json::Error> {
        let v = serde_json::from_str(json)?;
        let geometry = v
            .req_array("geometry")?
            .iter()
            .map(|slab| {
                Ok(Slab {
                    thickness: slab.req_f64("thickness")?,
                    sigma: slab.req_f64("sigma")?,
                    absorption: slab.req_f64("absorption")?,
                })
            })
            .collect::<Result<Vec<Slab>, serde_json::Error>>()?;
        Ok(CelerInput {
            primaries: v.req_u64("primaries")?,
            energy_mev: v.req_f64("energy_mev")?,
            scatter_loss_mev: v.req_f64("scatter_loss_mev")?,
            geometry,
            seed: v.req_u64("seed")?,
        })
    }

    /// Serialize to `.inp.json`.
    pub fn to_json(&self) -> String {
        use serde_json::Value;
        let geometry = Value::Array(
            self.geometry
                .iter()
                .map(|s| {
                    serde_json::json!({
                        "thickness": (s.thickness),
                        "sigma": (s.sigma),
                        "absorption": (s.absorption)
                    })
                })
                .collect(),
        );
        let mut root = std::collections::BTreeMap::new();
        root.insert("primaries".to_string(), Value::from(self.primaries));
        root.insert("energy_mev".to_string(), Value::from(self.energy_mev));
        root.insert(
            "scatter_loss_mev".to_string(),
            Value::from(self.scatter_loss_mev),
        );
        root.insert("geometry".to_string(), geometry);
        root.insert("seed".to_string(), Value::from(self.seed));
        serde_json::to_string_pretty(&Value::Object(root))
    }
}

/// Tally of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CelerOutput {
    pub primaries: u64,
    /// Particles absorbed per slab.
    pub absorbed_per_slab: Vec<u64>,
    /// Particles that exited the far side.
    pub transmitted: u64,
    /// Particles that ran out of energy mid-flight.
    pub stopped: u64,
    /// Total scattering events (the work measure).
    pub total_steps: u64,
    /// Energy deposited per slab (MeV): scatter losses plus the full
    /// remaining energy of particles absorbed or stopped there.
    pub energy_dep_per_slab_mev: Vec<f64>,
    /// Mean energy of transmitted particles (MeV).
    pub mean_exit_energy_mev: f64,
    /// Device the kernel executed on.
    pub device: u32,
}

/// Run the transport kernel on a (simulated) device.
///
/// The walk is real computation — each primary steps through the slab
/// stack sampling interaction distances — and fully deterministic given
/// `input.seed`, independent of the device.
pub fn run_sim(input: &CelerInput, device: u32) -> CelerOutput {
    let mut rng = stream_rng(input.seed, 0xCE1E_8175);
    let mut absorbed_per_slab = vec![0u64; input.geometry.len()];
    let mut energy_dep_per_slab_mev = vec![0f64; input.geometry.len()];
    let mut transmitted = 0u64;
    let mut stopped = 0u64;
    let mut total_steps = 0u64;
    let mut exit_energy_sum = 0.0f64;

    'primary: for _ in 0..input.primaries {
        let mut energy = input.energy_mev;
        for (i, slab) in input.geometry.iter().enumerate() {
            let mut depth = 0.0f64;
            loop {
                // Sample distance to next interaction: Exp(sigma).
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let step = if slab.sigma > 0.0 {
                    -u.ln() / slab.sigma
                } else {
                    f64::INFINITY
                };
                depth += step;
                if depth >= slab.thickness {
                    break; // crossed into the next slab
                }
                total_steps += 1;
                if rng.gen::<f64>() < slab.absorption {
                    absorbed_per_slab[i] += 1;
                    energy_dep_per_slab_mev[i] += energy;
                    continue 'primary;
                }
                let loss = input.scatter_loss_mev.min(energy);
                energy_dep_per_slab_mev[i] += loss;
                energy -= input.scatter_loss_mev;
                if energy <= 0.0 {
                    stopped += 1;
                    continue 'primary;
                }
            }
        }
        transmitted += 1;
        exit_energy_sum += energy;
    }

    CelerOutput {
        primaries: input.primaries,
        absorbed_per_slab,
        energy_dep_per_slab_mev,
        transmitted,
        stopped,
        total_steps,
        mean_exit_energy_mev: if transmitted > 0 {
            exit_energy_sum / transmitted as f64
        } else {
            0.0
        },
        device,
    }
}

/// Run every `.inp.json` under `dir` with a 1:1 process–GPU mapping
/// driven by slot numbers (the §IV-D execution line as a function), and
/// merge the tallies. Inputs are processed in sorted path order for
/// determinism. Returns `(merged output, per-device task counts)`.
pub fn run_input_dir(dir: &std::path::Path, gpus: u32) -> std::io::Result<(CelerOutput, Vec<u64>)> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.to_string_lossy().ends_with(".inp.json"))
        .collect();
    paths.sort();
    let gpus = gpus.max(1);
    let mut per_device = vec![0u64; gpus as usize];
    let mut merged: Option<CelerOutput> = None;
    for (i, path) in paths.iter().enumerate() {
        let device = (i as u32) % gpus; // slot cycling: {%}-1
        per_device[device as usize] += 1;
        let json = std::fs::read_to_string(path)?;
        let input = CelerInput::from_json(&json)
            .map_err(|e| std::io::Error::other(format!("{}: {e}", path.display())))?;
        let out = run_sim(&input, device);
        merged = Some(match merged {
            None => out,
            Some(acc) => merge_outputs(acc, out),
        });
    }
    let merged = merged.ok_or_else(|| std::io::Error::other("no .inp.json inputs found"))?;
    Ok((merged, per_device))
}

/// Merge two tallies (geometry lengths must match).
pub fn merge_outputs(a: CelerOutput, b: CelerOutput) -> CelerOutput {
    assert_eq!(
        a.absorbed_per_slab.len(),
        b.absorbed_per_slab.len(),
        "geometries must match to merge"
    );
    let transmitted = a.transmitted + b.transmitted;
    let exit_energy_sum = a.mean_exit_energy_mev * a.transmitted as f64
        + b.mean_exit_energy_mev * b.transmitted as f64;
    CelerOutput {
        primaries: a.primaries + b.primaries,
        absorbed_per_slab: a
            .absorbed_per_slab
            .iter()
            .zip(&b.absorbed_per_slab)
            .map(|(x, y)| x + y)
            .collect(),
        energy_dep_per_slab_mev: a
            .energy_dep_per_slab_mev
            .iter()
            .zip(&b.energy_dep_per_slab_mev)
            .map(|(x, y)| x + y)
            .collect(),
        transmitted,
        stopped: a.stopped + b.stopped,
        total_steps: a.total_steps + b.total_steps,
        mean_exit_energy_mev: if transmitted > 0 {
            exit_energy_sum / transmitted as f64
        } else {
            0.0
        },
        device: a.device,
    }
}

/// The paper's GPU-isolation binding: slot `{%}` (1-based) → device
/// `slot - 1`, exported as `HIP_VISIBLE_DEVICES`.
pub fn device_for_slot(slot: usize) -> u32 {
    slot.saturating_sub(1) as u32
}

/// Parse a `HIP_VISIBLE_DEVICES`-style value into the bound device.
pub fn device_from_env(value: &str) -> Option<u32> {
    value.split(',').next()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let input = CelerInput::benchmark(1000, 7);
        let parsed = CelerInput::from_json(&input.to_json()).unwrap();
        assert_eq!(parsed, input);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(CelerInput::from_json("{}").is_err());
        assert!(CelerInput::from_json("not json").is_err());
    }

    #[test]
    fn simulation_is_deterministic_and_device_independent() {
        let input = CelerInput::benchmark(5_000, 3);
        let a = run_sim(&input, 0);
        let b = run_sim(&input, 5);
        assert_eq!(a.transmitted, b.transmitted);
        assert_eq!(a.absorbed_per_slab, b.absorbed_per_slab);
        assert_eq!(a.total_steps, b.total_steps);
        assert_eq!(a.device, 0);
        assert_eq!(b.device, 5);
    }

    #[test]
    fn particles_are_conserved() {
        let input = CelerInput::benchmark(10_000, 1);
        let out = run_sim(&input, 0);
        let absorbed: u64 = out.absorbed_per_slab.iter().sum();
        assert_eq!(absorbed + out.transmitted + out.stopped, input.primaries);
    }

    #[test]
    fn denser_slabs_absorb_more() {
        let thin = CelerInput {
            geometry: vec![Slab {
                thickness: 1.0,
                sigma: 0.1,
                absorption: 0.5,
            }],
            ..CelerInput::benchmark(20_000, 2)
        };
        let thick = CelerInput {
            geometry: vec![Slab {
                thickness: 1.0,
                sigma: 3.0,
                absorption: 0.5,
            }],
            ..CelerInput::benchmark(20_000, 2)
        };
        let t_thin = run_sim(&thin, 0).transmitted;
        let t_thick = run_sim(&thick, 0).transmitted;
        assert!(t_thin > 2 * t_thick, "{t_thin} vs {t_thick}");
    }

    #[test]
    fn transmitted_lose_energy_to_scattering() {
        let input = CelerInput::benchmark(20_000, 4);
        let out = run_sim(&input, 0);
        assert!(out.transmitted > 0);
        assert!(out.mean_exit_energy_mev < input.energy_mev);
        assert!(out.mean_exit_energy_mev > 0.0);
    }

    #[test]
    fn energy_is_conserved() {
        // Energy in = energy deposited + energy carried out by
        // transmitted particles.
        let input = CelerInput::benchmark(10_000, 8);
        let out = run_sim(&input, 0);
        let total_in = input.primaries as f64 * input.energy_mev;
        let deposited: f64 = out.energy_dep_per_slab_mev.iter().sum();
        let carried_out = out.mean_exit_energy_mev * out.transmitted as f64;
        let accounted = deposited + carried_out;
        assert!(
            (accounted - total_in).abs() / total_in < 1e-9,
            "in {total_in} vs accounted {accounted}"
        );
    }

    #[test]
    fn dense_slabs_absorb_the_most_energy() {
        let input = CelerInput::benchmark(20_000, 9);
        let out = run_sim(&input, 0);
        // The third slab (σ=1.5, absorption 0.6) is the calorimeter; it
        // sees fewer particles but the middle slab (σ=0.8 over 5 units)
        // does the most scattering. Just assert every slab deposited
        // something and the totals are positive and finite.
        assert!(out
            .energy_dep_per_slab_mev
            .iter()
            .all(|&e| e > 0.0 && e.is_finite()));
    }

    #[test]
    fn vacuum_transmits_everything() {
        let input = CelerInput {
            geometry: vec![Slab {
                thickness: 10.0,
                sigma: 0.0,
                absorption: 0.0,
            }],
            ..CelerInput::benchmark(1_000, 5)
        };
        let out = run_sim(&input, 0);
        assert_eq!(out.transmitted, 1_000);
        assert_eq!(out.total_steps, 0);
        assert_eq!(out.mean_exit_energy_mev, input.energy_mev);
    }

    #[test]
    fn slot_to_device_binding() {
        // parallel -j8: slots 1..=8 → devices 0..=7.
        let devices: Vec<u32> = (1..=8).map(device_for_slot).collect();
        assert_eq!(devices, (0..8).collect::<Vec<_>>());
        assert_eq!(device_for_slot(0), 0, "degenerate slot clamps");
    }

    #[test]
    fn env_parsing() {
        assert_eq!(device_from_env("3"), Some(3));
        assert_eq!(device_from_env("2,3,4"), Some(2));
        assert_eq!(device_from_env(" 1 "), Some(1));
        assert_eq!(device_from_env("gpu0"), None);
        assert_eq!(device_from_env(""), None);
    }

    #[test]
    fn input_dir_runs_and_merges() {
        let dir = std::env::temp_dir().join(format!("htpar-celer-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut expect_primaries = 0;
        for i in 0..12u64 {
            let input = CelerInput::benchmark(1_000 + i, i);
            expect_primaries += input.primaries;
            std::fs::write(dir.join(format!("run{i:02}.inp.json")), input.to_json()).unwrap();
        }
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let (merged, per_device) = run_input_dir(&dir, 8).unwrap();
        assert_eq!(merged.primaries, expect_primaries);
        let absorbed: u64 = merged.absorbed_per_slab.iter().sum();
        assert_eq!(
            absorbed + merged.transmitted + merged.stopped,
            merged.primaries
        );
        assert_eq!(per_device.iter().sum::<u64>(), 12);
        // 12 tasks over 8 devices: 4 devices get 2, 4 get 1.
        assert_eq!(per_device.iter().filter(|&&n| n == 2).count(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn input_dir_empty_errors() {
        let dir = std::env::temp_dir().join(format!("htpar-celer-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(run_input_dir(&dir, 8).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_is_consistent_with_concatenation() {
        let a = run_sim(&CelerInput::benchmark(3_000, 1), 0);
        let b = run_sim(&CelerInput::benchmark(2_000, 2), 1);
        let m = merge_outputs(a.clone(), b.clone());
        assert_eq!(m.primaries, 5_000);
        assert_eq!(m.total_steps, a.total_steps + b.total_steps);
        let dep: f64 = m.energy_dep_per_slab_mev.iter().sum();
        let dep_ab: f64 = a
            .energy_dep_per_slab_mev
            .iter()
            .chain(&b.energy_dep_per_slab_mev)
            .sum();
        assert!((dep - dep_ab).abs() < 1e-9);
    }

    #[test]
    fn work_scales_with_primaries() {
        let small = run_sim(&CelerInput::benchmark(1_000, 6), 0);
        let large = run_sim(&CelerInput::benchmark(10_000, 6), 0);
        let ratio = large.total_steps as f64 / small.total_steps as f64;
        assert!(ratio > 8.0 && ratio < 12.0, "ratio {ratio}");
    }
}
