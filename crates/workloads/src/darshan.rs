//! Synthetic Darshan I/O characterization logs (paper §IV-B).
//!
//! Darshan records per-job, per-module I/O counters. The archived Summit
//! dataset the paper processes spans five years of such logs, organized
//! by month and application. This module provides:
//!
//! - a deterministic generator of plausible logs,
//! - a line-oriented serialization + parser (the role of
//!   `darshan-parser`),
//! - the aggregation the paper's `darshan_arch.py <month> <app>` step
//!   performs: per-(month, app) I/O summaries.

use htpar_simkit::{stream_rng, Dist};
use serde::{Deserialize, Serialize};

/// Instrumented I/O modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Module {
    Posix,
    MpiIo,
    Stdio,
}

impl Module {
    const ALL: [Module; 3] = [Module::Posix, Module::MpiIo, Module::Stdio];

    fn tag(self) -> &'static str {
        match self {
            Module::Posix => "POSIX",
            Module::MpiIo => "MPIIO",
            Module::Stdio => "STDIO",
        }
    }

    fn from_tag(s: &str) -> Option<Module> {
        match s {
            "POSIX" => Some(Module::Posix),
            "MPIIO" => Some(Module::MpiIo),
            "STDIO" => Some(Module::Stdio),
            _ => None,
        }
    }
}

/// Counters for one module within one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleRecord {
    pub module: Module,
    pub opens: u64,
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub files: u64,
}

/// One job's Darshan log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DarshanLog {
    pub job_id: u64,
    /// Application executable name.
    pub app: String,
    /// 1-based month index within the archive.
    pub month: u32,
    pub nprocs: u32,
    pub runtime_secs: u64,
    pub records: Vec<ModuleRecord>,
}

impl DarshanLog {
    /// Generate a plausible log, deterministic in `(seed, job_id)`.
    pub fn generate(seed: u64, job_id: u64, month: u32, app: &str) -> DarshanLog {
        let mut rng = stream_rng(seed, job_id);
        let nprocs = [1u32, 8, 64, 512, 4096][(job_id % 5) as usize];
        let io_scale = Dist::lognormal_median(1e9, 1.5);
        let mut records = Vec::new();
        for module in Module::ALL {
            let bytes_read = io_scale.sample(&mut rng) as u64;
            let bytes_written = io_scale.sample(&mut rng) as u64 / 4;
            let files = 1 + (bytes_read / 100_000_000).min(10_000);
            records.push(ModuleRecord {
                module,
                opens: files * 2,
                reads: bytes_read / 65_536,
                writes: bytes_written / 65_536,
                bytes_read,
                bytes_written,
                files,
            });
        }
        DarshanLog {
            job_id,
            app: app.to_string(),
            month,
            nprocs,
            runtime_secs: 60 + job_id % 86_400,
            records,
        }
    }

    /// Serialize in the line-oriented text form (the stand-in for
    /// `darshan-parser` output).
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "#darshan jobid={} app={} month={} nprocs={} runtime={}\n",
            self.job_id, self.app, self.month, self.nprocs, self.runtime_secs
        );
        for r in &self.records {
            out.push_str(&format!(
                "{} opens={} reads={} writes={} bytes_read={} bytes_written={} files={}\n",
                r.module.tag(),
                r.opens,
                r.reads,
                r.writes,
                r.bytes_read,
                r.bytes_written,
                r.files
            ));
        }
        out
    }

    /// Parse the text form back.
    pub fn parse(text: &str) -> Result<DarshanLog, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty log")?;
        let header = header
            .strip_prefix("#darshan ")
            .ok_or("missing #darshan header")?;
        let mut job_id = None;
        let mut app = None;
        let mut month = None;
        let mut nprocs = None;
        let mut runtime = None;
        for field in header.split_whitespace() {
            let (k, v) = field.split_once('=').ok_or("bad header field")?;
            match k {
                "jobid" => job_id = Some(v.parse().map_err(|_| "bad jobid")?),
                "app" => app = Some(v.to_string()),
                "month" => month = Some(v.parse().map_err(|_| "bad month")?),
                "nprocs" => nprocs = Some(v.parse().map_err(|_| "bad nprocs")?),
                "runtime" => runtime = Some(v.parse().map_err(|_| "bad runtime")?),
                _ => return Err(format!("unknown header field {k}")),
            }
        }
        let mut records = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let module =
                Module::from_tag(parts.next().ok_or("empty record")?).ok_or("unknown module")?;
            let mut get = |name: &str| -> Result<u64, String> {
                let field = parts.next().ok_or(format!("missing {name}"))?;
                let (k, v) = field.split_once('=').ok_or("bad record field")?;
                if k != name {
                    return Err(format!("expected {name}, got {k}"));
                }
                v.parse().map_err(|_| format!("bad {name}"))
            };
            records.push(ModuleRecord {
                module,
                opens: get("opens")?,
                reads: get("reads")?,
                writes: get("writes")?,
                bytes_read: get("bytes_read")?,
                bytes_written: get("bytes_written")?,
                files: get("files")?,
            });
        }
        Ok(DarshanLog {
            job_id: job_id.ok_or("missing jobid")?,
            app: app.ok_or("missing app")?,
            month: month.ok_or("missing month")?,
            nprocs: nprocs.ok_or("missing nprocs")?,
            runtime_secs: runtime.ok_or("missing runtime")?,
            records,
        })
    }

    /// Total bytes moved by the job (read + written, all modules).
    pub fn total_bytes(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.bytes_read + r.bytes_written)
            .sum()
    }
}

/// Aggregated I/O behaviour of a (month, app) slice of the archive —
/// what one `darshan_arch.py <month> <app>` task produces.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoSummary {
    pub jobs: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub opens: u64,
    pub files: u64,
    pub proc_hours: u64,
}

impl IoSummary {
    /// Fold one log into the summary.
    pub fn add(&mut self, log: &DarshanLog) {
        self.jobs += 1;
        self.proc_hours += log.nprocs as u64 * log.runtime_secs / 3600;
        for r in &log.records {
            self.bytes_read += r.bytes_read;
            self.bytes_written += r.bytes_written;
            self.opens += r.opens;
            self.files += r.files;
        }
    }

    /// Aggregate a batch of logs.
    pub fn of<'a, I: IntoIterator<Item = &'a DarshanLog>>(logs: I) -> IoSummary {
        let mut s = IoSummary::default();
        for log in logs {
            s.add(log);
        }
        s
    }

    /// Read/write ratio (∞-safe).
    pub fn read_write_ratio(&self) -> f64 {
        if self.bytes_written == 0 {
            f64::INFINITY
        } else {
            self.bytes_read as f64 / self.bytes_written as f64
        }
    }
}

/// Generate one month×app archive slice of `jobs` logs.
pub fn generate_archive_slice(seed: u64, month: u32, app: &str, jobs: u64) -> Vec<DarshanLog> {
    (0..jobs)
        .map(|i| {
            DarshanLog::generate(
                seed ^ (month as u64) << 32,
                i * 100 + month as u64,
                month,
                app,
            )
        })
        .collect()
}

/// Write a slice of logs to a directory, one `.darshan.txt` file per
/// log — the on-disk form the staged NVMe pipeline moves between tiers.
pub fn write_slice_to_dir(
    dir: &std::path::Path,
    logs: &[DarshanLog],
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(logs.len());
    for log in logs {
        let path = dir.join(format!("job{:08}.darshan.txt", log.job_id));
        std::fs::write(&path, log.to_text())?;
        paths.push(path);
    }
    Ok(paths)
}

/// Parse every `.darshan.txt` under a directory (sorted for
/// determinism).
pub fn read_slice_from_dir(dir: &std::path::Path) -> std::io::Result<Vec<DarshanLog>> {
    let mut names: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    names.sort();
    let mut logs = Vec::with_capacity(names.len());
    for path in names {
        let text = std::fs::read_to_string(&path)?;
        let log = DarshanLog::parse(&text).map_err(std::io::Error::other)?;
        logs.push(log);
    }
    Ok(logs)
}

/// Process a directory of logs into an [`IoSummary`] — the work one
/// pipeline "process" stage does.
pub fn process_dir(dir: &std::path::Path) -> std::io::Result<IoSummary> {
    Ok(IoSummary::of(&read_slice_from_dir(dir)?))
}

/// The paper's invocation grid: months 1..=12 × apps 0..=2 (listing 5:
/// `parallel -j36 python3 ./darshan_arch.py ::: {1..12} ::: {0..2}`).
pub fn paper_task_grid() -> Vec<(u32, u32)> {
    let mut grid = Vec::with_capacity(36);
    for month in 1..=12u32 {
        for app in 0..=2u32 {
            grid.push((month, app));
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = DarshanLog::generate(1, 42, 3, "vasp");
        let b = DarshanLog::generate(1, 42, 3, "vasp");
        assert_eq!(a, b);
        let c = DarshanLog::generate(2, 42, 3, "vasp");
        assert_ne!(a, c);
    }

    #[test]
    fn text_round_trips() {
        let log = DarshanLog::generate(7, 123, 6, "lammps");
        let parsed = DarshanLog::parse(&log.to_text()).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(DarshanLog::parse("").is_err());
        assert!(DarshanLog::parse("not a log").is_err());
        assert!(DarshanLog::parse(
            "#darshan jobid=1 app=x month=1 nprocs=1 runtime=1\nBOGUS opens=1"
        )
        .is_err());
        assert!(DarshanLog::parse("#darshan jobid=nope app=x month=1 nprocs=1 runtime=1").is_err());
    }

    #[test]
    fn parse_requires_all_header_fields() {
        assert!(DarshanLog::parse("#darshan jobid=1 app=x month=1 nprocs=4").is_err());
    }

    #[test]
    fn all_modules_present() {
        let log = DarshanLog::generate(1, 1, 1, "a");
        assert_eq!(log.records.len(), 3);
        let tags: Vec<&str> = log.records.iter().map(|r| r.module.tag()).collect();
        assert_eq!(tags, vec!["POSIX", "MPIIO", "STDIO"]);
    }

    #[test]
    fn summary_accumulates() {
        let logs = generate_archive_slice(5, 2, "gromacs", 100);
        let summary = IoSummary::of(&logs);
        assert_eq!(summary.jobs, 100);
        assert!(summary.bytes_read > 0);
        assert!(
            summary.read_write_ratio() > 1.0,
            "reads dominate by construction"
        );
        // Summing two halves equals the whole.
        let first = IoSummary::of(&logs[..50]);
        let second = IoSummary::of(&logs[50..]);
        assert_eq!(first.jobs + second.jobs, summary.jobs);
        assert_eq!(first.bytes_read + second.bytes_read, summary.bytes_read);
    }

    #[test]
    fn task_grid_is_12_by_3() {
        let grid = paper_task_grid();
        assert_eq!(grid.len(), 36);
        assert_eq!(grid[0], (1, 0));
        assert_eq!(grid[35], (12, 2));
    }

    #[test]
    fn disk_round_trip_and_process_dir() {
        let dir = std::env::temp_dir().join(format!("htpar-darshan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let logs = generate_archive_slice(4, 7, "namd", 25);
        let paths = write_slice_to_dir(&dir, &logs).unwrap();
        assert_eq!(paths.len(), 25);
        let back = read_slice_from_dir(&dir).unwrap();
        assert_eq!(back.len(), 25);
        let direct = IoSummary::of(&logs);
        assert_eq!(process_dir(&dir).unwrap(), direct);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_slice_rejects_corrupt_files() {
        let dir = std::env::temp_dir().join(format!("htpar-darshan-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.darshan.txt"), "not a log").unwrap();
        assert!(read_slice_from_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn total_bytes_sums_modules() {
        let log = DarshanLog::generate(1, 9, 1, "x");
        let manual: u64 = log
            .records
            .iter()
            .map(|r| r.bytes_read + r.bytes_written)
            .sum();
        assert_eq!(log.total_bytes(), manual);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn round_trip_any_generated(seed in 0u64..1000, job in 0u64..1000) {
                let log = DarshanLog::generate(seed, job, (job % 12 + 1) as u32, "app");
                prop_assert_eq!(DarshanLog::parse(&log.to_text()).unwrap(), log);
            }
        }
    }
}
