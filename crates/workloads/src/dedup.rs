//! Near-duplicate detection for corpus curation (FORGE §IV-C).
//!
//! Publication dumps are full of near-duplicates — preprints vs camera-
//! ready, mirrored records, versioned abstracts — and training an LLM on
//! duplicated text wastes compute and skews the model. The standard
//! curation step is MinHash: hash each document's word shingles, keep a
//! fixed-size signature of per-permutation minima, and estimate Jaccard
//! similarity as the fraction of matching signature slots.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::forge::CleanDocument;

/// Number of hash permutations in a signature.
pub const SIGNATURE_SIZE: usize = 64;

/// A MinHash signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature(Vec<u64>);

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash_str(s: &str, seed: u64) -> u64 {
    let mut h = seed ^ 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h = splitmix(h ^ *b as u64);
    }
    h
}

/// The set of `k`-word shingle hashes of a text (lowercased words).
pub fn shingles(text: &str, k: usize) -> BTreeSet<u64> {
    let k = k.max(1);
    let words: Vec<String> = text.split_whitespace().map(|w| w.to_lowercase()).collect();
    let mut out = BTreeSet::new();
    if words.len() < k {
        if !words.is_empty() {
            out.insert(hash_str(&words.join(" "), 0));
        }
        return out;
    }
    for window in words.windows(k) {
        out.insert(hash_str(&window.join(" "), 0));
    }
    out
}

/// Exact Jaccard similarity of two shingle sets.
pub fn jaccard(a: &BTreeSet<u64>, b: &BTreeSet<u64>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

impl Signature {
    /// MinHash a shingle set.
    pub fn of(shingles: &BTreeSet<u64>) -> Signature {
        let mut mins = vec![u64::MAX; SIGNATURE_SIZE];
        for &sh in shingles {
            for (i, slot) in mins.iter_mut().enumerate() {
                let h = splitmix(sh ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407));
                if h < *slot {
                    *slot = h;
                }
            }
        }
        Signature(mins)
    }

    /// Estimated Jaccard similarity: matching-slot fraction.
    pub fn similarity(&self, other: &Signature) -> f64 {
        let matching = self.0.iter().zip(&other.0).filter(|(a, b)| a == b).count();
        matching as f64 / SIGNATURE_SIZE as f64
    }
}

/// Outcome of deduplicating a corpus shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DedupReport {
    /// Ids kept, in input order.
    pub kept: Vec<u64>,
    /// `(dropped id, kept id it duplicated)` pairs.
    pub dropped: Vec<(u64, u64)>,
}

/// Drop documents whose estimated similarity to an earlier kept document
/// reaches `threshold` (first occurrence wins). Pairwise comparison —
/// fine for per-shard deduplication inside a parallel map; production
/// systems add LSH banding on top of the same signatures.
pub fn dedup_documents(docs: &[CleanDocument], threshold: f64) -> DedupReport {
    let threshold = threshold.clamp(0.0, 1.0);
    let mut kept: Vec<(u64, Signature)> = Vec::new();
    let mut report = DedupReport {
        kept: Vec::new(),
        dropped: Vec::new(),
    };
    for doc in docs {
        let text = format!("{} {}", doc.abstract_text, doc.full_text);
        let sig = Signature::of(&shingles(&text, 3));
        match kept
            .iter()
            .find(|(_, existing)| existing.similarity(&sig) >= threshold)
        {
            Some((original, _)) => report.dropped.push((doc.id, *original)),
            None => {
                report.kept.push(doc.id);
                kept.push((doc.id, sig));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forge::{generate_corpus, preprocess};

    fn doc(id: u64, text: &str) -> CleanDocument {
        CleanDocument {
            id,
            title: format!("t{id}"),
            abstract_text: text.to_string(),
            full_text: String::new(),
            tokens: text.split_whitespace().count() as u64,
        }
    }

    const BASE: &str = "the spectral analysis of the detector response shows a clear resonance \
peak at the expected energy with systematic uncertainties dominated by calibration drift over \
the run period and statistical errors well controlled by the large sample";

    #[test]
    fn shingle_basics() {
        let s = shingles("a b c d", 2);
        assert_eq!(s.len(), 3); // ab bc cd
        assert_eq!(shingles("", 2).len(), 0);
        assert_eq!(shingles("one", 3).len(), 1, "short text hashes whole");
        // Case-insensitive.
        assert_eq!(shingles("A B C", 2), shingles("a b c", 2));
    }

    #[test]
    fn jaccard_bounds() {
        let a = shingles(BASE, 3);
        assert_eq!(jaccard(&a, &a), 1.0);
        let b = shingles(
            "completely different words entirely unrelated content here",
            3,
        );
        assert_eq!(jaccard(&a, &b), 0.0);
        let empty = BTreeSet::new();
        assert_eq!(jaccard(&empty, &empty), 1.0);
        assert_eq!(jaccard(&a, &empty), 0.0);
    }

    #[test]
    fn minhash_tracks_exact_jaccard() {
        // Perturb the base text progressively; the estimate follows.
        let a = shingles(BASE, 3);
        let slightly = format!("{BASE} with one extra trailing clause added");
        let b = shingles(&slightly, 3);
        let exact = jaccard(&a, &b);
        let est = Signature::of(&a).similarity(&Signature::of(&b));
        assert!((est - exact).abs() < 0.2, "exact {exact} est {est}");
        assert!(est > 0.5, "near-duplicates score high: {est}");
    }

    #[test]
    fn identical_docs_dedup() {
        let docs = vec![
            doc(1, BASE),
            doc(2, BASE),
            doc(3, "something else entirely different"),
        ];
        let report = dedup_documents(&docs, 0.8);
        assert_eq!(report.kept, vec![1, 3]);
        assert_eq!(report.dropped, vec![(2, 1)]);
    }

    #[test]
    fn near_duplicates_dedup_but_distinct_survive() {
        let near = format!("{BASE} v2");
        let docs = vec![
            doc(1, BASE),
            doc(2, &near),
            doc(3, "the gravitational wave strain data from the interferometer shows no candidate events above threshold in this observing run"),
        ];
        let report = dedup_documents(&docs, 0.6);
        assert_eq!(report.kept, vec![1, 3]);
        assert_eq!(report.dropped.len(), 1);
    }

    #[test]
    fn threshold_one_keeps_everything_distinct() {
        let docs = vec![doc(1, BASE), doc(2, &format!("{BASE} tail"))];
        let report = dedup_documents(&docs, 1.0);
        assert_eq!(report.kept.len(), 2);
    }

    #[test]
    fn synthetic_corpus_has_no_false_positives_at_high_threshold() {
        // The generator draws random word soups: long documents rarely
        // collide at a 0.9 threshold.
        let raw = generate_corpus(21, 300);
        let docs: Vec<CleanDocument> = raw.iter().filter_map(|d| preprocess(d).ok()).collect();
        let report = dedup_documents(&docs, 0.9);
        let drop_rate = report.dropped.len() as f64 / docs.len() as f64;
        assert!(drop_rate < 0.05, "false-positive rate {drop_rate}");
        assert_eq!(report.kept.len() + report.dropped.len(), docs.len());
    }

    #[test]
    fn first_occurrence_wins() {
        let docs = vec![doc(9, BASE), doc(4, BASE), doc(2, BASE)];
        let report = dedup_documents(&docs, 0.9);
        assert_eq!(report.kept, vec![9]);
        assert_eq!(report.dropped, vec![(4, 9), (2, 9)]);
    }
}
