//! WfBench-style synthetic task graphs (paper §II, ref \[7\]).
//!
//! The benchmarking study the paper positions itself against measured
//! WMS orchestration overhead by running workflows whose tasks do no
//! work ("no data transfers and no computation — just launching the
//! tasks"). These generators produce those graphs: bags of tasks,
//! chains, fork–joins, and a BLAST-like split–process–merge shape.

use htpar_simkit::{stream_rng, Dist};
use serde::{Deserialize, Serialize};

/// One task in a workflow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    pub id: u32,
    /// Indices of tasks that must finish first.
    pub deps: Vec<u32>,
    /// Compute time of the task itself, seconds (0 for pure-launch
    /// overhead benchmarks).
    pub runtime_secs: f64,
    /// Input bytes staged before the task runs.
    pub input_bytes: u64,
    /// Output bytes produced.
    pub output_bytes: u64,
}

/// A workflow: tasks with dependencies forming a DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    pub name: String,
    pub tasks: Vec<TaskSpec>,
}

impl Workflow {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the workflow is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Validate the dependency structure: indices in range, acyclic
    /// (deps always point at lower ids — all generators build
    /// topologically).
    pub fn validate(&self) -> Result<(), String> {
        for task in &self.tasks {
            for &d in &task.deps {
                if d >= task.id {
                    return Err(format!("task {} depends on non-earlier {d}", task.id));
                }
                if d as usize >= self.tasks.len() {
                    return Err(format!("task {} depends on missing {d}", task.id));
                }
            }
        }
        Ok(())
    }

    /// Tasks with no dependencies.
    pub fn roots(&self) -> Vec<u32> {
        self.tasks
            .iter()
            .filter(|t| t.deps.is_empty())
            .map(|t| t.id)
            .collect()
    }

    /// Length of the longest dependency chain (critical path by hops).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.tasks.len()];
        for task in &self.tasks {
            let d = task
                .deps
                .iter()
                .map(|&d| depth[d as usize] + 1)
                .max()
                .unwrap_or(1);
            depth[task.id as usize] = d;
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// Total compute seconds across tasks.
    pub fn total_work_secs(&self) -> f64 {
        self.tasks.iter().map(|t| t.runtime_secs).sum()
    }
}

/// An embarrassingly parallel bag of `n` tasks.
pub fn bag_of_tasks(n: u32, runtime: &Dist, seed: u64) -> Workflow {
    let mut rng = stream_rng(seed, 0xBA6);
    Workflow {
        name: format!("bag-{n}"),
        tasks: (0..n)
            .map(|id| TaskSpec {
                id,
                deps: vec![],
                runtime_secs: runtime.sample(&mut rng),
                input_bytes: 0,
                output_bytes: 0,
            })
            .collect(),
    }
}

/// A strict chain of `n` tasks.
pub fn chain(n: u32, runtime: &Dist, seed: u64) -> Workflow {
    let mut rng = stream_rng(seed, 0xC4A1);
    Workflow {
        name: format!("chain-{n}"),
        tasks: (0..n)
            .map(|id| TaskSpec {
                id,
                deps: if id == 0 { vec![] } else { vec![id - 1] },
                runtime_secs: runtime.sample(&mut rng),
                input_bytes: 0,
                output_bytes: 0,
            })
            .collect(),
    }
}

/// `depth` sequential stages of `width` parallel tasks with full
/// barriers between stages.
pub fn fork_join(width: u32, depth: u32, runtime: &Dist, seed: u64) -> Workflow {
    let mut rng = stream_rng(seed, 0xF02C);
    let mut tasks = Vec::new();
    let mut prev_stage: Vec<u32> = Vec::new();
    let mut next_id = 0u32;
    for _ in 0..depth {
        let mut stage = Vec::new();
        for _ in 0..width {
            tasks.push(TaskSpec {
                id: next_id,
                deps: prev_stage.clone(),
                runtime_secs: runtime.sample(&mut rng),
                input_bytes: 0,
                output_bytes: 0,
            });
            stage.push(next_id);
            next_id += 1;
        }
        prev_stage = stage;
    }
    Workflow {
        name: format!("forkjoin-{width}x{depth}"),
        tasks,
    }
}

/// BLAST-like shape (the workflow from the study's worst case): one
/// split task fans out to `n` search tasks which merge into one result.
pub fn blast_like(n: u32, runtime: &Dist, seed: u64) -> Workflow {
    let mut rng = stream_rng(seed, 0xB1A57);
    let mut tasks = vec![TaskSpec {
        id: 0,
        deps: vec![],
        runtime_secs: runtime.sample(&mut rng),
        input_bytes: 1 << 30,
        output_bytes: 1 << 20,
    }];
    for i in 0..n {
        tasks.push(TaskSpec {
            id: i + 1,
            deps: vec![0],
            runtime_secs: runtime.sample(&mut rng),
            input_bytes: 1 << 20,
            output_bytes: 1 << 16,
        });
    }
    tasks.push(TaskSpec {
        id: n + 1,
        deps: (1..=n).collect(),
        runtime_secs: runtime.sample(&mut rng),
        input_bytes: (n as u64) << 16,
        output_bytes: 1 << 20,
    });
    Workflow {
        name: format!("blast-{n}"),
        tasks,
    }
}

/// The pure-launch benchmark of the study: `n` no-op tasks.
pub fn launch_only(n: u32) -> Workflow {
    bag_of_tasks(n, &Dist::constant(0.0), 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> Dist {
        Dist::Uniform { lo: 1.0, hi: 5.0 }
    }

    #[test]
    fn bag_shape() {
        let w = bag_of_tasks(100, &runtime(), 1);
        assert_eq!(w.len(), 100);
        w.validate().unwrap();
        assert_eq!(w.roots().len(), 100);
        assert_eq!(w.depth(), 1);
    }

    #[test]
    fn chain_shape() {
        let w = chain(50, &runtime(), 1);
        w.validate().unwrap();
        assert_eq!(w.roots(), vec![0]);
        assert_eq!(w.depth(), 50);
    }

    #[test]
    fn fork_join_shape() {
        let w = fork_join(8, 4, &runtime(), 1);
        assert_eq!(w.len(), 32);
        w.validate().unwrap();
        assert_eq!(w.roots().len(), 8);
        assert_eq!(w.depth(), 4);
        // Stage-2 tasks depend on all 8 stage-1 tasks.
        assert_eq!(w.tasks[8].deps.len(), 8);
    }

    #[test]
    fn blast_shape() {
        let w = blast_like(100, &runtime(), 1);
        assert_eq!(w.len(), 102);
        w.validate().unwrap();
        assert_eq!(w.roots(), vec![0]);
        assert_eq!(w.depth(), 3);
        assert_eq!(w.tasks.last().unwrap().deps.len(), 100);
    }

    #[test]
    fn launch_only_has_zero_work() {
        let w = launch_only(1000);
        assert_eq!(w.total_work_secs(), 0.0);
        assert_eq!(w.len(), 1000);
    }

    #[test]
    fn validate_catches_bad_deps() {
        let w = Workflow {
            name: "bad".into(),
            tasks: vec![TaskSpec {
                id: 0,
                deps: vec![0],
                runtime_secs: 0.0,
                input_bytes: 0,
                output_bytes: 0,
            }],
        };
        assert!(w.validate().is_err());
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            bag_of_tasks(10, &runtime(), 5),
            bag_of_tasks(10, &runtime(), 5)
        );
        assert_ne!(
            bag_of_tasks(10, &runtime(), 5),
            bag_of_tasks(10, &runtime(), 6)
        );
    }

    #[test]
    fn total_work_sums() {
        let w = bag_of_tasks(10, &Dist::constant(2.0), 1);
        assert!((w.total_work_secs() - 20.0).abs() < 1e-9);
    }
}
