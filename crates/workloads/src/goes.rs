//! Mock GOES-16 imagery and the `convert` cloud-fraction analysis
//! (paper §IV-A).
//!
//! The paper's fetch stage downloads GEOCOLOR sector images for eight
//! regions every 30 seconds; the process stage runs ImageMagick:
//!
//! ```text
//! convert ./data/*_{ts}.jpg -fuzz 10% -fill white -opaque white
//!         -fill black +opaque white -format "%[fx:100*mean] " info:
//! ```
//!
//! i.e. threshold near-white pixels (clouds) and print the white fraction
//! as a percentage. [`fetch_image`] deterministically synthesizes a
//! brightness field per (region, timestamp) and [`cloud_fraction`]
//! reproduces the fuzz-threshold-mean computation.

use htpar_simkit::stream_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The eight sector codes the paper's `getdata` script fetches.
pub const REGIONS: [&str; 8] = ["cgl", "ne", "nr", "se", "sp", "sr", "pr", "pnw"];

/// A grayscale image (one brightness byte per pixel).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    pub region: String,
    pub timestamp: u64,
    pub width: u32,
    pub height: u32,
    pub pixels: Vec<u8>,
}

impl Image {
    /// Mean brightness in `[0, 255]`.
    pub fn mean_brightness(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().map(|&p| p as f64).sum::<f64>() / self.pixels.len() as f64
    }
}

/// Deterministically synthesize a sector image: a latitude-like gradient
/// plus blobby "cloud" regions whose coverage varies by region and
/// timestamp. Stands in for the CDN download.
pub fn fetch_image(region: &str, timestamp: u64, width: u32, height: u32) -> Image {
    let region_idx = REGIONS
        .iter()
        .position(|&r| r == region)
        .unwrap_or(REGIONS.len()) as u64;
    let mut rng = stream_rng(
        region_idx.wrapping_mul(0x9E37).wrapping_add(timestamp),
        0x60E5,
    );
    // Cloud cover fraction for this frame.
    let cover: f64 = rng.gen_range(0.05..0.6);
    // Cloud blob centers.
    let n_blobs = rng.gen_range(3..9);
    let blobs: Vec<(f64, f64, f64)> = (0..n_blobs)
        .map(|_| {
            (
                rng.gen_range(0.0..width as f64),
                rng.gen_range(0.0..height as f64),
                rng.gen_range(0.08..0.3) * width as f64 * cover.sqrt(),
            )
        })
        .collect();
    let mut pixels = Vec::with_capacity((width * height) as usize);
    for y in 0..height {
        for x in 0..width {
            // Base terrain gradient: darker toward the top.
            let base = 40.0 + 80.0 * (y as f64 / height as f64);
            // Cloud contribution: near-white inside blobs.
            let mut v: f64 = base;
            for &(cx, cy, r) in &blobs {
                let d2 = (x as f64 - cx).powi(2) + (y as f64 - cy).powi(2);
                if d2 < r * r {
                    let falloff = 1.0 - (d2 / (r * r));
                    v = v.max(215.0 + 40.0 * falloff);
                }
            }
            pixels.push(v.clamp(0.0, 255.0) as u8);
        }
    }
    Image {
        region: region.to_string(),
        timestamp,
        width,
        height,
        pixels,
    }
}

/// The `convert -fuzz F% ... -format "%[fx:100*mean]"` computation:
/// pixels within `fuzz_percent` of pure white count as cloud; returns the
/// cloud percentage in `[0, 100]`.
pub fn cloud_fraction(image: &Image, fuzz_percent: f64) -> f64 {
    if image.pixels.is_empty() {
        return 0.0;
    }
    let threshold = 255.0 * (1.0 - fuzz_percent.clamp(0.0, 100.0) / 100.0);
    let cloudy = image
        .pixels
        .iter()
        .filter(|&&p| p as f64 >= threshold)
        .count();
    100.0 * cloudy as f64 / image.pixels.len() as f64
}

impl Image {
    /// Serialize as a binary PGM (P5) — a real image file other tools can
    /// open, standing in for the CDN's JPEGs.
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.pixels);
        out
    }

    /// Parse a binary PGM produced by [`Image::to_pgm`]. Region/timestamp
    /// metadata are not stored in PGM; supply them from the file name.
    pub fn from_pgm(data: &[u8], region: &str, timestamp: u64) -> Result<Image, String> {
        let header_end = data
            .windows(1)
            .enumerate()
            .filter(|(_, w)| w[0] == b'\n')
            .map(|(i, _)| i)
            .nth(2)
            .ok_or("truncated PGM header")?;
        let header = std::str::from_utf8(&data[..header_end]).map_err(|_| "bad header")?;
        let mut lines = header.lines();
        if lines.next() != Some("P5") {
            return Err("not a P5 PGM".into());
        }
        let dims = lines.next().ok_or("missing dimensions")?;
        let (w, h) = dims.split_once(' ').ok_or("bad dimensions")?;
        let width: u32 = w.trim().parse().map_err(|_| "bad width")?;
        let height: u32 = h.trim().parse().map_err(|_| "bad height")?;
        if lines.next() != Some("255") {
            return Err("unsupported maxval".into());
        }
        let pixels = data[header_end + 1..].to_vec();
        if pixels.len() != (width * height) as usize {
            return Err(format!(
                "pixel count {} != {}x{}",
                pixels.len(),
                width,
                height
            ));
        }
        Ok(Image {
            region: region.to_string(),
            timestamp,
            width,
            height,
            pixels,
        })
    }

    /// The file name the `getdata` script would use: `<region>_<ts>.pgm`.
    pub fn file_name(&self) -> String {
        format!("{}_{}.pgm", self.region, self.timestamp)
    }
}

/// One fetch cycle of the `getdata` script: all eight regions at one
/// timestamp.
pub fn fetch_all_regions(timestamp: u64, width: u32, height: u32) -> Vec<Image> {
    REGIONS
        .iter()
        .map(|r| fetch_image(r, timestamp, width, height))
        .collect()
}

/// One processing task of the `procdata` script: cloud fractions for a
/// batch of images (one timestamp), formatted like the paper's output.
pub fn process_batch(images: &[Image], fuzz_percent: f64) -> String {
    let mut out = String::new();
    if let Some(first) = images.first() {
        out.push_str(&format!("\nTimestamp:{}\n", first.timestamp));
    }
    for img in images {
        out.push_str(&format!("{:.4} ", cloud_fraction(img, fuzz_percent)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_is_deterministic_per_region_and_time() {
        let a = fetch_image("ne", 1000, 64, 64);
        let b = fetch_image("ne", 1000, 64, 64);
        assert_eq!(a, b);
        assert_ne!(a, fetch_image("ne", 1001, 64, 64));
        assert_ne!(a.pixels, fetch_image("se", 1000, 64, 64).pixels);
    }

    #[test]
    fn image_dimensions_honored() {
        let img = fetch_image("sp", 5, 120, 80);
        assert_eq!(img.pixels.len(), 120 * 80);
        assert_eq!((img.width, img.height), (120, 80));
    }

    #[test]
    fn cloud_fraction_bounds_and_monotone_in_fuzz() {
        let img = fetch_image("cgl", 42, 128, 128);
        let f5 = cloud_fraction(&img, 5.0);
        let f10 = cloud_fraction(&img, 10.0);
        let f50 = cloud_fraction(&img, 50.0);
        assert!((0.0..=100.0).contains(&f5));
        assert!(f5 <= f10 && f10 <= f50, "{f5} {f10} {f50}");
    }

    #[test]
    fn all_white_image_is_100_percent_cloud() {
        let img = Image {
            region: "x".into(),
            timestamp: 0,
            width: 4,
            height: 4,
            pixels: vec![255; 16],
        };
        assert_eq!(cloud_fraction(&img, 10.0), 100.0);
    }

    #[test]
    fn all_dark_image_is_0_percent_cloud() {
        let img = Image {
            region: "x".into(),
            timestamp: 0,
            width: 4,
            height: 4,
            pixels: vec![10; 16],
        };
        assert_eq!(cloud_fraction(&img, 10.0), 0.0);
    }

    #[test]
    fn empty_image_is_safe() {
        let img = Image {
            region: "x".into(),
            timestamp: 0,
            width: 0,
            height: 0,
            pixels: vec![],
        };
        assert_eq!(cloud_fraction(&img, 10.0), 0.0);
        assert_eq!(img.mean_brightness(), 0.0);
    }

    #[test]
    fn images_contain_both_cloud_and_ground() {
        let img = fetch_image("pnw", 7, 128, 128);
        let cloud = cloud_fraction(&img, 10.0);
        assert!(cloud > 1.0 && cloud < 90.0, "cloud {cloud}");
    }

    #[test]
    fn fetch_all_regions_returns_eight() {
        let batch = fetch_all_regions(99, 32, 32);
        assert_eq!(batch.len(), 8);
        let regions: Vec<&str> = batch.iter().map(|i| i.region.as_str()).collect();
        assert_eq!(regions, REGIONS.to_vec());
    }

    #[test]
    fn process_batch_formats_like_the_paper() {
        let batch = fetch_all_regions(123, 32, 32);
        let out = process_batch(&batch, 10.0);
        assert!(out.starts_with("\nTimestamp:123\n"));
        // Eight space-terminated numbers follow.
        let nums: Vec<&str> = out.lines().last().unwrap().split_whitespace().collect();
        assert_eq!(nums.len(), 8);
        for n in nums {
            let v: f64 = n.parse().unwrap();
            assert!((0.0..=100.0).contains(&v));
        }
    }

    #[test]
    fn process_empty_batch() {
        assert_eq!(process_batch(&[], 10.0), "");
    }

    #[test]
    fn pgm_round_trips() {
        let img = fetch_image("nr", 77, 40, 30);
        let bytes = img.to_pgm();
        assert!(bytes.starts_with(b"P5\n40 30\n255\n"));
        let back = Image::from_pgm(&bytes, "nr", 77).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn pgm_rejects_garbage() {
        assert!(Image::from_pgm(b"", "x", 0).is_err());
        assert!(Image::from_pgm(b"P6\n2 2\n255\nxxxx", "x", 0).is_err());
        assert!(
            Image::from_pgm(b"P5\n2 2\n255\nxx", "x", 0).is_err(),
            "short pixels"
        );
    }

    #[test]
    fn file_name_matches_getdata_convention() {
        let img = fetch_image("se", 1234, 8, 8);
        assert_eq!(img.file_name(), "se_1234.pgm");
    }

    #[test]
    fn pgm_survives_disk_round_trip_with_analysis_intact() {
        let dir = std::env::temp_dir().join(format!("htpar-goes-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let img = fetch_image("pr", 9, 64, 64);
        let path = dir.join(img.file_name());
        std::fs::write(&path, img.to_pgm()).unwrap();
        let loaded = Image::from_pgm(&std::fs::read(&path).unwrap(), "pr", 9).unwrap();
        assert_eq!(cloud_fraction(&loaded, 10.0), cloud_fraction(&img, 10.0));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
