//! # htpar-workloads — the paper's application workloads
//!
//! Section IV of the paper demonstrates GNU Parallel on five real
//! workloads. Each gets a synthetic-but-faithful implementation here so
//! the examples and benches exercise real compute and real data paths,
//! not stubs:
//!
//! - [`darshan`]: §IV-B — synthetic Darshan I/O characterization logs
//!   (generator + parser + aggregation), the payload of the 5-stage
//!   NVMe prefetch pipeline.
//! - [`celeritas`]: §IV-D — a toy Monte Carlo particle-transport kernel
//!   with `.inp.json` inputs and device binding via the slot-number GPU
//!   isolation idiom.
//! - [`forge`]: §IV-C — publication-corpus cleaning and curation:
//!   abstract/full-text extraction, language filtering, character
//!   cleanup, token accounting.
//! - [`goes`]: §IV-A — a deterministic mock of the GOES-16 image CDN and
//!   the ImageMagick `convert` cloud-fraction analysis, for the
//!   fetch-process queue workflow.
//! - [`wfbench`]: §II — WfBench-style synthetic task graphs used to
//!   compare against the heavyweight WMS baseline.

pub mod celeritas;
pub mod darshan;
pub mod dedup;
pub mod forge;
pub mod goes;
pub mod wfbench;

pub use celeritas::{CelerInput, CelerOutput};
pub use darshan::{DarshanLog, IoSummary};
pub use dedup::{dedup_documents, DedupReport};
pub use forge::{CleanDocument, CorpusStats, RawDocument};
pub use goes::{cloud_fraction, fetch_image, Image, REGIONS};
pub use wfbench::{TaskSpec, Workflow};
