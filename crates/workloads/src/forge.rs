//! FORGE corpus preprocessing (paper §IV-C, Fig. 8).
//!
//! FORGE trained 22 B-parameter science LLMs on 257 B tokens from 200 M+
//! scientific articles. The data-curation stage the paper parallelizes:
//! extract abstracts and full texts from raw publication records, drop
//! non-English documents, strip extraneous characters, and account for
//! tokens. The cleaning pipeline here is real (string processing with
//! testable invariants); the corpus is synthetic.

use htpar_simkit::stream_rng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A raw publication record as it comes out of the source database.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawDocument {
    pub id: u64,
    pub title: String,
    /// Raw body: may embed an `Abstract: ...` section, LaTeX debris,
    /// control characters, or be non-English.
    pub body: String,
}

/// A cleaned, curated document ready for tokenizer ingestion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleanDocument {
    pub id: u64,
    pub title: String,
    pub abstract_text: String,
    pub full_text: String,
    /// Whitespace-token count of abstract + full text.
    pub tokens: u64,
}

/// Why a document was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    NonEnglish,
    TooShort,
}

const ENGLISH_STOPWORDS: [&str; 12] = [
    "the", "of", "and", "in", "to", "a", "is", "we", "that", "for", "with", "this",
];

/// Heuristic language filter: a document passes when a reasonable share
/// of its words are common English function words and its characters are
/// mostly ASCII.
pub fn is_english(text: &str) -> bool {
    if text.is_empty() {
        return false;
    }
    let ascii = text.chars().filter(|c| c.is_ascii()).count() as f64 / text.chars().count() as f64;
    if ascii < 0.85 {
        return false;
    }
    let words: Vec<&str> = text.split_whitespace().take(200).collect();
    if words.is_empty() {
        return false;
    }
    let hits = words
        .iter()
        .filter(|w| {
            let lw = w.to_lowercase();
            ENGLISH_STOPWORDS.contains(&lw.trim_matches(|c: char| !c.is_alphanumeric()))
        })
        .count() as f64;
    hits / words.len() as f64 >= 0.08
}

/// Strip control characters and LaTeX-ish debris, collapse whitespace.
pub fn clean_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_space = true;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        // Drop simple LaTeX commands: backslash + letters (keep their
        // argument text).
        if c == '\\' {
            while chars.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
                chars.next();
            }
            continue;
        }
        // Whitespace first: tabs and newlines are control characters but
        // must collapse to spaces, not vanish.
        let keep = match c {
            '{' | '}' | '$' | '~' => false,
            c if c.is_control() && !c.is_whitespace() => false,
            _ => true,
        };
        if !keep {
            continue;
        }
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(c);
            last_space = false;
        }
    }
    out.trim().to_string()
}

/// Split a raw body into (abstract, full text). The convention in the
/// synthetic corpus — and common in publisher dumps — is an
/// `Abstract:` ... `Body:` structure; absent markers, the first sentence
/// group serves as the abstract.
pub fn extract_sections(body: &str) -> (String, String) {
    if let Some(abs_start) = body.find("Abstract:") {
        let after = &body[abs_start + "Abstract:".len()..];
        if let Some(body_start) = after.find("Body:") {
            return (
                after[..body_start].trim().to_string(),
                after[body_start + "Body:".len()..].trim().to_string(),
            );
        }
        return (after.trim().to_string(), String::new());
    }
    let mut sentences = body.splitn(2, ". ");
    let abstract_text = sentences.next().unwrap_or("").trim().to_string();
    let full = sentences.next().unwrap_or("").trim().to_string();
    (abstract_text, full)
}

/// Whitespace token count.
pub fn count_tokens(text: &str) -> u64 {
    text.split_whitespace().count() as u64
}

/// The full per-document pipeline of Fig. 8.
pub fn preprocess(doc: &RawDocument) -> Result<CleanDocument, RejectReason> {
    if !is_english(&doc.body) {
        return Err(RejectReason::NonEnglish);
    }
    let (abstract_raw, full_raw) = extract_sections(&doc.body);
    let abstract_text = clean_text(&abstract_raw);
    let full_text = clean_text(&full_raw);
    let tokens = count_tokens(&abstract_text) + count_tokens(&full_text);
    if tokens < 20 {
        return Err(RejectReason::TooShort);
    }
    Ok(CleanDocument {
        id: doc.id,
        title: clean_text(&doc.title),
        abstract_text,
        full_text,
        tokens,
    })
}

/// Aggregate statistics over a curated corpus shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusStats {
    pub documents_in: u64,
    pub documents_kept: u64,
    pub rejected_non_english: u64,
    pub rejected_too_short: u64,
    pub tokens: u64,
}

impl CorpusStats {
    /// Process a shard of raw documents.
    pub fn process<'a, I: IntoIterator<Item = &'a RawDocument>>(docs: I) -> CorpusStats {
        let mut stats = CorpusStats::default();
        for doc in docs {
            stats.documents_in += 1;
            match preprocess(doc) {
                Ok(clean) => {
                    stats.documents_kept += 1;
                    stats.tokens += clean.tokens;
                }
                Err(RejectReason::NonEnglish) => stats.rejected_non_english += 1,
                Err(RejectReason::TooShort) => stats.rejected_too_short += 1,
            }
        }
        stats
    }

    /// Merge shard statistics (the reduce step after a parallel map).
    pub fn merge(&self, other: &CorpusStats) -> CorpusStats {
        CorpusStats {
            documents_in: self.documents_in + other.documents_in,
            documents_kept: self.documents_kept + other.documents_kept,
            rejected_non_english: self.rejected_non_english + other.rejected_non_english,
            rejected_too_short: self.rejected_too_short + other.rejected_too_short,
            tokens: self.tokens + other.tokens,
        }
    }
}

const ENGLISH_FILLER: &str = "the model of the system is described in this section and we \
show that the results for the proposed method are consistent with the theory developed in \
prior work on high energy physics experiments with a detector at the facility";

const NON_ENGLISH_FILLER: &str = "das modell des systems wird in diesem abschnitt beschrieben \
und wir zeigen dass die ergebnisse für die vorgeschlagene methode mit der theorie übereinstimmen \
die in früheren arbeiten über hochenergiephysik entwickelt wurde";

/// Generate a synthetic raw corpus: mostly English scientific documents,
/// a fraction non-English, some with LaTeX debris and control characters.
pub fn generate_corpus(seed: u64, count: usize) -> Vec<RawDocument> {
    let mut rng = stream_rng(seed, 0xF0_26E);
    let english_words: Vec<&str> = ENGLISH_FILLER.split_whitespace().collect();
    let german_words: Vec<&str> = NON_ENGLISH_FILLER.split_whitespace().collect();
    (0..count)
        .map(|i| {
            let non_english = rng.gen::<f64>() < 0.12;
            let short = rng.gen::<f64>() < 0.05;
            let words = if non_english {
                &german_words
            } else {
                &english_words
            };
            let n_abstract = if short { 4 } else { rng.gen_range(30..80) };
            let n_body = if short { 3 } else { rng.gen_range(150..600) };
            let mut pick = |n: usize| -> String {
                (0..n)
                    .map(|_| *words.choose(&mut rng).expect("nonempty"))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            let mut abstract_text = pick(n_abstract);
            let body_text = pick(n_body);
            // Sprinkle debris into some documents.
            if rng.gen::<f64>() < 0.3 {
                abstract_text = format!("\\textbf{{{abstract_text}}} $x^2$\u{0007}");
            }
            RawDocument {
                id: i as u64,
                title: format!("Synthetic Study {i}"),
                body: format!("Abstract: {abstract_text} Body: {body_text}"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_detection() {
        assert!(is_english(ENGLISH_FILLER));
        assert!(!is_english(NON_ENGLISH_FILLER));
        assert!(!is_english(""));
        assert!(!is_english("零件 表面 粗糙度 的 影响 因素 分析 研究"));
    }

    #[test]
    fn clean_strips_debris_and_collapses_whitespace() {
        assert_eq!(clean_text("a  b\t\tc\n\nd"), "a b c d");
        assert_eq!(clean_text("\\textbf{bold} text"), "bold text");
        assert_eq!(clean_text("x\u{0007}y$z$"), "xyz");
        assert_eq!(clean_text("  padded  "), "padded");
        assert_eq!(clean_text(""), "");
    }

    #[test]
    fn clean_preserves_plain_prose() {
        let s = "The quick brown fox jumps over 42 lazy dogs.";
        assert_eq!(clean_text(s), s);
    }

    #[test]
    fn sections_split_on_markers() {
        let (a, b) = extract_sections("Abstract: short summary Body: the long text");
        assert_eq!(a, "short summary");
        assert_eq!(b, "the long text");
    }

    #[test]
    fn sections_without_markers_use_first_sentence() {
        let (a, b) = extract_sections("First sentence here. Then the rest follows.");
        assert_eq!(a, "First sentence here");
        assert_eq!(b, "Then the rest follows.");
    }

    #[test]
    fn preprocess_accepts_good_docs() {
        let doc = RawDocument {
            id: 1,
            title: "A \\emph{Title}".into(),
            body: format!("Abstract: {ENGLISH_FILLER} Body: {ENGLISH_FILLER}"),
        };
        let clean = preprocess(&doc).unwrap();
        assert_eq!(clean.title, "A Title");
        assert!(clean.tokens > 20);
        assert!(!clean.abstract_text.contains('\\'));
    }

    #[test]
    fn preprocess_rejects_non_english_and_short() {
        let german = RawDocument {
            id: 2,
            title: "t".into(),
            body: NON_ENGLISH_FILLER.to_string(),
        };
        assert_eq!(preprocess(&german).unwrap_err(), RejectReason::NonEnglish);
        let short = RawDocument {
            id: 3,
            title: "t".into(),
            body: "Abstract: we the of in Body: is a to".into(),
        };
        assert_eq!(preprocess(&short).unwrap_err(), RejectReason::TooShort);
    }

    #[test]
    fn corpus_stats_accounting_is_complete() {
        let corpus = generate_corpus(11, 2000);
        let stats = CorpusStats::process(&corpus);
        assert_eq!(stats.documents_in, 2000);
        assert_eq!(
            stats.documents_in,
            stats.documents_kept + stats.rejected_non_english + stats.rejected_too_short
        );
        // ~12 % non-English by construction.
        let ratio = stats.rejected_non_english as f64 / stats.documents_in as f64;
        assert!((ratio - 0.12).abs() < 0.04, "non-english ratio {ratio}");
        assert!(stats.tokens > 100_000);
    }

    #[test]
    fn shard_merge_equals_whole() {
        let corpus = generate_corpus(12, 1000);
        let whole = CorpusStats::process(&corpus);
        let merged =
            CorpusStats::process(&corpus[..500]).merge(&CorpusStats::process(&corpus[500..]));
        assert_eq!(whole, merged);
    }

    #[test]
    fn corpus_generation_is_deterministic() {
        assert_eq!(generate_corpus(1, 50), generate_corpus(1, 50));
        assert_ne!(generate_corpus(1, 50), generate_corpus(2, 50));
    }
}
