//! # htpar-containers — container runtime models
//!
//! Paper §III stress-tests containerized task launch on a Perlmutter CPU
//! node:
//!
//! - **Shifter** (Fig. 4): ≈ 5,200 container launches/s — a 19 % startup
//!   overhead against the ~6,400/s bare-metal ceiling.
//! - **Podman-HPC** (Fig. 5): ≈ 65 launches/s — two orders of magnitude
//!   slower, plus reliability failures at scale: user-namespace setup
//!   errors, database locking, setgid failures, task tmp-dir problems.
//!
//! Each runtime is a [`ContainerRuntime`]: a per-launch cost factor, an
//! optional global serialization cap (Podman's shared image database),
//! and a concurrency-dependent failure model.

pub mod runtime;
pub mod stress;

pub use runtime::{BareMetal, ContainerRuntime, FailureKind, PodmanHpc, Shifter};
pub use stress::{stress_run, sweep_rates, RatePoint, StressReport};
