//! Runtime definitions and failure models.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Ways a containerized launch can fail (Fig. 5's observed modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// "failures in setting user namespaces"
    UserNamespace,
    /// "database locking"
    DbLock,
    /// "setgid failures"
    Setgid,
    /// "problems with task tmp directories"
    TmpDir,
}

impl FailureKind {
    /// All failure kinds, for tallying.
    pub const ALL: [FailureKind; 4] = [
        FailureKind::UserNamespace,
        FailureKind::DbLock,
        FailureKind::Setgid,
        FailureKind::TmpDir,
    ];
}

/// A container runtime's launch behaviour.
pub trait ContainerRuntime: Send + Sync {
    /// Human-readable name.
    fn name(&self) -> &str;

    /// Multiplier on the bare-metal per-launch cost (1.0 = free).
    fn launch_overhead_factor(&self) -> f64;

    /// Hard global launch-rate cap (launches/s) from runtime-internal
    /// serialization (e.g. a shared image database lock), if any.
    fn global_rate_cap(&self) -> Option<f64>;

    /// Sample whether one launch fails, given the number of concurrent
    /// launches in flight. `None` = success.
    fn sample_failure(&self, rng: &mut dyn rand::RngCore, concurrency: u32) -> Option<FailureKind>;
}

/// No container: the bare-metal baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct BareMetal;

impl ContainerRuntime for BareMetal {
    fn name(&self) -> &str {
        "bare-metal"
    }
    fn launch_overhead_factor(&self) -> f64 {
        1.0
    }
    fn global_rate_cap(&self) -> Option<f64> {
        None
    }
    fn sample_failure(&self, _rng: &mut dyn rand::RngCore, _c: u32) -> Option<FailureKind> {
        None
    }
}

/// Shifter: NERSC's HPC container runtime. Startup cost is a thin
/// chroot-style setup — the paper measures only 19 % overhead versus bare
/// metal, and no reliability issues.
#[derive(Debug, Clone, Copy)]
pub struct Shifter {
    /// 6,400 / 5,200 ≈ 1.23: the Fig. 4 calibration.
    pub overhead_factor: f64,
}

impl Default for Shifter {
    fn default() -> Self {
        Shifter {
            overhead_factor: 6400.0 / 5200.0,
        }
    }
}

impl ContainerRuntime for Shifter {
    fn name(&self) -> &str {
        "shifter"
    }
    fn launch_overhead_factor(&self) -> f64 {
        self.overhead_factor
    }
    fn global_rate_cap(&self) -> Option<f64> {
        None
    }
    fn sample_failure(&self, _rng: &mut dyn rand::RngCore, _c: u32) -> Option<FailureKind> {
        None
    }
}

/// Podman-HPC: rootless OCI runtime. Every launch sets up user
/// namespaces and consults a shared SQLite-style image database — the
/// database serializes launches globally (the ≈ 65/s cap of Fig. 5), and
/// several per-launch steps fail with probability that grows with
/// concurrency.
#[derive(Debug, Clone, Copy)]
pub struct PodmanHpc {
    /// Per-launch service time of the serialized section, seconds.
    pub db_service_secs: f64,
    /// Baseline probability of each failure mode per launch.
    pub base_failure_prob: f64,
    /// Extra failure probability per concurrent launch in flight.
    pub failure_prob_per_concurrent: f64,
}

impl Default for PodmanHpc {
    fn default() -> Self {
        PodmanHpc {
            // 1/65 s: the Fig. 5 upper bound.
            db_service_secs: 1.0 / 65.0,
            base_failure_prob: 0.001,
            failure_prob_per_concurrent: 0.0004,
        }
    }
}

impl PodmanHpc {
    /// Probability one launch fails (any mode) at the given concurrency.
    pub fn failure_probability(&self, concurrency: u32) -> f64 {
        (self.base_failure_prob
            + self.failure_prob_per_concurrent * concurrency.saturating_sub(1) as f64)
            .clamp(0.0, 0.9)
    }
}

impl ContainerRuntime for PodmanHpc {
    fn name(&self) -> &str {
        "podman-hpc"
    }
    fn launch_overhead_factor(&self) -> f64 {
        // Per-launch CPU cost is also far above Shifter's, but the global
        // cap dominates; 10× keeps single-instance rates realistic.
        10.0
    }
    fn global_rate_cap(&self) -> Option<f64> {
        Some(1.0 / self.db_service_secs)
    }
    fn sample_failure(&self, rng: &mut dyn rand::RngCore, concurrency: u32) -> Option<FailureKind> {
        if rng.gen::<f64>() >= self.failure_probability(concurrency) {
            return None;
        }
        // Mix of modes roughly as reported: namespaces and DB locks are
        // the common ones.
        let roll: f64 = rng.gen();
        Some(if roll < 0.35 {
            FailureKind::UserNamespace
        } else if roll < 0.70 {
            FailureKind::DbLock
        } else if roll < 0.85 {
            FailureKind::Setgid
        } else {
            FailureKind::TmpDir
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htpar_simkit::stream_rng;

    #[test]
    fn bare_metal_is_free_and_reliable() {
        let rt = BareMetal;
        assert_eq!(rt.launch_overhead_factor(), 1.0);
        assert!(rt.global_rate_cap().is_none());
        let mut rng = stream_rng(0, 0);
        assert!((0..1000).all(|_| rt.sample_failure(&mut rng, 256).is_none()));
    }

    #[test]
    fn shifter_overhead_matches_fig4_calibration() {
        let rt = Shifter::default();
        // 19 % startup overhead: 6400 / 1.23 ≈ 5200.
        let effective = 6400.0 / rt.launch_overhead_factor();
        assert!((effective - 5200.0).abs() < 1.0, "{effective}");
        assert!(rt.global_rate_cap().is_none());
    }

    #[test]
    fn podman_cap_is_65_per_second() {
        let rt = PodmanHpc::default();
        let cap = rt.global_rate_cap().unwrap();
        assert!((cap - 65.0).abs() < 0.1, "{cap}");
    }

    #[test]
    fn podman_failures_grow_with_concurrency() {
        let rt = PodmanHpc::default();
        assert!(rt.failure_probability(256) > 5.0 * rt.failure_probability(1));
        let mut rng = stream_rng(1, 0);
        let fails_low = (0..20_000)
            .filter(|_| rt.sample_failure(&mut rng, 1).is_some())
            .count();
        let fails_high = (0..20_000)
            .filter(|_| rt.sample_failure(&mut rng, 256).is_some())
            .count();
        assert!(
            fails_high > 10 * fails_low.max(1),
            "{fails_low} vs {fails_high}"
        );
    }

    #[test]
    fn podman_failure_modes_cover_all_kinds() {
        let rt = PodmanHpc {
            base_failure_prob: 1.0,
            ..PodmanHpc::default()
        };
        let mut rng = stream_rng(2, 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            if let Some(kind) = rt.sample_failure(&mut rng, 1) {
                seen.insert(kind);
            }
        }
        assert_eq!(seen.len(), FailureKind::ALL.len());
    }

    #[test]
    fn failure_probability_is_clamped() {
        let rt = PodmanHpc {
            failure_prob_per_concurrent: 1.0,
            ..PodmanHpc::default()
        };
        assert!(rt.failure_probability(u32::MAX) <= 0.9);
    }
}
