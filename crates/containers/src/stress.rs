//! The container launch stress harness (Figs. 4 and 5).
//!
//! Sweeps launcher instances × `-j` and reports the sustained container
//! launch rate plus failure tallies — the same series the paper plots.

use std::collections::HashMap;

use htpar_cluster::LaunchModel;
use htpar_simkit::stream_rng;
use serde::{Deserialize, Serialize};

use crate::runtime::ContainerRuntime;

/// One point of a rate sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatePoint {
    pub instances: u32,
    pub jobs: u32,
    /// Launches per second sustained.
    pub rate_per_sec: f64,
}

/// Outcome of one stress run of `n` launches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StressReport {
    pub runtime: String,
    pub attempted: u64,
    pub succeeded: u64,
    pub failures: HashMap<String, u64>,
    pub elapsed_secs: f64,
    pub rate_per_sec: f64,
}

impl StressReport {
    /// Fraction of launches that failed.
    pub fn failure_ratio(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            1.0 - self.succeeded as f64 / self.attempted as f64
        }
    }
}

/// Effective launch rate of `instances` × `jobs` launchers running no-op
/// containerized payloads on a node described by `model`.
pub fn launch_rate(model: &LaunchModel, rt: &dyn ContainerRuntime, instances: u32) -> f64 {
    let scaled =
        model.with_container_overhead(model.container_overhead * rt.launch_overhead_factor());
    let rate = scaled.aggregate_rate(instances);
    match rt.global_rate_cap() {
        Some(cap) => rate.min(cap),
        None => rate,
    }
}

/// Sweep instance counts and report the rate curve (the x-axis of
/// Figs. 4/5).
pub fn sweep_rates(
    model: &LaunchModel,
    rt: &dyn ContainerRuntime,
    instances: &[u32],
    jobs: u32,
) -> Vec<RatePoint> {
    instances
        .iter()
        .map(|&i| RatePoint {
            instances: i,
            jobs,
            rate_per_sec: launch_rate(model, rt, i),
        })
        .collect()
}

/// Run `n` simulated launches at a given concurrency and tally failures.
pub fn stress_run(
    model: &LaunchModel,
    rt: &dyn ContainerRuntime,
    n: u64,
    instances: u32,
    jobs: u32,
    seed: u64,
) -> StressReport {
    let mut rng = stream_rng(seed, 0xC017_A1E5);
    let concurrency = instances.saturating_mul(jobs);
    let mut failures: HashMap<String, u64> = HashMap::new();
    let mut succeeded = 0u64;
    for _ in 0..n {
        match rt.sample_failure(&mut rng, concurrency) {
            None => succeeded += 1,
            Some(kind) => {
                *failures.entry(format!("{kind:?}")).or_insert(0) += 1;
            }
        }
    }
    let rate = launch_rate(model, rt, instances);
    let elapsed_secs = if rate > 0.0 { n as f64 / rate } else { 0.0 };
    StressReport {
        runtime: rt.name().to_string(),
        attempted: n,
        succeeded,
        failures,
        elapsed_secs,
        rate_per_sec: rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{BareMetal, PodmanHpc, Shifter};

    fn model() -> LaunchModel {
        LaunchModel::paper_calibrated()
    }

    #[test]
    fn fig4_shifter_plateaus_near_5200() {
        let points = sweep_rates(&model(), &Shifter::default(), &[1, 2, 4, 8, 16, 32, 64], 8);
        let peak = points.iter().map(|p| p.rate_per_sec).fold(0.0, f64::max);
        assert!((peak - 5200.0).abs() < 10.0, "peak {peak}");
        // Monotone nondecreasing in instances.
        for w in points.windows(2) {
            assert!(w[1].rate_per_sec >= w[0].rate_per_sec);
        }
    }

    #[test]
    fn fig4_shifter_overhead_vs_bare_metal_is_19_percent() {
        let bare = launch_rate(&model(), &BareMetal, 64);
        let shifter = launch_rate(&model(), &Shifter::default(), 64);
        let overhead = bare / shifter - 1.0;
        assert!((overhead - 0.23).abs() < 0.02, "rate overhead {overhead}");
        // Expressed the paper's way: shifter achieves ~81% of bare metal,
        // i.e. a startup overhead of "only 19%".
        assert!((1.0 - shifter / bare - 0.19).abs() < 0.02);
    }

    #[test]
    fn fig5_podman_caps_at_65_regardless_of_instances() {
        let points = sweep_rates(&model(), &PodmanHpc::default(), &[1, 2, 8, 32, 64], 16);
        for p in &points[1..] {
            assert!((p.rate_per_sec - 65.0).abs() < 1.0, "{:?}", p);
        }
        // Two orders of magnitude below Shifter, as the paper stresses.
        let shifter_peak = launch_rate(&model(), &Shifter::default(), 64);
        assert!(shifter_peak / 65.0 > 50.0);
    }

    #[test]
    fn fig5_podman_failures_at_scale() {
        let small = stress_run(&model(), &PodmanHpc::default(), 50_000, 1, 1, 5);
        let large = stress_run(&model(), &PodmanHpc::default(), 50_000, 16, 64, 5);
        assert!(large.failure_ratio() > 10.0 * small.failure_ratio().max(1e-6));
        assert!(!large.failures.is_empty());
        assert_eq!(
            large.attempted,
            large.succeeded + large.failures.values().sum::<u64>()
        );
    }

    #[test]
    fn bare_metal_stress_is_clean() {
        let r = stress_run(&model(), &BareMetal, 10_000, 14, 64, 1);
        assert_eq!(r.succeeded, 10_000);
        assert_eq!(r.failure_ratio(), 0.0);
        assert!((r.rate_per_sec - 6400.0).abs() < 1e-6);
        assert!((r.elapsed_secs - 10_000.0 / 6400.0).abs() < 1e-9);
    }

    #[test]
    fn single_instance_rates_order_bare_shifter_podman() {
        let bare = launch_rate(&model(), &BareMetal, 1);
        let shifter = launch_rate(&model(), &Shifter::default(), 1);
        let podman = launch_rate(&model(), &PodmanHpc::default(), 1);
        assert!(bare > shifter && shifter > podman);
        assert!((podman - 47.0).abs() < 20.0, "podman single {podman}");
    }
}
