//! The simulated-event-rate regression gate: a fixed fault-replay-shaped
//! DES workload with a checked-in floor.
//!
//! The paper's extreme-scale results (Fig. 1 weak scaling, the
//! fault-resilient driver replay) run on `htpar_simkit`'s event engine;
//! reproducing them at the true 9,408-node / 1.15M-task scale needs the
//! event core itself to sustain millions of schedule/cancel/fire
//! operations per second. This module is the guardrail: `measure` runs a
//! canonical workload patterned on `htpar_cluster::faults::run_resilient`
//! — per-node serial dispatch chains with a slot cap, a watchdog timeout
//! per task that is cancelled on completion, and mid-run node crashes
//! that `cancel_many` everything in flight and requeue the remainder onto
//! survivors — with near-zero world bookkeeping, so the measured rate is
//! pure event-core cost (schedule, cancel, mass-cancel, fire, far-future
//! buckets). The `sim_rate_gate` binary and the `sim_rate_gate`
//! integration test compare that rate against [`floor`] and fail on a
//! regression.

use std::time::{Duration, Instant};

use htpar_simkit::{EventId, SimTime, Simulation};

/// Canonical gate workload: 128 nodes x 1,024 tasks, 64 slots per node,
/// one in eight nodes crashing mid-run. Roughly 400k scheduled events
/// (two fired plus one cancelled watchdog per task), small enough to run
/// in CI seconds, shaped enough to exercise every queue path.
pub const GATE_NODES: u32 = 128;
pub const GATE_TASKS_PER_NODE: u32 = 1_024;
pub const GATE_JOBS: u32 = 64;
/// One node in eight crashes mid-run (16 of 128): each crash mass-cancels
/// the node's in-flight events and requeues its remainder.
pub const GATE_CRASH_EVERY: u32 = 8;

/// Floor in events/sec for the canonical workload in release builds:
/// well under half the worst trial measured after the calendar-queue
/// rework (8.6-11.8M events/s over repeated trials on the mid-run-crash
/// workload, 13.3-23.1M on the earlier post-drain-crash variant; the
/// old heap queue measured 3.3-3.6M on the same box). Scheduler noise
/// passes; a
/// structural regression (a hash lookup back on the hot path, per-event
/// allocation, a tombstone drain) fails every attempt — the floor sits
/// *above* the old engine's throughput, so even a full revert trips it.
pub const FLOOR_RELEASE: f64 = 4_000_000.0;
/// Same floor for unoptimized (debug) builds, where `cargo test` runs
/// (measured 2.6-2.9M events/s after the rework).
pub const FLOOR_DEBUG: f64 = 1_000_000.0;

/// Attempts the gate makes before declaring a regression (same policy as
/// the launch-rate gate: a transient VM hiccup depresses one run, a real
/// regression depresses all of them).
pub const GATE_ATTEMPTS: usize = 3;

/// The floor matching how this code was compiled.
pub fn floor() -> f64 {
    if cfg!(debug_assertions) {
        FLOOR_DEBUG
    } else {
        FLOOR_RELEASE
    }
}

/// Optional artificial per-completion cost, for verifying that the gate
/// really fails on a slowdown (set `HTPAR_SIM_GATE_HANDICAP_US` to a
/// microsecond count — the drill twin of `HTPAR_GATE_HANDICAP_US`).
pub fn handicap() -> Option<Duration> {
    std::env::var("HTPAR_SIM_GATE_HANDICAP_US")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|us| *us > 0)
        .map(Duration::from_micros)
}

/// Gate workload shape.
#[derive(Debug, Clone, Copy)]
pub struct SimGateConfig {
    pub nodes: u32,
    pub tasks_per_node: u32,
    pub jobs: u32,
    /// Every `crash_every`-th node crashes mid-run (0 = no crashes).
    pub crash_every: u32,
    pub seed: u64,
}

impl SimGateConfig {
    /// The canonical CI workload.
    pub fn canonical() -> SimGateConfig {
        SimGateConfig {
            nodes: GATE_NODES,
            tasks_per_node: GATE_TASKS_PER_NODE,
            jobs: GATE_JOBS,
            crash_every: GATE_CRASH_EVERY,
            seed: 2024,
        }
    }
}

/// One gate run's numbers.
#[derive(Debug, Clone, Copy)]
pub struct SimGateMeasurement {
    pub nodes: u32,
    pub tasks: u64,
    /// Tasks that completed (original or requeued after a crash).
    pub tasks_done: u64,
    /// Events fired by the engine.
    pub fired: u64,
    /// Events cancelled before firing (watchdogs + crash mass-cancels).
    pub cancelled: u64,
    pub wall: Duration,
    /// (fired + cancelled) / wall — the gate's metric: every scheduled
    /// event costs one schedule plus one fire-or-cancel.
    pub events_per_sec: f64,
}

/// Cheap deterministic mixer (splitmix64 finalizer) so per-task costs
/// vary without paying an RNG stream draw per event: the gate measures
/// the queue, not ChaCha.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct Node {
    /// Tasks this node must run (grows when a crash requeues onto it).
    target: u64,
    launched: u64,
    done: u64,
    busy: u32,
    alive: bool,
    /// A dispatch-chain hop is pending.
    dispatching: bool,
    /// The dispatcher is parked waiting for a free slot.
    stalled: bool,
    /// Events to mass-cancel if this node crashes (ids of already-fired
    /// events are harmless, exactly as in `cluster::faults`).
    pending: Vec<EventId>,
}

struct GateWorld {
    nodes: Vec<Node>,
    cancelled: u64,
    tasks_done: u64,
    handicap: Option<Duration>,
}

/// Watchdog horizon: far enough ahead that every watchdog lives in the
/// far-future region of the queue until its task completes and cancels
/// it (the tombstone-heavy pattern the calendar queue exists to fix).
const WATCHDOG: SimTime = SimTime::from_secs(600);
/// Serial dispatcher gap between launches on one node (the measured GNU
/// Parallel single-instance rate is a few thousand per second).
const DISPATCH_GAP: SimTime = SimTime::from_micros(150);

fn dispatch(sim: &mut Simulation<GateWorld>, cfg: SimGateConfig, node: usize) {
    let (cost, watchdog_at) = {
        let st = &mut sim.world_mut().nodes[node];
        if !st.alive {
            st.dispatching = false;
            return;
        }
        if st.launched >= st.target {
            st.dispatching = false;
            return;
        }
        if st.busy >= cfg.jobs {
            st.dispatching = false;
            st.stalled = true;
            return;
        }
        let launched = st.launched;
        st.launched += 1;
        st.busy += 1;
        st.dispatching = true;
        // Task cost in [1ms, ~66ms], deterministic per (seed, node, task).
        let us = 1_000 + mix(cfg.seed ^ ((node as u64) << 32) ^ launched) % 65_536;
        (SimTime::from_micros(us), WATCHDOG)
    };
    let watchdog = sim.schedule_in(watchdog_at, move |sim| {
        // Fires only if neither completion nor crash cancelled it; the
        // workload is sized so that never happens.
        let st = &mut sim.world_mut().nodes[node];
        st.busy = st.busy.saturating_sub(1);
    });
    let completion = sim.schedule_in(cost, move |sim| complete(sim, cfg, node, watchdog));
    let hop = sim.schedule_in(DISPATCH_GAP, move |sim| dispatch(sim, cfg, node));
    let st = &mut sim.world_mut().nodes[node];
    st.pending.push(watchdog);
    st.pending.push(completion);
    st.pending.push(hop);
}

fn complete(sim: &mut Simulation<GateWorld>, cfg: SimGateConfig, node: usize, watchdog: EventId) {
    if let Some(cost) = sim.world().handicap {
        let spin = Instant::now();
        while spin.elapsed() < cost {
            std::hint::spin_loop();
        }
    }
    if sim.cancel(watchdog) {
        sim.world_mut().cancelled += 1;
    }
    let resume = {
        let world = sim.world_mut();
        world.tasks_done += 1;
        let st = &mut world.nodes[node];
        if !st.alive {
            return;
        }
        st.busy -= 1;
        st.done += 1;
        let resume = st.stalled;
        if resume {
            st.stalled = false;
            st.dispatching = true;
        }
        resume
    };
    if resume {
        dispatch(sim, cfg, node);
    }
}

fn crash(sim: &mut Simulation<GateWorld>, cfg: SimGateConfig, node: usize) {
    let (pending, lost) = {
        let st = &mut sim.world_mut().nodes[node];
        st.alive = false;
        st.stalled = false;
        st.dispatching = false;
        // In-flight launches die with the node; their watchdogs and
        // completions are in `pending` and get mass-cancelled below.
        let lost = st.target - st.done;
        st.busy = 0;
        (std::mem::take(&mut st.pending), lost)
    };
    sim.world_mut().cancelled += sim.cancel_many(pending) as u64;
    if lost == 0 {
        return;
    }
    // Requeue the dead node's remainder across survivors (modulo split,
    // as the resilient driver does) and kick any drained dispatchers.
    let kicks: Vec<usize> = {
        let world = sim.world_mut();
        let survivors: Vec<usize> = world
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, st)| st.alive)
            .map(|(i, _)| i)
            .collect();
        assert!(!survivors.is_empty(), "gate crashes spare most nodes");
        let mut kicks = Vec::new();
        for (k, &to) in survivors.iter().enumerate() {
            let share = lost / survivors.len() as u64
                + u64::from((k as u64) < lost % survivors.len() as u64);
            if share == 0 {
                continue;
            }
            let st = &mut world.nodes[to];
            st.target += share;
            if !st.dispatching && !st.stalled {
                st.dispatching = true;
                kicks.push(to);
            }
        }
        kicks
    };
    for node in kicks {
        dispatch(sim, cfg, node);
    }
}

/// Run the gate workload once and report the achieved event rate.
pub fn measure(cfg: SimGateConfig) -> SimGateMeasurement {
    assert!(cfg.nodes >= 2 && cfg.tasks_per_node >= 1 && cfg.jobs >= 1);
    let tasks = cfg.nodes as u64 * cfg.tasks_per_node as u64;
    let world = GateWorld {
        nodes: (0..cfg.nodes)
            .map(|_| Node {
                target: cfg.tasks_per_node as u64,
                launched: 0,
                done: 0,
                busy: 0,
                alive: true,
                dispatching: false,
                stalled: false,
                pending: Vec::with_capacity(3 * cfg.tasks_per_node as usize + 4),
            })
            .collect(),
        cancelled: 0,
        tasks_done: 0,
        handicap: handicap(),
    };
    let started = Instant::now();
    let mut sim = Simulation::with_seed(world, cfg.seed);
    for node in 0..cfg.nodes as usize {
        // Stagger starts over ~2s (the allocation ramp, coarsely).
        let start = SimTime::from_micros(mix(cfg.seed ^ node as u64) % 2_000_000);
        let id = sim.schedule_at(start, move |sim| {
            sim.world_mut().nodes[node].dispatching = true;
            dispatch(sim, cfg, node);
        });
        sim.world_mut().nodes[node].pending.push(id);
    }
    if cfg.crash_every > 0 {
        for node in (0..cfg.nodes as usize).filter(|n| n % cfg.crash_every as usize == 1) {
            // Crash genuinely mid-run: inside the start-stagger + drain
            // window (a node starting at t runs ~0.5s of work), so most
            // crashes mass-cancel live in-flight events and requeue a
            // real remainder onto survivors. (An earlier variant crashed
            // at 4-12s, after every node had drained — the mass-cancel
            // hit only stale keys and requeued nothing.)
            let at =
                SimTime::from_micros(300_000) + SimTime::from_micros(mix(node as u64) % 2_000_000);
            sim.schedule_at(at, move |sim| crash(sim, cfg, node));
        }
    }
    sim.run();
    let fired = sim.events_fired();
    let wall = started.elapsed();
    let world = sim.into_world();
    let events = fired + world.cancelled;
    SimGateMeasurement {
        nodes: cfg.nodes,
        tasks,
        tasks_done: world.tasks_done,
        fired,
        cancelled: world.cancelled,
        wall,
        events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
    }
}

/// Run the canonical gate workload up to [`GATE_ATTEMPTS`] times and
/// return the first measurement at or above the floor, or the best of
/// the failing attempts. Callers compare `events_per_sec` to [`floor`].
pub fn measure_gated() -> SimGateMeasurement {
    let mut best: Option<SimGateMeasurement> = None;
    for _ in 0..GATE_ATTEMPTS {
        let m = measure(SimGateConfig::canonical());
        if m.events_per_sec >= floor() {
            return m;
        }
        if best.is_none_or(|b| m.events_per_sec > b.events_per_sec) {
            best = Some(m);
        }
    }
    best.expect("GATE_ATTEMPTS > 0")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SimGateConfig {
        SimGateConfig {
            nodes: 8,
            tasks_per_node: 32,
            jobs: 8,
            crash_every: 4,
            seed: 7,
        }
    }

    #[test]
    fn workload_conserves_tasks_through_crashes() {
        let m = measure(tiny());
        // Crashed nodes requeue their remainder, so every task completes
        // somewhere (possibly more than `tasks` completions never happen:
        // requeue moves targets, it does not duplicate them).
        assert_eq!(m.tasks_done, m.tasks, "lost tasks: {m:?}");
        assert!(m.cancelled > 0, "watchdog cancels must be exercised");
        assert!(m.fired > m.tasks, "completion + hop per task at minimum");
    }

    #[test]
    fn workload_is_deterministic() {
        let a = measure(tiny());
        let b = measure(tiny());
        assert_eq!(a.fired, b.fired);
        assert_eq!(a.cancelled, b.cancelled);
        assert_eq!(a.tasks_done, b.tasks_done);
    }

    #[test]
    fn crash_free_run_cancels_exactly_one_watchdog_per_task() {
        let mut cfg = tiny();
        cfg.crash_every = 0;
        let m = measure(cfg);
        assert_eq!(m.cancelled, m.tasks);
        assert_eq!(m.tasks_done, m.tasks);
    }
}
