//! Ablation: engine input-path dispatch rate on *this* host.
//!
//! The network agent receives work in multi-thousand-task shard frames,
//! so how tasks cross from the I/O thread into the engine decides the
//! socket path's dispatch ceiling. This harness measures the engine's
//! four input paths on the canonical no-op workload:
//!
//! - `preloaded` — finite input, chunk-queue hand-out (the in-process
//!   reference the net-rate gate compares against);
//! - `stream` — per-item channel plus feeder thread (what any unsized
//!   iterator gets, and what the agent used before batch feeding);
//! - `batched` — `Engine::run_batched`, whole `Vec` batches straight to
//!   the workers (what the reactor agent uses now).
//!
//! Each runs with and without an `on_result` collector, matching the
//! gate (direct) and agent (collector) configurations. The stream/batch
//! gap is the per-item channel-hop tax the batch-granular source
//! removes — the measured basis for the net-rate gate's ceiling.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use htpar_bench::{header, preamble, row};
use htpar_core::options::Options;
use htpar_core::prelude::*;
use htpar_core::runner::{Engine, JobInput, ResultCallback};
use htpar_core::template::Template;

/// Batch size mirroring the agent's io → engine feed.
const BATCH: usize = 64;

fn engine(jobs: usize, with_collector: bool) -> Engine {
    let on_result: Option<ResultCallback> =
        with_collector.then(|| Arc::new(|_: &JobResult| {}) as ResultCallback);
    Engine {
        options: Options {
            jobs,
            shell: false,
            ..Options::default()
        },
        template: Template::parse("noop {}").expect("static template"),
        executor: Arc::new(FnExecutor::noop()),
        on_result,
        skip: HashSet::new(),
        gate: None,
        bus: None,
    }
}

struct RecvIter(htpar_core::crossbeam_channel::Receiver<JobInput>);
impl Iterator for RecvIter {
    type Item = JobInput;
    fn next(&mut self) -> Option<JobInput> {
        self.0.recv().ok()
    }
}

fn rate(tasks: u64, run: impl FnOnce()) -> f64 {
    let t = Instant::now();
    run();
    tasks as f64 / t.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    preamble(
        "Ablation — engine input path vs dispatch rate (no-op tasks, this host)",
        "per-item channel hops tax streaming dispatch; batch hand-off restores it",
    );
    let tasks: u64 = 200_000;
    let jobs = 8;
    let inputs: Vec<JobInput> = (1..=tasks)
        .map(|i| JobInput::new(i, vec![i.to_string()]))
        .collect();

    let widths = [10, 11, 14];
    println!("{}", header(&["path", "collector", "tasks/s"], &widths));
    for with_collector in [false, true] {
        let feed = inputs.clone();
        let r = rate(tasks, || {
            engine(jobs, with_collector)
                .run(Box::new(feed.into_iter()))
                .expect("preloaded run");
        });
        println!(
            "{}",
            row(
                &[
                    "preloaded".to_string(),
                    with_collector.to_string(),
                    format!("{r:.0}")
                ],
                &widths
            )
        );

        let (tx, rx) = htpar_core::crossbeam_channel::unbounded::<JobInput>();
        let feed = inputs.clone();
        let feeder = std::thread::spawn(move || {
            for item in feed {
                tx.send(item).unwrap();
            }
        });
        let r = rate(tasks, || {
            engine(jobs, with_collector)
                .run(Box::new(RecvIter(rx)))
                .expect("stream run");
        });
        feeder.join().unwrap();
        println!(
            "{}",
            row(
                &[
                    "stream".to_string(),
                    with_collector.to_string(),
                    format!("{r:.0}")
                ],
                &widths
            )
        );

        let (tx, rx) = htpar_core::crossbeam_channel::unbounded::<Vec<JobInput>>();
        let feed = inputs.clone();
        let feeder = std::thread::spawn(move || {
            for chunk in feed.chunks(BATCH) {
                tx.send(chunk.to_vec()).unwrap();
            }
        });
        let r = rate(tasks, || {
            engine(jobs, with_collector)
                .run_batched(rx)
                .expect("batched run");
        });
        feeder.join().unwrap();
        println!(
            "{}",
            row(
                &[
                    "batched".to_string(),
                    with_collector.to_string(),
                    format!("{r:.0}")
                ],
                &widths
            )
        );
    }
}
