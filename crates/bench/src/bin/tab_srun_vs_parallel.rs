//! §IV regenerator: per-task `srun` dispatch vs GNU-Parallel-style
//! dispatch.
//!
//! Paper: "running multiple instances of GNU Parallel scales and performs
//! significantly better than the srun directive alone. This is because
//! srun may initially create a resource allocation for each run, and a
//! large number of srun invocations can impact the overall scheduler
//! performance." Listing 4 (the pre-GNU-Parallel Darshan script) even
//! sleeps 0.2 s between sruns to protect the controller.

use htpar_bench::{header, preamble, row};
use htpar_cluster::{LaunchModel, SrunModel};

fn main() {
    preamble(
        "§IV — dispatch: one srun per task vs a parallel-engine instance",
        "srun serializes through the central controller; parallel dispatches at 470/s locally",
    );
    let srun = SrunModel::calibrated();
    let parallel = LaunchModel::paper_calibrated();
    let widths = [9, 13, 17, 11];
    println!(
        "{}",
        header(
            &["tasks", "srun_total_s", "parallel_total_s", "advantage"],
            &widths
        )
    );
    for n in [36u64, 128, 512, 2048, 8192] {
        let t_srun = srun.dispatch_time(n);
        let t_par = parallel.dispatch_time(n, 1);
        println!(
            "{}",
            row(
                &[
                    format!("{n}"),
                    format!("{t_srun:.1}"),
                    format!("{t_par:.2}"),
                    format!("{:.0}x", t_srun / t_par),
                ],
                &widths
            )
        );
    }
    println!();
    println!("controller collapse without client-side pacing:");
    let unpaced = SrunModel {
        client_spacing_secs: 0.0,
        ..SrunModel::calibrated()
    };
    let widths = [9, 16];
    println!("{}", header(&["tasks", "srun_rate_task/s"], &widths));
    for n in [100u64, 500, 1000, 5000] {
        println!(
            "{}",
            row(
                &[format!("{n}"), format!("{:.1}", unpaced.dispatch_rate(n))],
                &widths
            )
        );
    }
    println!();
    println!("checks:");
    println!(
        "  128 tasks: srun {:.1}s vs parallel {:.2}s (the listing-4 vs listing-5 gap)",
        srun.dispatch_time(128),
        parallel.dispatch_time(128, 1)
    );
}
