//! Process-launch rate regression gate.
//!
//! Runs the canonical spawn-bound workload (1k real `/bin/true {}`
//! launches at `-j 8`) through the posix_spawn fast path and exits
//! nonzero when the launch rate drops below the checked-in floor. The
//! floor sits above the legacy `sh -c` + reader-thread path's rate, so
//! reverting the fast path trips the gate. CI runs this in release
//! mode; `tests/spawn_rate_gate.rs` runs the same check under
//! `cargo test`.
//!
//! Flags:
//!   --jobs N        slot count (default 8)
//!   --tasks N       launch count (default 1000)
//!   --floor RATE    override the compiled-in floor (launches/sec)
//!   --legacy        measure the portable path instead of the fast path
//!   --report-only   print both paths' measurements without enforcing
//!   --jsonl FILE    append one JSON line per trial for trend tracking
//!
//! To verify the gate trips, set `HTPAR_SPAWN_GATE_HANDICAP_US` to an
//! artificial per-launch cost in microseconds and watch it fail.

use std::io::Write;

use htpar_bench::spawngate::{self, SpawnGateMeasurement};

fn jsonl_line(path: &str, m: &SpawnGateMeasurement, trial: usize) {
    let line = format!(
        "{{\"bench\":\"spawn_rate_gate\",\"trial\":{trial},\"jobs\":{},\"tasks\":{},\
         \"wall_secs\":{:.6},\"launches_per_sec\":{:.0}}}\n",
        m.jobs,
        m.tasks,
        m.wall.as_secs_f64(),
        m.launches_per_sec
    );
    let ok = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = ok {
        eprintln!("spawn_rate_gate: cannot write {path}: {e}");
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = flag_value(&args, "--jobs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(spawngate::GATE_JOBS);
    let tasks = flag_value(&args, "--tasks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(spawngate::GATE_TASKS);
    let floor = flag_value(&args, "--floor")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(spawngate::floor);
    let legacy = args.iter().any(|a| a == "--legacy");
    let report_only = args.iter().any(|a| a == "--report-only");
    let jsonl = flag_value(&args, "--jsonl");

    println!("spawn-rate gate: {tasks} real /bin/true launches at -j {jobs}");
    if let Some(cost) = spawngate::handicap() {
        println!(
            "  handicap:     {} us/launch (simulated slowdown)",
            cost.as_micros()
        );
    }

    if report_only {
        // Both paths, side by side: the number the committed
        // BENCH_spawn_rate_gate.json records.
        let before = spawngate::measure(jobs, tasks, true);
        let after = spawngate::measure(jobs, tasks, false);
        println!(
            "  legacy path:  {:.0} launches/s ({:.3} s)",
            before.launches_per_sec,
            before.wall.as_secs_f64()
        );
        println!(
            "  fast path:    {:.0} launches/s ({:.3} s)",
            after.launches_per_sec,
            after.wall.as_secs_f64()
        );
        println!(
            "  speedup:      {:.2}x",
            after.launches_per_sec / before.launches_per_sec.max(1e-9)
        );
        return;
    }

    let m = spawngate::measure(jobs, tasks, legacy);
    if let Some(path) = &jsonl {
        jsonl_line(path, &m, 1);
    }
    let mut rate = m.launches_per_sec;
    println!("  measured:     {rate:.0} launches/s");
    println!("  floor:        {floor:.0} launches/s");
    // Retry before declaring a regression: a transient host hiccup
    // depresses one run, a real slowdown depresses all of them.
    for attempt in 2..=spawngate::GATE_ATTEMPTS {
        if rate >= floor {
            break;
        }
        let m = spawngate::measure(jobs, tasks, legacy);
        if let Some(path) = &jsonl {
            jsonl_line(path, &m, attempt);
        }
        rate = m.launches_per_sec;
        println!("  retry {attempt}:      {rate:.0} launches/s");
    }
    if rate < floor {
        eprintln!("FAIL: launch rate {rate:.0}/s is below the floor {floor:.0}/s");
        std::process::exit(1);
    }
    println!("PASS: {:.2}x above floor", rate / floor);
}
