//! Fig. 4 regenerator: Shifter container launch rate.
//!
//! Paper: "a container launch rate upper bound of approximately 5,200
//! processes per second... a Shifter container startup overhead of only
//! 19% compared to 'bare metal' performance."

use htpar_bench::{header, preamble, row};
use htpar_cluster::LaunchModel;
use htpar_containers::{stress::launch_rate, BareMetal, Shifter};

fn main() {
    preamble(
        "Fig. 4 — Shifter container launches per second (Perlmutter CPU node model)",
        "upper bound ~5,200/s; 19% startup overhead vs bare metal",
    );
    let model = LaunchModel::paper_calibrated();
    let shifter = Shifter::default();
    let widths = [10, 16, 16, 12];
    println!(
        "{}",
        header(
            &["instances", "bare_metal/s", "shifter/s", "overhead_%"],
            &widths
        )
    );
    let mut peak_bare: f64 = 0.0;
    let mut peak_shifter: f64 = 0.0;
    for instances in [1u32, 2, 4, 8, 16, 32, 64] {
        let bare = launch_rate(&model, &BareMetal, instances);
        let shift = launch_rate(&model, &shifter, instances);
        peak_bare = peak_bare.max(bare);
        peak_shifter = peak_shifter.max(shift);
        println!(
            "{}",
            row(
                &[
                    format!("{instances}"),
                    format!("{bare:.0}"),
                    format!("{shift:.0}"),
                    format!("{:.1}", (1.0 - shift / bare) * 100.0),
                ],
                &widths
            )
        );
    }
    println!();
    println!("checks:");
    println!("  peak shifter rate: {peak_shifter:.0}/s (paper: ~5,200/s)");
    println!(
        "  startup overhead at peak: {:.1}% (paper: 19%)",
        (1.0 - peak_shifter / peak_bare) * 100.0
    );
}
