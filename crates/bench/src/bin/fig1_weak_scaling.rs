//! Fig. 1 regenerator: weak scaling on simulated Frontier.
//!
//! Paper: "Each node executed 128 parallel instances of a simple bash
//! script... Half of the processes completed in less than a minute, and
//! 75% completed in less than two minutes with 8,000 nodes. Greater
//! variance was observed in 9,000-node runs due to outlier nodes...
//! the maximum execution time for 9,000 nodes (1.152 million tasks) is
//! 561 seconds."
//!
//! `--full-scale` additionally executes the whole-machine run (9,408
//! Frontier nodes, 1.2 M tasks — beyond the paper's 9,000-node /
//! 1.152 M-task largest run) through the discrete-event engine,
//! cross-checks it against the analytic schedule draw for draw, and
//! reports the engine's event throughput. This is the workload the
//! calendar-queue event core exists for; it panics on any mismatch, so
//! it doubles as a CI gate.

use std::sync::Arc;

use htpar_bench::{header, preamble, row};
use htpar_cluster::des::{run_des, run_des_observed};
use htpar_cluster::weak_scaling::{run, WeakScalingConfig};
use htpar_telemetry::{EventBus, MetricsRegistry};

/// All 74 cabinets of Frontier: the full machine, not just the paper's
/// largest 9,000-node job.
const FULL_SCALE_NODES: u32 = 9_408;

fn full_scale(seed: u64) {
    let config = WeakScalingConfig::frontier(FULL_SCALE_NODES, seed);
    println!(
        "full-scale: {} nodes x {} tasks/node = {} tasks (DES, seed {seed})",
        config.nodes,
        config.tasks_per_node,
        config.nodes as u64 * config.tasks_per_node as u64,
    );

    // Timed bare run: no telemetry, pure engine throughput.
    let started = std::time::Instant::now();
    let des = run_des(&config);
    let wall = started.elapsed().as_secs_f64();

    // Observed run: counts fired events and proves the telemetry path
    // holds up at full scale without perturbing results.
    let bus = EventBus::shared();
    let metrics = MetricsRegistry::shared();
    bus.attach(metrics.clone());
    let observed = run_des_observed(&config, Some(Arc::clone(&bus)));
    let fired = metrics.counter("sim_event_fired");
    assert_eq!(
        des.task_completion_secs, observed.task_completion_secs,
        "telemetry must not perturb the run"
    );

    // Cross-check the event-driven execution against the closed-form
    // schedule, draw for draw (the analytic path is node-major, the DES
    // interleaves nodes; compare as sorted multisets).
    let analytic = run(&config);
    assert_eq!(des.tasks_total, analytic.tasks_total);
    let mut expected = analytic.task_completion_secs;
    expected.sort_by(f64::total_cmp);
    assert_eq!(expected.len(), des.task_completion_secs.len());
    for (i, (a, d)) in expected.iter().zip(&des.task_completion_secs).enumerate() {
        assert!(
            (a - d).abs() < 1e-3,
            "completion #{i}: analytic {a} vs des {d}"
        );
    }
    assert!(
        (analytic.makespan_secs - des.makespan_secs).abs() < 1e-3,
        "makespan: analytic {} vs des {}",
        analytic.makespan_secs,
        des.makespan_secs
    );

    println!(
        "  {} events fired in {wall:.2}s wall = {:.1}M events/s; makespan {:.1}s (analytic {:.1}s)",
        fired,
        fired as f64 / wall / 1e6,
        des.makespan_secs,
        analytic.makespan_secs
    );
    println!("  cross-check: DES == analytic schedule draw for draw (1.2M tasks)");
}

fn main() {
    let mut seed: u64 = 2024;
    let mut want_full_scale = false;
    for arg in std::env::args().skip(1) {
        if arg == "--full-scale" {
            want_full_scale = true;
        } else if let Ok(s) = arg.parse() {
            seed = s;
        }
    }
    preamble(
        "Fig. 1 — weak scaling on Frontier (simulated)",
        "linear medians; 8k nodes: median <60s, q3 <120s; 9k nodes max ~561s",
    );
    let widths = [6, 10, 9, 9, 9, 9, 9, 11];
    println!(
        "{}",
        header(
            &[
                "nodes",
                "tasks",
                "min_s",
                "q1_s",
                "med_s",
                "q3_s",
                "max_s",
                "makespan_s"
            ],
            &widths
        )
    );
    let mut rows = Vec::new();
    for nodes in (1..=9).map(|k| k * 1000) {
        let result = run(&WeakScalingConfig::frontier(nodes, seed));
        let s = result.task_summary();
        println!(
            "{}",
            row(
                &[
                    format!("{nodes}"),
                    format!("{}", result.tasks_total),
                    format!("{:.1}", s.min),
                    format!("{:.1}", s.q1),
                    format!("{:.1}", s.median),
                    format!("{:.1}", s.q3),
                    format!("{:.1}", s.max),
                    format!("{:.1}", result.makespan_secs),
                ],
                &widths
            )
        );
        rows.push((nodes, s, result.makespan_secs));
    }
    println!();
    let (_, s8k, _) = rows[7];
    let (_, _, mk9k) = rows[8];
    println!("checks:");
    println!(
        "  8,000 nodes: median {:.1}s (<60 expected), q3 {:.1}s (<120 expected)",
        s8k.median, s8k.q3
    );
    println!("  9,000 nodes: makespan {:.1}s (paper: 561s)", mk9k);
    if want_full_scale {
        println!();
        full_scale(seed);
    }
}
