//! Fig. 1 regenerator: weak scaling on simulated Frontier.
//!
//! Paper: "Each node executed 128 parallel instances of a simple bash
//! script... Half of the processes completed in less than a minute, and
//! 75% completed in less than two minutes with 8,000 nodes. Greater
//! variance was observed in 9,000-node runs due to outlier nodes...
//! the maximum execution time for 9,000 nodes (1.152 million tasks) is
//! 561 seconds."

use htpar_bench::{header, preamble, row};
use htpar_cluster::weak_scaling::{run, WeakScalingConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);
    preamble(
        "Fig. 1 — weak scaling on Frontier (simulated)",
        "linear medians; 8k nodes: median <60s, q3 <120s; 9k nodes max ~561s",
    );
    let widths = [6, 10, 9, 9, 9, 9, 9, 11];
    println!(
        "{}",
        header(
            &[
                "nodes",
                "tasks",
                "min_s",
                "q1_s",
                "med_s",
                "q3_s",
                "max_s",
                "makespan_s"
            ],
            &widths
        )
    );
    let mut rows = Vec::new();
    for nodes in (1..=9).map(|k| k * 1000) {
        let result = run(&WeakScalingConfig::frontier(nodes, seed));
        let s = result.task_summary();
        println!(
            "{}",
            row(
                &[
                    format!("{nodes}"),
                    format!("{}", result.tasks_total),
                    format!("{:.1}", s.min),
                    format!("{:.1}", s.q1),
                    format!("{:.1}", s.median),
                    format!("{:.1}", s.q3),
                    format!("{:.1}", s.max),
                    format!("{:.1}", result.makespan_secs),
                ],
                &widths
            )
        );
        rows.push((nodes, s, result.makespan_secs));
    }
    println!();
    let (_, s8k, _) = rows[7];
    let (_, _, mk9k) = rows[8];
    println!("checks:");
    println!(
        "  8,000 nodes: median {:.1}s (<60 expected), q3 {:.1}s (<120 expected)",
        s8k.median, s8k.q3
    );
    println!("  9,000 nodes: makespan {:.1}s (paper: 561s)", mk9k);
}
