//! Fig. 3 regenerator: maximum tasks launched per second.
//!
//! Paper (Perlmutter CPU node): a single GNU Parallel instance launches
//! ~470 processes/s; multiple instances raise the aggregate to ~6,400/s;
//! full 256-thread utilization therefore needs tasks ≥545 ms (single
//! instance) or ≥40 ms (multiple).
//!
//! Two parts:
//! 1. the calibrated Perlmutter model (the paper's numbers);
//! 2. a **real measurement** on this machine — our engine dispatching
//!    actual `/bin/true` processes and in-process no-ops — to show the
//!    same shape (single-instance serialization, multi-instance scaling
//!    to a node ceiling) with this host's absolute numbers.
//!
//! Pass `--jsonl PATH` to also write the machine-readable launch
//! trajectory (one telemetry event per line, schema in DESIGN.md) so
//! plots can consume the run directly.

use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

use htpar_bench::{gate, header, preamble, row};
use htpar_cluster::LaunchModel;
use htpar_core::prelude::*;
use htpar_core::stats::RateMeter;
use htpar_telemetry::{EventBus, JsonlWriter, MetricsRegistry};

fn model_sweep() {
    let model = LaunchModel::paper_calibrated();
    let widths = [10, 14, 22];
    println!(
        "{}",
        header(
            &["instances", "launch_rate/s", "min_task_full_util_ms"],
            &widths
        )
    );
    for instances in [1u32, 2, 4, 8, 13, 16, 32, 64] {
        let rate = model.aggregate_rate(instances);
        let floor_ms = LaunchModel::min_task_secs_for_utilization(256, rate) * 1e3;
        println!(
            "{}",
            row(
                &[
                    format!("{instances}"),
                    format!("{rate:.0}"),
                    format!("{floor_ms:.0}"),
                ],
                &widths
            )
        );
    }
    println!();
    println!("checks:");
    println!(
        "  1 instance: {:.0}/s (paper: 470/s), task floor {:.0} ms (paper: 545 ms)",
        model.aggregate_rate(1),
        LaunchModel::min_task_secs_for_utilization(256, model.aggregate_rate(1)) * 1e3
    );
    println!(
        "  many instances: {:.0}/s (paper: 6,400/s), task floor {:.0} ms (paper: 40 ms)",
        model.aggregate_rate(64),
        LaunchModel::min_task_secs_for_utilization(256, model.aggregate_rate(64)) * 1e3
    );
}

fn measure(instances: usize, tasks_per_instance: usize, real_processes: bool) -> f64 {
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..instances {
            scope.spawn(move || {
                let builder = Parallel::new("true")
                    .jobs(16)
                    .args((0..tasks_per_instance).map(|i| i.to_string()));
                let builder = if real_processes {
                    builder.shell(false)
                } else {
                    builder.executor(FnExecutor::noop())
                };
                builder.run().expect("launch sweep run");
            });
        }
    });
    (instances * tasks_per_instance) as f64 / started.elapsed().as_secs_f64()
}

fn real_sweep() {
    println!("real measurement on this host (our engine):");
    let widths = [10, 20, 20];
    println!(
        "{}",
        header(&["instances", "fork_exec_rate/s", "inproc_rate/s"], &widths)
    );
    let per_instance = 1500usize;
    let mut single_fork = 0.0;
    let mut best_fork: f64 = 0.0;
    for instances in [1usize, 2, 4, 8] {
        let fork_rate = measure(instances, per_instance, true);
        let noop_rate = measure(instances, per_instance * 20, false);
        if instances == 1 {
            single_fork = fork_rate;
        }
        best_fork = best_fork.max(fork_rate);
        println!(
            "{}",
            row(
                &[
                    format!("{instances}"),
                    format!("{fork_rate:.0}"),
                    format!("{noop_rate:.0}"),
                ],
                &widths
            )
        );
    }
    println!();
    println!(
        "  shape check: multi-instance fork rate {:.1}x single-instance (paper's ratio: ~13.6x)",
        best_fork / single_fork
    );
}

/// Laptop scale of the Fig. 3 acceptance run: `-j 64`, 100k in-process
/// no-ops, observed by a [`MetricsRegistry`] on the bus — the same
/// measurement core as the launch-rate gate, at 10x its task count. One
/// JSONL record per trial lands in the `--jsonl` file, so before/after
/// engine comparisons (`BENCH_fig3_launch_rate.json`) are reproducible
/// with this binary alone.
fn laptop_scale_sweep(out: Option<&mut dyn Write>) {
    const JOBS: usize = 64;
    const TASKS: u64 = 100_000;
    const TRIALS: usize = 3;
    let engine = std::env::var("HTPAR_FIG3_ENGINE").unwrap_or_else(|_| "current".into());
    println!("laptop-scale dispatch ({TASKS} in-process no-ops at -j {JOBS}, bus-observed):");
    let mut lines = Vec::new();
    for trial in 1..=TRIALS {
        let m = gate::measure(JOBS, TASKS, true);
        let sustained = m.launch_rate_sustained.unwrap_or(0.0);
        println!(
            "  trial {trial}: {:>9.0} tasks/s wall-clock   {:>9.0}/s sustained (bus)",
            m.tasks_per_sec, sustained
        );
        lines.push(format!(
            "{{\"bench\":\"fig3_laptop_scale\",\"engine\":\"{engine}\",\"jobs\":{},\"tasks\":{},\"trial\":{trial},\"wall_secs\":{:.6},\"tasks_per_sec\":{:.0},\"launch_rate_sustained\":{:.0}}}",
            m.jobs,
            m.tasks,
            m.wall.as_secs_f64(),
            m.tasks_per_sec,
            sustained
        ));
    }
    if let Some(out) = out {
        for line in &lines {
            writeln!(out, "{line}").expect("write laptop-scale record");
        }
    }
}

/// Run one instrumented dispatch sweep with the legacy `RateMeter` and
/// the telemetry `MetricsRegistry` observing the same launches, and
/// (optionally) a JSONL trajectory on disk. The two rate estimates must
/// agree — the registry is a view over the bus, not a new definition.
fn telemetry_sweep(trajectory: Option<Arc<JsonlWriter>>) {
    let bus = EventBus::shared();
    let metrics = MetricsRegistry::shared();
    bus.attach(metrics.clone());
    let has_trajectory = trajectory.is_some();
    if let Some(writer) = trajectory {
        bus.attach(writer);
    }

    // The legacy meter stamps from inside the executor — the pre-bus
    // instrumentation point — while the registry stamps `spawned` events
    // off the bus. Tasks sleep ~1 ms so the run spans a measurable window.
    let meter = Arc::new(RateMeter::new());
    let meter2 = Arc::clone(&meter);
    Parallel::new("noop {}")
        .jobs(4)
        .telemetry(Arc::clone(&bus))
        .executor(FnExecutor::new(move |_| {
            meter2.record();
            std::thread::sleep(std::time::Duration::from_millis(1));
            Ok(TaskOutput::success())
        }))
        .args((0..400).map(|i| i.to_string()))
        .run()
        .expect("telemetry sweep run");

    let legacy = meter.rate_per_sec().expect("≥2 launches");
    let registry = metrics.launch_rate_sustained().expect("≥2 spawned events");
    let disagreement = (registry - legacy).abs() / legacy;
    println!("telemetry cross-check (400 tasks, 4 slots):");
    println!("  legacy RateMeter:        {legacy:.1} launches/s");
    println!("  bus MetricsRegistry:     {registry:.1} launches/s");
    println!(
        "  disagreement:            {:.3} % (must be < 1 %)",
        disagreement * 100.0
    );
    assert!(
        disagreement < 0.01,
        "registry rate diverged from RateMeter: {registry} vs {legacy}"
    );
    let snap = metrics.snapshot();
    println!(
        "  registry snapshot:       ok={} p50={}us p99={}us",
        snap.ok, snap.runtime.p50, snap.runtime.p99
    );
    if has_trajectory {
        println!("  JSONL trajectory:        appended to --jsonl file");
    }
}

fn main() {
    preamble(
        "Fig. 3 — maximum tasks launched per second",
        "470/s single instance, ~6,400/s aggregate; task floors 545 ms / 40 ms",
    );
    println!("calibrated Perlmutter model:");
    model_sweep();
    println!();
    real_sweep();
    println!();
    let args: Vec<String> = std::env::args().collect();
    let jsonl = args
        .iter()
        .position(|a| a == "--jsonl")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let mut bench_file = jsonl.map(|path| {
        std::fs::File::create(path).unwrap_or_else(|e| panic!("fig3: cannot open {path}: {e}"))
    });
    laptop_scale_sweep(bench_file.as_mut().map(|f| f as &mut dyn Write));
    println!();
    let writer = bench_file.map(|f| Arc::new(JsonlWriter::new(Box::new(f))));
    telemetry_sweep(writer.clone());
    if let Some(writer) = writer {
        writer.flush().expect("flush --jsonl file");
    }
    if let Some(path) = jsonl {
        println!("  wrote laptop-scale records + trajectory to {path}");
    }
}
