//! Ablation: where does the per-task nanosecond budget go?
//!
//! The launch-rate gate measures the whole engine; this tool measures the
//! *task body* — the straight-line work one worker does per job with all
//! coordination stripped away — and then adds the pieces back one at a
//! time. Comparing the last row against the gate's raw rate separates
//! "cost of the work" from "cost of the engine".
//!
//! Usage: ablation_task_body [N]   (default 1,000,000 iterations)

use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

use htpar_core::executor::{ExecContext, Executor, FnExecutor};
use htpar_core::job::{CommandLine, JobResult, JobStatus};
use htpar_core::template::{ExpandContext, Template};

fn bench<F: FnMut(u64)>(name: &str, n: u64, mut f: F) {
    let started = Instant::now();
    for i in 0..n {
        f(i);
    }
    let per = started.elapsed().as_nanos() as f64 / n as f64;
    let rate = 1e9 / per;
    println!("  {name:<38} {per:>8.1} ns/task  ({rate:>9.0} tasks/s)");
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let template = Template::parse("noop {}").expect("static template");
    let executor: Arc<dyn Executor> = Arc::new(FnExecutor::noop());
    let ctx = ExecContext { timeout: None };
    println!("task-body ablation over {n} iterations:");

    let args: Vec<Vec<String>> = (0..n).map(|i| vec![i.to_string()]).collect();

    bench("baseline: arg drop only", n, {
        let mut it = args.clone().into_iter();
        move |_| {
            let a = it.next().unwrap();
            std::hint::black_box(&a);
        }
    });

    bench("+ template expand", n, {
        let mut it = args.clone().into_iter();
        let template = template.clone();
        move |i| {
            let a = it.next().unwrap();
            let rendered = template.expand(&ExpandContext {
                args: &a,
                seq: i + 1,
                slot: 1,
            });
            std::hint::black_box(&rendered);
        }
    });

    bench("+ Instant::now x2", n, {
        let mut it = args.clone().into_iter();
        let template = template.clone();
        move |i| {
            let a = it.next().unwrap();
            let rendered = template.expand(&ExpandContext {
                args: &a,
                seq: i + 1,
                slot: 1,
            });
            let t0 = Instant::now();
            let rt = t0.elapsed();
            std::hint::black_box(&(rendered, rt));
        }
    });

    bench("+ CommandLine + executor call", n, {
        let mut it = args.clone().into_iter();
        let template = template.clone();
        let executor = Arc::clone(&executor);
        move |i| {
            let a = it.next().unwrap();
            let rendered = template.expand(&ExpandContext {
                args: &a,
                seq: i + 1,
                slot: 1,
            });
            let cmd = CommandLine::new(i + 1, 1, a, rendered, Vec::new(), Vec::new());
            let t0 = Instant::now();
            let out = executor.execute(&cmd, &ctx);
            let rt = t0.elapsed();
            std::hint::black_box(&(cmd, out, rt));
        }
    });

    let mut results: Vec<JobResult> = Vec::with_capacity(n as usize);
    let run_sys = SystemTime::now();
    let run_inst = Instant::now();
    bench("+ JobResult build + push (full body)", n, {
        let mut it = args.clone().into_iter();
        let template = template.clone();
        let executor = Arc::clone(&executor);
        let results = &mut results;
        move |i| {
            let a = it.next().unwrap();
            let rendered = template.expand(&ExpandContext {
                args: &a,
                seq: i + 1,
                slot: 1,
            });
            let cmd = CommandLine::new(i + 1, 1, a, rendered, Vec::new(), Vec::new());
            let t0 = Instant::now();
            let out = executor.execute(&cmd, &ctx);
            let runtime = t0.elapsed();
            let (args, command) = cmd.into_result_parts();
            results.push(JobResult {
                seq: i + 1,
                slot: 1,
                args,
                command,
                status: out.status,
                stdout: out.stdout,
                stderr: out.stderr,
                started_at: run_sys + t0.saturating_duration_since(run_inst),
                runtime,
                tries: 0,
            });
        }
    });
    assert!(results.iter().all(|r| r.status == JobStatus::Success));
    assert_eq!(results.len(), n as usize);
    drop(results);
    std::hint::black_box(&Duration::ZERO);
}
