//! Ablation: the paper's NVMe-first best practice vs writing task
//! stdout straight to Lustre.
//!
//! Paper §III: "The standard output was initially written to the
//! node-local NVMe for I/O efficiency and to avoid writing small files
//! to the Lustre filesystem, adhering to best practices." This harness
//! quantifies what that practice buys: the Lustre-direct run pays a
//! metadata-server storm whose cost grows with machine occupancy.

use htpar_bench::{header, preamble, row};
use htpar_cluster::weak_scaling::{run, IoStrategy, WeakScalingConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);
    preamble(
        "Ablation — stdout to NVMe-first vs straight to Lustre (simulated Frontier)",
        "the best practice the paper's workflow encodes; MDS storm costs grow with scale",
    );
    let widths = [6, 11, 11, 9, 12, 12];
    println!(
        "{}",
        header(
            &[
                "nodes",
                "nvme_med_s",
                "lfs_med_s",
                "med_ratio",
                "nvme_p99_s",
                "lfs_p99_s"
            ],
            &widths
        )
    );
    for nodes in [1000u32, 3000, 5000, 7000, 9000] {
        let good = run(&WeakScalingConfig::frontier(nodes, seed));
        let mut cfg = WeakScalingConfig::frontier(nodes, seed);
        cfg.io = IoStrategy::LustreDirect;
        let bad = run(&cfg);
        let gs = good.task_summary();
        let bs = bad.task_summary();
        println!(
            "{}",
            row(
                &[
                    format!("{nodes}"),
                    format!("{:.1}", gs.median),
                    format!("{:.1}", bs.median),
                    format!("{:.2}x", bs.median / gs.median),
                    format!("{:.1}", gs.p99),
                    format!("{:.1}", bs.p99),
                ],
                &widths
            )
        );
    }
    println!();
    println!("checks:");
    println!("  the median penalty grows with occupancy (the MDS storm scales with task count)");
    println!(
        "  at small scale the strategies converge: the practice costs nothing, so use it always"
    );
}
