//! Robustness: do the headline bands hold across random seeds, or did we
//! get lucky with seed 2024?
//!
//! Reruns the seeded experiments (Fig. 1 at 8,000/9,000 nodes, Fig. 2,
//! the data-motion comparison) over ten seeds and reports min/max of the
//! quantities EXPERIMENTS.md asserts.

use htpar_bench::{header, preamble, row};
use htpar_cluster::gpu;
use htpar_cluster::weak_scaling::{run, WeakScalingConfig};
use htpar_transfer::dtn::{representative_population, MotionComparison};
use htpar_transfer::DtnConfig;

fn main() {
    preamble(
        "Robustness — headline quantities across 10 seeds",
        "bands must hold for every seed, not just the default",
    );
    let seeds: Vec<u64> = (0..10).map(|i| 2024 + i * 101).collect();

    println!("Fig. 1 @ 8,000 nodes (median < 60, q3 < 120) and 9,000 nodes (makespan band):");
    let widths = [8, 10, 9, 13];
    println!(
        "{}",
        header(&["seed", "med8k_s", "q3_8k_s", "makespan9k_s"], &widths)
    );
    let mut worst_med: f64 = 0.0;
    let mut worst_q3: f64 = 0.0;
    let mut mk_lo = f64::INFINITY;
    let mut mk_hi: f64 = 0.0;
    for &seed in &seeds {
        let r8 = run(&WeakScalingConfig::frontier(8000, seed));
        let s8 = r8.task_summary();
        let r9 = run(&WeakScalingConfig::frontier(9000, seed));
        worst_med = worst_med.max(s8.median);
        worst_q3 = worst_q3.max(s8.q3);
        mk_lo = mk_lo.min(r9.makespan_secs);
        mk_hi = mk_hi.max(r9.makespan_secs);
        println!(
            "{}",
            row(
                &[
                    format!("{seed}"),
                    format!("{:.1}", s8.median),
                    format!("{:.1}", s8.q3),
                    format!("{:.1}", r9.makespan_secs),
                ],
                &widths
            )
        );
    }
    println!(
        "  worst median {worst_med:.1}s (<60), worst q3 {worst_q3:.1}s (<120), makespan range [{mk_lo:.0}, {mk_hi:.0}]s (paper: 561s)"
    );

    println!();
    println!("Fig. 2 spread (< 10 s) and data-motion speedups across seeds:");
    let widths = [8, 10, 12, 9];
    println!(
        "{}",
        header(&["seed", "gpu_spread", "seq_speedup", "wms_x"], &widths)
    );
    for &seed in &seeds {
        let points = gpu::sweep(&[10, 40, 70, 100], seed);
        let lo = points.iter().map(|&(_, m)| m).fold(f64::INFINITY, f64::min);
        let hi = points.iter().map(|&(_, m)| m).fold(0.0, f64::max);
        let dataset = representative_population(seed, 20_000, 512.0 * 1024.0 * 1024.0);
        let cmp = MotionComparison::run(&dataset, &DtnConfig::paper_calibrated());
        println!(
            "{}",
            row(
                &[
                    format!("{seed}"),
                    format!("{:.2}", hi - lo),
                    format!("{:.0}x", cmp.speedup_vs_sequential()),
                    format!("{:.1}x", cmp.speedup_vs_wms()),
                ],
                &widths
            )
        );
    }
}
