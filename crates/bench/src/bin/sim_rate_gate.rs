//! Simulated-event-rate regression gate.
//!
//! Runs the canonical fault-replay-shaped DES workload (128 nodes x 1,024
//! tasks with watchdog cancels and mid-run node crashes, see
//! `htpar_bench::simgate`) and exits nonzero when the achieved event rate
//! drops below the checked-in floor. CI runs this in release mode;
//! `tests/sim_rate_gate.rs` runs the same check under `cargo test`.
//!
//! Flags:
//!   --trials N      measure N times and report each (default 1)
//!   --floor RATE    override the compiled-in floor (events/sec)
//!   --engine NAME   label trials in JSONL output (default "current")
//!   --jsonl PATH    append one machine-readable record per trial
//!   --report-only   print the measurements without enforcing the floor
//!
//! To verify the gate trips, set `HTPAR_SIM_GATE_HANDICAP_US` to an
//! artificial per-completion cost in microseconds and watch it fail.

use std::io::Write;

use htpar_bench::simgate;
use serde_json::json;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: usize = flag_value(&args, "--trials")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let floor = flag_value(&args, "--floor")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(simgate::floor);
    let engine = flag_value(&args, "--engine").unwrap_or_else(|| "current".to_string());
    let report_only = args.iter().any(|a| a == "--report-only");
    let mut jsonl = flag_value(&args, "--jsonl").map(|path| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open jsonl file")
    });

    let cfg = simgate::SimGateConfig::canonical();
    println!(
        "sim-rate gate: {} nodes x {} tasks, -j {}, crash every {} nodes",
        cfg.nodes, cfg.tasks_per_node, cfg.jobs, cfg.crash_every
    );
    if let Some(cost) = simgate::handicap() {
        println!(
            "  handicap:        {} us/completion (simulated slowdown)",
            cost.as_micros()
        );
    }

    let mut best_rate = 0.0f64;
    for trial in 1..=trials.max(1) {
        let m = simgate::measure(cfg);
        best_rate = best_rate.max(m.events_per_sec);
        println!(
            "  trial {trial}: {:.0} events/s ({} fired + {} cancelled in {:.3} s, {} tasks done)",
            m.events_per_sec,
            m.fired,
            m.cancelled,
            m.wall.as_secs_f64(),
            m.tasks_done
        );
        assert_eq!(m.tasks_done, m.tasks, "gate workload must complete");
        if let Some(file) = &mut jsonl {
            let record = json!({
                "bench": "sim_event_rate",
                "engine": (engine.as_str()),
                "trial": trial,
                "nodes": (m.nodes),
                "tasks": (m.tasks),
                "events_fired": (m.fired),
                "events_cancelled": (m.cancelled),
                "wall_secs": (m.wall.as_secs_f64()),
                "events_per_sec": (m.events_per_sec),
            });
            let line = serde_json::to_string(&record);
            writeln!(file, "{line}").expect("write jsonl record");
        }
    }
    println!("  floor:   {floor:.0} events/s");

    if report_only {
        return;
    }
    // Retry before declaring a regression: a transient host hiccup
    // depresses one run, a real slowdown depresses all of them.
    let mut rate = best_rate;
    for attempt in (trials + 1)..=simgate::GATE_ATTEMPTS.max(trials) {
        if rate >= floor {
            break;
        }
        let retry = simgate::measure(cfg);
        rate = rate.max(retry.events_per_sec);
        println!("  retry {attempt}: {:.0} events/s", retry.events_per_sec);
    }
    if rate < floor {
        eprintln!("FAIL: simulated event rate {rate:.0}/s is below the floor {floor:.0}/s");
        std::process::exit(1);
    }
    println!("PASS: {:.2}x above floor", rate / floor);
}
