//! Open-loop session load generator for `htpar serve`.
//!
//! Launches sessions against a running pilot on a fixed arrival
//! schedule — Poisson, uniform, or bursty — *without* waiting for
//! earlier sessions to finish (open-loop: arrival rate is set by the
//! clock, not by service completions, so a slow pilot accumulates
//! backlog instead of silently throttling the offered load; this is
//! the difference between measuring capacity and measuring luck).
//! Each session submits its tasks, drains its completions, and reports
//! time-to-first-task and makespan; the run ends with a percentile
//! summary over all sessions.
//!
//! Target a pilot started separately, e.g.:
//!
//! ```text
//! htpar serve --local-cluster 4 -j 4 --max-sessions 200 &
//! pilot_load --connect 127.0.0.1:PORT --sessions 200 --rate 40 --arrivals burst
//! ```
//!
//! Flags:
//!   --connect SPEC     pilot address (required; `host:port` or `unix:/path`)
//!   --sessions N       total sessions to launch (default 100)
//!   --rate R           mean session arrivals per second (default 20)
//!   --arrivals KIND    poisson | uniform | burst (default poisson)
//!   --burst K          sessions per burst in burst mode (default 8)
//!   --tasks N          tasks per session (default 200)
//!   --sleep-us N       per-task in-process sleep payload (default no-op)
//!   --tenants N        spread sessions over N tenant names (default 4)
//!   --seed N           arrival-stream RNG seed (default 42)
//!   --jsonl PATH       write one record per session + a summary

use std::io::Write;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use htpar_net::client::{ClientEvent, SessionClient, SessionConfig};
use htpar_net::frame::Payload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

#[derive(Clone, Copy, PartialEq)]
enum Arrivals {
    Poisson,
    Uniform,
    Burst,
}

/// One finished session's numbers, or why it failed.
struct SessionOutcome {
    session: usize,
    tenant: String,
    /// How late the launch fired vs the ideal schedule (scheduler lag).
    lag: Duration,
    result: Result<(Duration, Duration), String>, // (ttft, makespan)
}

fn run_session(
    spec: &str,
    tenant: &str,
    payload: Payload,
    tasks: u64,
) -> Result<(Duration, Duration), String> {
    let mut config = SessionConfig::new(spec, tenant);
    config.payload = payload;
    let mut client = SessionClient::connect(config).map_err(|e| format!("connect: {e}"))?;
    let inputs: Vec<Vec<String>> = (1..=tasks).map(|i| vec![i.to_string()]).collect();
    let started = Instant::now();
    let verdict = client.submit(&inputs).map_err(|e| format!("submit: {e}"))?;
    if !verdict.accepted {
        return Err(format!("admission refused: {}", verdict.reason));
    }
    let mut ttft = None;
    while client.completed() < tasks {
        match client.recv().map_err(|e| format!("recv: {e}"))? {
            ClientEvent::Done(_) => {
                ttft.get_or_insert_with(|| started.elapsed());
            }
            other => return Err(format!("unexpected event {other:?}")),
        }
    }
    let completed = client.finish().map_err(|e| format!("finish: {e}"))?;
    if completed != tasks {
        return Err(format!("completed {completed}/{tasks}"));
    }
    Ok((ttft.expect("tasks > 0"), started.elapsed()))
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(spec) = flag_value(&args, "--connect") else {
        eprintln!("pilot_load: --connect <spec> is required (start `htpar serve` first)");
        std::process::exit(2);
    };
    let sessions: usize = flag_value(&args, "--sessions")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
        .max(1);
    let rate: f64 = flag_value(&args, "--rate")
        .and_then(|v| v.parse().ok())
        .filter(|r: &f64| *r > 0.0)
        .unwrap_or(20.0);
    let arrivals = match flag_value(&args, "--arrivals").as_deref() {
        None | Some("poisson") => Arrivals::Poisson,
        Some("uniform") => Arrivals::Uniform,
        Some("burst") => Arrivals::Burst,
        Some(other) => {
            eprintln!("pilot_load: unknown --arrivals {other} (poisson|uniform|burst)");
            std::process::exit(2);
        }
    };
    let burst: usize = flag_value(&args, "--burst")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
        .max(1);
    let tasks: u64 = flag_value(&args, "--tasks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
        .max(1);
    let payload = match flag_value(&args, "--sleep-us").and_then(|v| v.parse::<u64>().ok()) {
        Some(us) if us > 0 => Payload::SleepUs(us),
        _ => Payload::Noop,
    };
    let tenants: usize = flag_value(&args, "--tenants")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(1);
    let seed: u64 = flag_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let jsonl = flag_value(&args, "--jsonl");

    // Precompute the arrival schedule so the launch loop does no RNG
    // work on the critical path. Offsets are from t0, cumulative.
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut offsets = Vec::with_capacity(sessions);
    let mut t = 0.0f64;
    for i in 0..sessions {
        match arrivals {
            Arrivals::Poisson => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -u.ln() / rate;
            }
            Arrivals::Uniform => t += 1.0 / rate,
            // Bursts of `burst` sessions land together; the gap between
            // bursts keeps the long-run mean rate at `rate`.
            Arrivals::Burst => {
                if i > 0 && i % burst == 0 {
                    t += burst as f64 / rate;
                }
            }
        }
        offsets.push(Duration::from_secs_f64(t));
    }

    let mode = match arrivals {
        Arrivals::Poisson => "poisson".to_string(),
        Arrivals::Uniform => "uniform".to_string(),
        Arrivals::Burst => format!("burst x{burst}"),
    };
    println!(
        "pilot_load: {sessions} sessions ({mode} arrivals at {rate}/s mean), {tasks} tasks each, \
         {tenants} tenant(s) -> {spec}"
    );

    // Open-loop launcher: fire each session at its scheduled offset,
    // never waiting for earlier ones.
    let (tx, rx) = mpsc::channel::<SessionOutcome>();
    let t0 = Instant::now();
    let mut launched = Vec::with_capacity(sessions);
    for (i, &offset) in offsets.iter().enumerate() {
        if let Some(wait) = offset.checked_sub(t0.elapsed()) {
            std::thread::sleep(wait);
        }
        let lag = t0.elapsed().saturating_sub(offset);
        let spec = spec.clone();
        let tenant = format!("load-{}", i % tenants);
        let tx = tx.clone();
        launched.push(std::thread::spawn(move || {
            let result = run_session(&spec, &tenant, payload, tasks);
            let _ = tx.send(SessionOutcome {
                session: i,
                tenant,
                lag,
                result,
            });
        }));
    }
    drop(tx);

    let mut records = Vec::new();
    let mut ttfts = Vec::new();
    let mut makespans = Vec::new();
    let mut failed = 0usize;
    for outcome in rx {
        match &outcome.result {
            Ok((ttft, makespan)) => {
                ttfts.push(*ttft);
                makespans.push(*makespan);
                records.push(format!(
                    "{{\"bench\":\"pilot_load\",\"session\":{},\"tenant\":\"{}\",\
                     \"lag_ms\":{:.2},\"ttft_ms\":{:.2},\"makespan_ms\":{:.2}}}",
                    outcome.session,
                    outcome.tenant,
                    outcome.lag.as_secs_f64() * 1e3,
                    ttft.as_secs_f64() * 1e3,
                    makespan.as_secs_f64() * 1e3
                ));
            }
            Err(e) => {
                failed += 1;
                eprintln!("pilot_load: session {} failed: {e}", outcome.session);
                records.push(format!(
                    "{{\"bench\":\"pilot_load\",\"session\":{},\"tenant\":\"{}\",\
                     \"error\":\"{}\"}}",
                    outcome.session,
                    outcome.tenant,
                    e.replace('"', "'")
                ));
            }
        }
    }
    for handle in launched {
        let _ = handle.join();
    }
    let wall = t0.elapsed();

    let done = ttfts.len();
    ttfts.sort_unstable();
    makespans.sort_unstable();
    println!(
        "pilot_load: {done}/{sessions} sessions completed ({failed} failed) in {:.2}s \
         ({:.1} sessions/s offered, {:.1} completed/s)",
        wall.as_secs_f64(),
        sessions as f64 / offsets.last().map_or(1e-9, |o| o.as_secs_f64().max(1e-9)),
        done as f64 / wall.as_secs_f64().max(1e-9)
    );
    if done > 0 {
        println!(
            "  ttft:     p50 {:.2} ms  p90 {:.2} ms  p99 {:.2} ms  max {:.2} ms",
            percentile(&ttfts, 0.50).as_secs_f64() * 1e3,
            percentile(&ttfts, 0.90).as_secs_f64() * 1e3,
            percentile(&ttfts, 0.99).as_secs_f64() * 1e3,
            ttfts.last().unwrap().as_secs_f64() * 1e3
        );
        println!(
            "  makespan: p50 {:.2} ms  p90 {:.2} ms  p99 {:.2} ms  max {:.2} ms",
            percentile(&makespans, 0.50).as_secs_f64() * 1e3,
            percentile(&makespans, 0.90).as_secs_f64() * 1e3,
            percentile(&makespans, 0.99).as_secs_f64() * 1e3,
            makespans.last().unwrap().as_secs_f64() * 1e3
        );
    }

    if let Some(path) = jsonl {
        let mut file = std::fs::File::create(&path).expect("open jsonl output");
        for record in &records {
            writeln!(file, "{record}").expect("write jsonl");
        }
        if done > 0 {
            writeln!(
                file,
                "{{\"bench\":\"pilot_load\",\"summary\":true,\"sessions\":{sessions},\
                 \"completed\":{done},\"failed\":{failed},\"wall_secs\":{:.4},\
                 \"p99_ttft_ms\":{:.2},\"p99_makespan_ms\":{:.2}}}",
                wall.as_secs_f64(),
                percentile(&ttfts, 0.99).as_secs_f64() * 1e3,
                percentile(&makespans, 0.99).as_secs_f64() * 1e3
            )
            .expect("write summary");
        }
        println!("  wrote {} records to {path}", records.len() + 1);
    }

    std::process::exit(if failed == 0 { 0 } else { 1 });
}
