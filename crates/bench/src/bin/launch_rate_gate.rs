//! Launch-rate regression gate.
//!
//! Runs the canonical dispatch-bound workload (10k in-process no-op tasks
//! at `-j 64`, rate observed through `MetricsRegistry`) and exits nonzero
//! when the sustained rate drops below the checked-in floor. CI runs this
//! in release mode; `tests/launch_rate_gate.rs` runs the same check under
//! `cargo test`.
//!
//! Flags:
//!   --jobs N        slot count (default 64)
//!   --tasks N       task count (default 10000)
//!   --floor RATE    override the compiled-in floor (tasks/sec)
//!   --report-only   print the measurement without enforcing the floor
//!
//! To verify the gate trips, set `HTPAR_GATE_HANDICAP_US` to an artificial
//! per-task cost in microseconds and watch it fail.

use htpar_bench::gate;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = flag_value(&args, "--jobs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(gate::GATE_JOBS);
    let tasks = flag_value(&args, "--tasks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(gate::GATE_TASKS);
    let floor = flag_value(&args, "--floor")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(gate::floor);
    let report_only = args.iter().any(|a| a == "--report-only");

    // An unobserved run first: pure dispatch cost, no bus in the way.
    let raw = gate::measure(jobs, tasks, false);
    // The gate run proper, observed through MetricsRegistry.
    let observed = gate::measure(jobs, tasks, true);
    let rate = observed.gate_rate();

    println!("launch-rate gate: {tasks} no-op tasks at -j {jobs}");
    if let Some(cost) = gate::handicap() {
        println!(
            "  handicap:            {} us/task (simulated slowdown)",
            cost.as_micros()
        );
    }
    println!(
        "  raw wall-clock:      {:.0} tasks/s ({:.3} s)",
        raw.tasks_per_sec,
        raw.wall.as_secs_f64()
    );
    println!(
        "  observed wall-clock: {:.0} tasks/s ({:.3} s)",
        observed.tasks_per_sec,
        observed.wall.as_secs_f64()
    );
    println!("  sustained (bus):     {rate:.0} tasks/s");
    println!("  floor:               {floor:.0} tasks/s");

    if report_only {
        return;
    }
    let mut rate = rate;
    // Retry before declaring a regression: a transient host hiccup
    // depresses one run, a real slowdown depresses all of them.
    for attempt in 2..=gate::GATE_ATTEMPTS {
        if rate >= floor {
            break;
        }
        let retry = gate::measure(jobs, tasks, true);
        rate = retry.gate_rate();
        println!("  retry {attempt}:             {rate:.0} tasks/s sustained");
    }
    if rate < floor {
        eprintln!("FAIL: sustained launch rate {rate:.0}/s is below the floor {floor:.0}/s");
        std::process::exit(1);
    }
    println!("PASS: {:.2}x above floor", rate / floor);
}
