//! Fig. 5 regenerator: Podman-HPC container launch rate and reliability.
//!
//! Paper: "a significantly lower launch rate upper bound of approximately
//! 65 processes per second... two orders of magnitude slower than
//! Shifter... reliability issues, such as failures in setting user
//! namespaces, database locking, setgid failures, and problems with task
//! tmp directories, were observed at larger scales."

use htpar_bench::{header, preamble, row};
use htpar_cluster::LaunchModel;
use htpar_containers::{
    stress::{launch_rate, stress_run},
    PodmanHpc, Shifter,
};

fn main() {
    preamble(
        "Fig. 5 — Podman-HPC container launches per second",
        "upper bound ~65/s (two orders below Shifter); failures at scale",
    );
    let model = LaunchModel::paper_calibrated();
    let podman = PodmanHpc::default();
    let widths = [10, 6, 12, 11];
    println!(
        "{}",
        header(&["instances", "jobs", "podman/s", "fail_%"], &widths)
    );
    for (instances, jobs) in [(1u32, 1u32), (1, 8), (1, 64), (4, 16), (8, 32), (16, 64)] {
        let rate = launch_rate(&model, &podman, instances);
        let report = stress_run(&model, &podman, 20_000, instances, jobs, 7);
        println!(
            "{}",
            row(
                &[
                    format!("{instances}"),
                    format!("{jobs}"),
                    format!("{rate:.0}"),
                    format!("{:.2}", report.failure_ratio() * 100.0),
                ],
                &widths
            )
        );
    }
    println!();
    let big = stress_run(&model, &podman, 100_000, 16, 64, 7);
    println!("failure modes at 16x64 concurrency over 100k launches:");
    let mut modes: Vec<_> = big.failures.iter().collect();
    modes.sort();
    for (mode, count) in modes {
        println!("  {mode:<16} {count}");
    }
    println!();
    println!("checks:");
    let podman_peak = launch_rate(&model, &podman, 64);
    let shifter_peak = launch_rate(&model, &Shifter::default(), 64);
    println!("  podman upper bound: {podman_peak:.0}/s (paper: ~65/s)");
    println!(
        "  shifter/podman ratio: {:.0}x (paper: two orders of magnitude)",
        shifter_peak / podman_peak
    );
}
