//! Pilot-service rate gate.
//!
//! Runs the canonical `htpar serve` workload — 8 concurrent client
//! threads, 3 session waves each (24 sessions of 500 no-op tasks)
//! through a persistent 4-agent × `-j 4` fleet, then a 3-tenant 1:2:4
//! fair-share phase — and fails when any committed floor is missed:
//! sustained sessions/s, p99 time-to-first-task, or fair-share error
//! (crates/bench/src/pilotgate.rs). This binary re-executes itself as
//! the agents. CI runs it in release mode; the same check runs under
//! `cargo test` via crates/bench/tests/pilot_rate_gate.rs.
//!
//! Flags:
//!   --trials N            attempts; the best trial is gated (default 3)
//!   --min-sessions-sec X  override the compiled-in throughput floor
//!   --max-p99-ttft-ms X   override the compiled-in latency ceiling
//!   --jsonl PATH          write per-trial records + summary as JSONL
//!   --report-only         print measurements without enforcing the gate
//!
//! To verify the gate trips, set `HTPAR_PILOT_GATE_HANDICAP_US` to an
//! artificial per-task cost in microseconds and watch the TTFT ceiling
//! blow.

use std::io::Write;
use std::time::Duration;

use htpar_bench::pilotgate;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    // Children spawned by the gate's mini-cluster become agents here.
    htpar_net::local::maybe_become_agent();

    let args: Vec<String> = std::env::args().collect();
    let trials: usize = flag_value(&args, "--trials")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let min_sessions_sec: f64 = flag_value(&args, "--min-sessions-sec")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(pilotgate::min_sessions_per_sec);
    let max_p99_ttft = flag_value(&args, "--max-p99-ttft-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or_else(pilotgate::max_p99_ttft);
    let jsonl = flag_value(&args, "--jsonl");
    let report_only = args.iter().any(|a| a == "--report-only");

    println!(
        "pilot-rate gate: {} sessions ({} clients x {} waves x {} tasks) over {} agents x -j {}, \
         then {}-tenant fair-share at weights {:?}",
        pilotgate::PILOT_GATE_CONCURRENCY * pilotgate::PILOT_GATE_WAVES,
        pilotgate::PILOT_GATE_CONCURRENCY,
        pilotgate::PILOT_GATE_WAVES,
        pilotgate::PILOT_GATE_TASKS_PER_SESSION,
        pilotgate::PILOT_GATE_AGENTS,
        pilotgate::PILOT_GATE_JOBS,
        pilotgate::FAIR_WEIGHTS.len(),
        pilotgate::FAIR_WEIGHTS,
    );
    if let Some(cost) = pilotgate::handicap() {
        println!(
            "  handicap:     {} us/task (simulated slowdown)",
            cost.as_micros()
        );
    }

    let mut lines = vec![format!(
        "{{\"bench\":\"pilot_rate_gate\",\"note\":\"persistent pilot service under concurrent \
         multi-session load; floors on sustained sessions/s and p99 submit-to-first-completion, \
         plus max relative fair-share error on a 3-tenant 1:2:4 shape; gate passes when the best \
         trial clears all three\",\"min_sessions_per_sec\":{min_sessions_sec},\
         \"max_p99_ttft_ms\":{},\"max_fairness_err\":{}}}",
        max_p99_ttft.as_millis(),
        pilotgate::FAIR_SHARE_TOLERANCE
    )];
    let mut best: Option<pilotgate::PilotGateMeasurement> = None;
    for trial in 1..=trials {
        let m = match pilotgate::measure_self() {
            Ok(m) => m,
            Err(e) => {
                eprintln!("pilot-rate gate: trial {trial}: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "  trial {trial}: {:.1} sessions/s, p99 TTFT {:.2} ms, fair-share err {:.1}%",
            m.sessions_per_sec,
            m.p99_ttft.as_secs_f64() * 1e3,
            m.fairness_err * 100.0
        );
        lines.push(m.to_jsonl(trial));
        // "Best" = fewest floor misses, then highest throughput: a trial
        // that clears every floor always beats one that doesn't.
        let misses = |m: &pilotgate::PilotGateMeasurement| {
            (m.sessions_per_sec < min_sessions_sec) as u32
                + (m.p99_ttft > max_p99_ttft) as u32
                + (m.fairness_err > pilotgate::FAIR_SHARE_TOLERANCE) as u32
        };
        if best.is_none_or(|b| {
            misses(&m) < misses(&b)
                || (misses(&m) == misses(&b) && m.sessions_per_sec > b.sessions_per_sec)
        }) {
            best = Some(m);
        }
    }
    let best = best.expect("at least one trial");
    let pass = best.sessions_per_sec >= min_sessions_sec
        && best.p99_ttft <= max_p99_ttft
        && best.fairness_err <= pilotgate::FAIR_SHARE_TOLERANCE;
    println!(
        "  best: {:.1} sessions/s (floor {min_sessions_sec:.1}), p99 TTFT {:.2} ms (ceiling {} ms), \
         fair-share err {:.1}% (ceiling {:.0}%)",
        best.sessions_per_sec,
        best.p99_ttft.as_secs_f64() * 1e3,
        max_p99_ttft.as_millis(),
        best.fairness_err * 100.0,
        pilotgate::FAIR_SHARE_TOLERANCE * 100.0
    );
    lines.push(format!(
        "{{\"bench\":\"pilot_rate_gate\",\"summary\":\"best {:.1} sessions/s, p99 TTFT {:.2} ms, \
         fair-share err {:.3}\",\"best_sessions_per_sec\":{:.1},\"best_p99_ttft_ms\":{:.2},\
         \"best_fairness_err\":{:.4},\"pass\":{}}}",
        best.sessions_per_sec,
        best.p99_ttft.as_secs_f64() * 1e3,
        best.fairness_err,
        best.sessions_per_sec,
        best.p99_ttft.as_secs_f64() * 1e3,
        best.fairness_err,
        pass
    ));

    if let Some(path) = jsonl {
        let mut file = std::fs::File::create(&path).expect("open jsonl output");
        for line in &lines {
            writeln!(file, "{line}").expect("write jsonl");
        }
        println!("  wrote {} records to {path}", lines.len());
    }

    if report_only {
        return;
    }
    if !pass {
        eprintln!(
            "pilot-rate gate: FAIL — {:.1} sessions/s (floor {min_sessions_sec:.1}), p99 TTFT \
             {:.2} ms (ceiling {} ms), fair-share err {:.3} (ceiling {})",
            best.sessions_per_sec,
            best.p99_ttft.as_secs_f64() * 1e3,
            max_p99_ttft.as_millis(),
            best.fairness_err,
            pilotgate::FAIR_SHARE_TOLERANCE
        );
        std::process::exit(1);
    }
    println!("pilot-rate gate: PASS");
}
