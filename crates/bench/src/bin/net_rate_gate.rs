//! Socket-path rate gate.
//!
//! Drives the canonical no-op workload (100k tasks) through a real
//! `--local-cluster 8 -j 8` mini-cluster — this binary re-executes
//! itself as the eight agents — and fails when the socket path is more
//! than the committed factor slower than in-process dispatch on the
//! same machine (crates/bench/src/netgate.rs). CI runs this in release
//! mode; `crates/bench/tests/net_rate_gate.rs` runs the same check
//! under `cargo test`.
//!
//! Flags:
//!   --tasks N           task count (default 100000)
//!   --trials N          attempts; the best (lowest) slowdown is gated
//!                       (default 3)
//!   --max-slowdown X    override the compiled-in ceiling
//!   --jsonl PATH        append per-trial records + summary as JSONL
//!   --report-only       print measurements without enforcing the gate
//!
//! To verify the gate trips, set `HTPAR_NET_GATE_HANDICAP_US` to an
//! artificial per-task agent-side cost in microseconds and watch it
//! fail.

use std::io::Write;

use htpar_bench::netgate;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    // Children spawned by the gate's mini-cluster become agents here.
    htpar_net::local::maybe_become_agent();

    let args: Vec<String> = std::env::args().collect();
    let tasks = flag_value(&args, "--tasks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(netgate::NET_GATE_TASKS);
    let trials: usize = flag_value(&args, "--trials")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let max_slowdown = flag_value(&args, "--max-slowdown")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(netgate::max_slowdown);
    let jsonl = flag_value(&args, "--jsonl");
    let report_only = args.iter().any(|a| a == "--report-only");

    println!(
        "net-rate gate: {tasks} tasks over {} agents x -j {}",
        netgate::NET_GATE_AGENTS,
        netgate::NET_GATE_JOBS_PER_AGENT
    );
    if let Some(cost) = netgate::handicap() {
        println!(
            "  handicap:     {} us/task agent-side (simulated slowdown)",
            cost.as_micros()
        );
    }

    let mut lines = vec![format!(
        "{{\"bench\":\"net_rate_gate\",\"note\":\"socket-path dispatch vs in-process dispatch, \
         same machine, same task count, same total slots; slowdown = inproc/socket; gate \
         passes when the best trial is at or under max_slowdown\",\"max_slowdown\":{max_slowdown}}}"
    )];
    let mut best: Option<netgate::NetGateMeasurement> = None;
    for trial in 1..=trials {
        let m = match netgate::measure_self(tasks) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("net-rate gate: trial {trial}: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "  trial {trial}: socket {:.0} tasks/s, in-process {:.0} tasks/s, slowdown {:.2}x",
            m.socket_tasks_per_sec,
            m.inproc_tasks_per_sec,
            m.slowdown()
        );
        lines.push(m.to_jsonl(trial));
        if best.is_none_or(|b| m.slowdown() < b.slowdown()) {
            best = Some(m);
        }
    }
    let best = best.expect("at least one trial");
    println!(
        "  best slowdown: {:.2}x (ceiling {max_slowdown:.2}x)",
        best.slowdown()
    );
    lines.push(format!(
        "{{\"bench\":\"net_rate_gate\",\"summary\":\"best slowdown {:.2}x vs ceiling {:.2}x\",\
         \"best_slowdown\":{:.2},\"pass\":{}}}",
        best.slowdown(),
        max_slowdown,
        best.slowdown(),
        best.slowdown() <= max_slowdown
    ));

    if let Some(path) = jsonl {
        let mut file = std::fs::File::create(&path).expect("open jsonl output");
        for line in &lines {
            writeln!(file, "{line}").expect("write jsonl");
        }
        println!("  wrote {} records to {path}", lines.len());
    }

    if report_only {
        return;
    }
    if best.slowdown() > max_slowdown {
        eprintln!(
            "net-rate gate: FAIL — socket path is {:.2}x slower than in-process \
             (ceiling {max_slowdown:.2}x)",
            best.slowdown()
        );
        std::process::exit(1);
    }
    println!("net-rate gate: PASS");
}
