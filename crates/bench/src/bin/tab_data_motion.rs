//! §IV-E regenerator: massive parallel file transfer over the DTN
//! cluster.
//!
//! Paper: "8-node Slurm-based Data Transfer Node (DTN) cluster... 32
//! rsync processes, resulting in a 256-process parallel data transfer
//! operation... 200 speed up over sequential transfers, and over 10 when
//! compared to data transfer protocols used in traditional workflow
//! systems. The measured average transfer throughput was 2,385 Mb/s per
//! node."

use htpar_bench::{header, preamble, row};
use htpar_transfer::dtn::{representative_population, MotionComparison};
use htpar_transfer::DtnConfig;

fn main() {
    preamble(
        "§IV-E — data motion: parallel rsync over an 8-node DTN cluster (modeled)",
        "2,385 Mb/s per node; 200x vs sequential; >10x vs WMS protocols",
    );
    // A petabyte-representative sample: same mean file size, fewer files.
    let dataset = representative_population(2024, 50_000, 512.0 * 1024.0 * 1024.0);
    println!(
        "population: {} files, {:.1} TiB (mean file {:.0} MiB)",
        dataset.len(),
        dataset.total_bytes() as f64 / (1u64 << 40) as f64,
        dataset.mean_file_bytes() / (1u64 << 20) as f64
    );
    println!();

    let config = DtnConfig::paper_calibrated();
    let cmp = MotionComparison::run(&dataset, &config);
    let widths = [16, 8, 9, 14, 14, 12];
    println!(
        "{}",
        header(
            &[
                "strategy",
                "nodes",
                "streams",
                "elapsed_h",
                "aggregate_Mb/s",
                "per_node_Mb/s"
            ],
            &widths
        )
    );
    for out in [&cmp.sequential, &cmp.wms, &cmp.parallel] {
        println!(
            "{}",
            row(
                &[
                    out.strategy
                        .split([' ', '{'])
                        .next()
                        .unwrap_or("?")
                        .to_string(),
                    format!("{}", out.nodes_used),
                    format!("{}", out.streams_used),
                    format!("{:.1}", out.elapsed_secs / 3600.0),
                    format!("{:.0}", out.aggregate_mbps),
                    format!("{:.0}", out.per_node_mbps),
                ],
                &widths
            )
        );
    }
    println!();
    println!("checks:");
    println!(
        "  per-node throughput: {:.0} Mb/s (paper: 2,385 Mb/s)",
        cmp.parallel.per_node_mbps
    );
    println!(
        "  speedup vs sequential: {:.0}x (paper: 200x)",
        cmp.speedup_vs_sequential()
    );
    println!(
        "  speedup vs WMS protocol: {:.0}x (paper: >10x)",
        cmp.speedup_vs_wms()
    );

    println!();
    println!("ablation — streams per node:");
    let widths = [14, 14, 12];
    println!(
        "{}",
        header(&["streams/node", "per_node_Mb/s", "elapsed_h"], &widths)
    );
    for streams in [1u32, 4, 8, 16, 32, 64, 128] {
        let mut cfg = config;
        cfg.streams_per_node = streams;
        let out = htpar_transfer::dtn::simulate_transfer(
            &dataset,
            &cfg,
            htpar_transfer::TransferBaseline::ParallelRsync,
        );
        println!(
            "{}",
            row(
                &[
                    format!("{streams}"),
                    format!("{:.0}", out.per_node_mbps),
                    format!("{:.1}", out.elapsed_secs / 3600.0),
                ],
                &widths
            )
        );
    }
}
