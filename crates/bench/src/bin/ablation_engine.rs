//! Ablation: the engine's utilization law on *this* host.
//!
//! Fig. 3's arithmetic says a launcher with dispatch rate R keeps J
//! slots busy only when tasks last ≥ J/R. This harness measures our
//! engine's actual utilization as task duration sweeps across that
//! floor, with real in-process sleeps — the library-level verification
//! of the paper's 545 ms / 40 ms rule.

use std::time::Duration;

use htpar_bench::{header, preamble, row};
use htpar_core::prelude::*;

fn measured_utilization(jobs: usize, task_ms: u64, tasks: u64) -> f64 {
    let report = Parallel::new("sleep {}")
        .jobs(jobs)
        .executor(FnExecutor::sleep(Duration::from_millis(task_ms)))
        .args((0..tasks).map(|i| i.to_string()))
        .run()
        .expect("ablation run");
    report.summary().utilization(jobs)
}

fn main() {
    preamble(
        "Ablation — engine utilization vs task duration (real execution, this host)",
        "utilization collapses below the dispatch-rate floor J/R; healthy above it",
    );
    let jobs = 8;
    let widths = [9, 9, 14];
    println!("{}", header(&["task_ms", "jobs", "utilization_%"], &widths));
    let mut last = 0.0;
    for task_ms in [0u64, 1, 2, 5, 10, 20, 50] {
        let tasks = (400 / (task_ms + 1)).clamp(32, 400);
        let util = measured_utilization(jobs, task_ms, tasks);
        println!(
            "{}",
            row(
                &[
                    format!("{task_ms}"),
                    format!("{jobs}"),
                    format!("{:.1}", util * 100.0),
                ],
                &widths
            )
        );
        last = util;
    }
    println!();
    println!("checks:");
    println!(
        "  long tasks keep {jobs} slots busy: utilization {:.0}% at 50 ms",
        last * 100.0
    );
    println!("  zero-length tasks are dispatch-bound: utilization ~0% by definition");

    // Keep-order tax: same sweep with -k on.
    println!();
    println!("keep-order overhead at 5 ms tasks:");
    let plain = {
        let report = Parallel::new("s {}")
            .jobs(jobs)
            .executor(FnExecutor::sleep(Duration::from_millis(5)))
            .args((0..200).map(|i| i.to_string()))
            .run()
            .unwrap();
        report.wall
    };
    let ordered = {
        let report = Parallel::new("s {}")
            .jobs(jobs)
            .keep_order(true)
            .executor(FnExecutor::sleep(Duration::from_millis(5)))
            .args((0..200).map(|i| i.to_string()))
            .run()
            .unwrap();
        report.wall
    };
    println!(
        "  unordered {:.0} ms vs keep-order {:.0} ms ({:+.1}%)",
        plain.as_secs_f64() * 1e3,
        ordered.as_secs_f64() * 1e3,
        (ordered.as_secs_f64() / plain.as_secs_f64() - 1.0) * 100.0
    );
}
