//! Fig. 2 regenerator: GPU weak scaling with Celeritas-style tasks.
//!
//! Paper: "linear performance with a narrow variance of less than 9
//! seconds... runs on 10 to 100 nodes, each running 8 GPU processes per
//! node." Also demonstrates the §IV-D GPU-isolation ablation.

use htpar_bench::{header, preamble, row};
use htpar_cluster::gpu::{run, GpuScalingConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);
    preamble(
        "Fig. 2 — GPU weak scaling with Celeritas (simulated Frontier)",
        "flat makespan 10..100 nodes, spread < 10 s; 8 procs/node, 1:1 process-GPU",
    );
    let widths = [6, 7, 11, 10, 9];
    println!(
        "{}",
        header(
            &["nodes", "tasks", "makespan_s", "mean_s", "std_s"],
            &widths
        )
    );
    let mut makespans = Vec::new();
    for nodes in (1..=10).map(|k| k * 10) {
        let result = run(&GpuScalingConfig::frontier(nodes, seed));
        let s = result.task_summary();
        println!(
            "{}",
            row(
                &[
                    format!("{nodes}"),
                    format!("{}", result.tasks_total),
                    format!("{:.2}", result.makespan_secs),
                    format!("{:.2}", s.mean),
                    format!("{:.2}", s.std),
                ],
                &widths
            )
        );
        makespans.push(result.makespan_secs);
    }
    let spread = makespans.iter().cloned().fold(0.0, f64::max)
        - makespans.iter().cloned().fold(f64::INFINITY, f64::min);
    println!();
    println!("checks:");
    println!("  spread across scales: {spread:.2}s (paper: <10s)");

    // Ablation: what the {%}->HIP_VISIBLE_DEVICES idiom buys.
    let mut no_iso = GpuScalingConfig::frontier(50, seed);
    no_iso.isolation = false;
    let broken = run(&no_iso).makespan_secs;
    let good = run(&GpuScalingConfig::frontier(50, seed)).makespan_secs;
    println!(
        "  ablation (50 nodes): no GPU isolation {broken:.0}s vs isolated {good:.0}s ({:.1}x slower)",
        broken / good
    );
}
