//! DAG scheduling rate regression gate.
//!
//! Runs the canonical DAG workload (100k in-process no-op tasks at
//! `-j 64`) through the ready-set release path on each gate topology
//! (wide, deep, diamond) and exits nonzero when any topology's rate
//! drops below its checked-in floor. The wide topology additionally
//! must stay within a small factor of the flat-list path measured in
//! the same process — the DAG layer is scheduling, not a second
//! execution path. CI runs this in release mode;
//! `tests/dag_rate_gate.rs` runs the same check under `cargo test`.
//!
//! Flags:
//!   --topology T    wide | deep | diamond (default: all three)
//!   --jobs N        slot count (default 64)
//!   --tasks N       task count (default 100000)
//!   --floor RATE    override the compiled-in floor (tasks/sec)
//!   --report-only   print measurements without enforcing
//!   --jsonl FILE    append one JSON line per trial for trend tracking
//!
//! To verify the gate trips, set `HTPAR_DAG_GATE_HANDICAP_US` to an
//! artificial per-task cost in microseconds and watch it fail.

use std::io::Write;

use htpar_bench::daggate::{self, DagGateMeasurement, Topology};

fn jsonl_line(path: &str, m: &DagGateMeasurement, trial: usize) {
    let line = format!(
        "{{\"bench\":\"dag_rate_gate\",\"topology\":\"{}\",\"trial\":{trial},\
         \"jobs\":{},\"tasks\":{},\"wall_secs\":{:.6},\"tasks_per_sec\":{:.0},\
         \"flat_tasks_per_sec\":{:.0},\"overhead_factor\":{:.3}}}\n",
        m.topology.name(),
        m.jobs,
        m.tasks,
        m.wall.as_secs_f64(),
        m.tasks_per_sec,
        m.flat_tasks_per_sec,
        m.overhead_factor()
    );
    let ok = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = ok {
        eprintln!("dag_rate_gate: cannot write {path}: {e}");
    }
}

fn report(m: &DagGateMeasurement) {
    println!(
        "  {:<8} {:>9.0} tasks/s  ({:.3} s; flat path {:.0}/s, overhead {:.2}x)",
        m.topology.name(),
        m.tasks_per_sec,
        m.wall.as_secs_f64(),
        m.flat_tasks_per_sec,
        m.overhead_factor()
    );
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = flag_value(&args, "--jobs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(daggate::GATE_JOBS);
    let tasks = flag_value(&args, "--tasks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(daggate::GATE_TASKS);
    let floor_override: Option<f64> = flag_value(&args, "--floor").and_then(|v| v.parse().ok());
    let report_only = args.iter().any(|a| a == "--report-only");
    let jsonl = flag_value(&args, "--jsonl");
    let topologies: Vec<Topology> = match flag_value(&args, "--topology") {
        Some(name) => match Topology::parse(&name) {
            Some(t) => vec![t],
            None => {
                eprintln!("dag_rate_gate: unknown topology {name:?} (wide|deep|diamond)");
                std::process::exit(2);
            }
        },
        None => Topology::ALL.to_vec(),
    };

    println!("dag-rate gate: {tasks} in-process no-op tasks at -j {jobs} per topology");
    if let Some(cost) = daggate::handicap() {
        println!(
            "  handicap:     {} us/task (simulated slowdown)",
            cost.as_micros()
        );
    }

    if report_only {
        for &topo in &topologies {
            let m = daggate::measure(topo, jobs, tasks);
            report(&m);
            if let Some(path) = &jsonl {
                jsonl_line(path, &m, 1);
            }
        }
        return;
    }

    let mut failed = false;
    for &topo in &topologies {
        let floor = floor_override.unwrap_or_else(|| daggate::floor(topo));
        let mut rate = 0.0;
        // Retry before declaring a regression: a transient host hiccup
        // depresses one run, a real slowdown depresses all of them.
        for attempt in 1..=daggate::GATE_ATTEMPTS {
            let m = daggate::measure(topo, jobs, tasks);
            report(&m);
            if let Some(path) = &jsonl {
                jsonl_line(path, &m, attempt);
            }
            rate = m.tasks_per_sec;
            if rate >= floor {
                break;
            }
        }
        if rate < floor {
            eprintln!(
                "FAIL: {} rate {rate:.0}/s is below the floor {floor:.0}/s",
                topo.name()
            );
            failed = true;
        } else {
            println!(
                "  {:<8} PASS: {:.2}x above floor {floor:.0}/s",
                topo.name(),
                rate / floor
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
