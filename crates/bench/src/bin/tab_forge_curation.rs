//! §IV-C regenerator: FORGE data curation throughput and quality.
//!
//! Paper (qualitative): "GNU Parallel plays an essential role in this
//! process by enabling efficient data cleaning and enrichment, allowing
//! FORGE to handle large volumes of data concurrently." This harness
//! runs the full curation pipeline — extraction, language filtering,
//! character cleanup, token accounting, near-duplicate removal — as a
//! parallel map over corpus shards through the engine, and reports the
//! statistics a curation run is judged by.

use std::sync::{Arc, Mutex};

use htpar_bench::{header, preamble, row};
use htpar_core::prelude::*;
use htpar_workloads::dedup::dedup_documents;
use htpar_workloads::forge::{generate_corpus, preprocess, CleanDocument, CorpusStats};

fn main() {
    let docs_total: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    preamble(
        "§IV-C — FORGE corpus curation as a parallel map (synthetic corpus)",
        "clean + filter + account + dedup, sharded through the engine",
    );

    let corpus = Arc::new(generate_corpus(2024, docs_total));
    let shards = 16usize;
    let chunk = docs_total.div_ceil(shards);

    let stats_acc: Arc<Mutex<CorpusStats>> = Arc::new(Mutex::new(CorpusStats::default()));
    let kept_docs: Arc<Mutex<Vec<CleanDocument>>> = Arc::new(Mutex::new(Vec::new()));
    let corpus2 = Arc::clone(&corpus);
    let stats2 = Arc::clone(&stats_acc);
    let kept2 = Arc::clone(&kept_docs);

    let report = Parallel::new("curate shard {}")
        .jobs(8)
        .executor(FnExecutor::new(move |cmd| {
            let shard: usize = cmd.args[0].parse().unwrap();
            let lo = shard * chunk;
            let hi = ((shard + 1) * chunk).min(corpus2.len());
            if lo >= hi {
                return Ok(TaskOutput::success());
            }
            let slice = &corpus2[lo..hi];
            let stats = CorpusStats::process(slice);
            let mut cleaned: Vec<CleanDocument> =
                slice.iter().filter_map(|d| preprocess(d).ok()).collect();
            {
                let mut acc = stats2.lock().unwrap();
                *acc = acc.merge(&stats);
            }
            kept2.lock().unwrap().append(&mut cleaned);
            Ok(TaskOutput::success())
        }))
        .args((0..shards).map(|s| s.to_string()))
        .run()
        .expect("curation run");
    assert!(report.all_succeeded());

    let stats = *stats_acc.lock().unwrap();
    let mut cleaned = kept_docs.lock().unwrap().clone();
    cleaned.sort_by_key(|d| d.id);
    let dedup = dedup_documents(&cleaned, 0.85);

    let widths = [34, 14];
    println!("{}", header(&["curation stage", "count"], &widths));
    let rows: Vec<(&str, u64)> = vec![
        ("raw documents", stats.documents_in),
        ("rejected: non-English", stats.rejected_non_english),
        ("rejected: too short", stats.rejected_too_short),
        ("cleaned documents", stats.documents_kept),
        ("dropped: near-duplicates", dedup.dropped.len() as u64),
        ("final curated documents", dedup.kept.len() as u64),
        ("tokens retained", stats.tokens),
    ];
    for (label, count) in rows {
        println!("{}", row(&[label.to_string(), count.to_string()], &widths));
    }
    println!();
    println!(
        "curation wall time {:?} over {} shards x {} docs ({:.0} docs/s through the engine)",
        report.wall,
        shards,
        chunk,
        stats.documents_in as f64 / report.wall.as_secs_f64()
    );
    println!(
        "checks: non-English rejection ~12% by construction (measured {:.1}%)",
        100.0 * stats.rejected_non_english as f64 / stats.documents_in as f64
    );
}
