//! §IV-B regenerator: the staged Darshan NVMe-prefetch pipeline.
//!
//! Paper: "the first stage, which involves processing data directly from
//! Lustre, takes 86 minutes... processing data from the faster NVMe
//! storage averages 68 minutes per stage. This approach leads to a total
//! completion time of 358 minutes (86 + (68 × 4)), compared to an
//! estimated 430 minutes (86 × 5) if all stages were processed solely
//! from Lustre. This represents a 17% improvement."

use htpar_bench::{header, preamble, row};
use htpar_storage::staging::{PrefetchPipeline, StageOp, Tier};

fn main() {
    preamble(
        "§IV-B — Darshan massive log processing: staged NVMe prefetch pipeline",
        "stages 86 min (Lustre) / 68 min (NVMe); 358 vs 430 min total; 17% improvement",
    );
    let pipeline = PrefetchPipeline::darshan_paper();
    let plan = pipeline.plan(5);

    let widths = [6, 44, 13];
    println!(
        "{}",
        header(&["stage", "concurrent operations", "duration_min"], &widths)
    );
    for (i, stage) in plan.stages.iter().enumerate() {
        let ops: Vec<String> = stage
            .ops
            .iter()
            .map(|op| match op {
                StageOp::Process { dataset, from, .. } => {
                    let tier = match from {
                        Tier::Lustre => "Lustre",
                        Tier::Nvme => "NVMe",
                    };
                    format!("process D{dataset} from {tier}")
                }
                StageOp::Copy { dataset, .. } => format!("copy D{dataset} L->N"),
                StageOp::Delete { dataset, .. } => format!("delete D{dataset}"),
            })
            .collect();
        println!(
            "{}",
            row(
                &[
                    format!("{}", i + 1),
                    ops.join(" | "),
                    format!("{:.0}", stage.duration_secs / 60.0),
                ],
                &widths
            )
        );
    }
    println!();
    println!("checks:");
    println!(
        "  pipelined total: {:.0} min (paper: 358 min)",
        plan.total_secs / 60.0
    );
    println!(
        "  all-Lustre baseline: {:.0} min (paper: 430 min)",
        plan.baseline_secs / 60.0
    );
    println!(
        "  improvement: {:.1}% (paper: 17%)",
        plan.improvement() * 100.0
    );

    // Sensitivity: pipeline depth.
    println!();
    println!("ablation — improvement vs number of datasets:");
    let widths = [10, 13, 13, 13];
    println!(
        "{}",
        header(
            &["datasets", "pipelined_min", "baseline_min", "improvement_%"],
            &widths
        )
    );
    for n in [2usize, 3, 5, 10, 20] {
        let p = pipeline.plan(n);
        println!(
            "{}",
            row(
                &[
                    format!("{n}"),
                    format!("{:.0}", p.total_secs / 60.0),
                    format!("{:.0}", p.baseline_secs / 60.0),
                    format!("{:.1}", p.improvement() * 100.0),
                ],
                &widths
            )
        );
    }
    println!();
    println!(
        "limit improvement (deep pipeline): {:.1}% = 1 - 68/86",
        (1.0 - 68.0 / 86.0) * 100.0
    );
}
