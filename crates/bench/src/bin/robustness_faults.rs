//! Seeded fault-injection campaign: does the failure-resilient driver
//! hold the exactly-once invariant, and what does recovery cost?
//!
//! For each (seed, scenario) the campaign runs the weak-scaling workload
//! with injected node crashes / stragglers / NVMe write failures, checks
//! the joblog covers every task exactly once (panicking on violation —
//! this binary doubles as a CI gate), and reports recovery overhead
//! against the same-seed no-fault baseline plus the WMS restart cost for
//! the same loss.
//!
//! Pass `--jsonl PATH` to also write one machine-readable record per run.
//!
//! `--full-scale` replaces the campaign with one whole-machine run:
//! 9,408 nodes × 128 tasks (1.2 M tasks) under the calibrated fault
//! rates — ~1,400 node crashes recovered by the listing-1 + `--resume`
//! driver, with the exactly-once invariant checked over the full
//! joblog. Only tractable on the calendar-queue event core.

use std::io::Write;

use htpar_bench::{header, preamble, row};
use htpar_cluster::faults::run_resilient;
use htpar_cluster::weak_scaling::WeakScalingConfig;
use htpar_cluster::FaultConfig;
use htpar_wms::compare::wms_restart_overhead_secs;
use htpar_wms::WmsConfig;
use serde_json::json;

fn scenario(name: &'static str, seed: u64) -> FaultConfig {
    let base = FaultConfig::calibrated(seed);
    match name {
        "crash-only" => FaultConfig {
            straggler_rate: 0.0,
            nvme_fault_rate: 0.0,
            ..base
        },
        "crash+straggler" => FaultConfig {
            nvme_fault_rate: 0.0,
            ..base
        },
        "heavy" => FaultConfig {
            crash_rate: 0.35,
            straggler_rate: 0.25,
            nvme_fault_rate: 0.15,
            ..base
        },
        _ => base,
    }
}

/// The whole-machine fault-recovery run (9,408 nodes × 128 tasks).
fn full_scale(jsonl: &mut Option<std::fs::File>) {
    let seed = 2024u64;
    let mut config = WeakScalingConfig::frontier(9_408, seed);
    config.tasks_per_node = 128;
    config.jobs_per_node = 128;
    let faults = FaultConfig::calibrated(seed);
    println!(
        "full-scale: {} nodes x {} tasks/node = {} tasks, calibrated faults (seed {seed})",
        config.nodes,
        config.tasks_per_node,
        config.nodes as u64 * config.tasks_per_node as u64,
    );

    let started = std::time::Instant::now();
    let result = run_resilient(&config, &faults);
    let wall = started.elapsed().as_secs_f64();
    if let Err(violation) = result.verify_exactly_once() {
        panic!("full-scale: exactly-once violated: {violation}");
    }
    println!(
        "  {} nodes down, {} tasks requeued, recovery overhead {:.1}s over a {:.1}s baseline",
        result.nodes_failed.len(),
        result.tasks_requeued,
        result.recovery_overhead_secs(),
        result.baseline_makespan_secs,
    );
    println!(
        "  {} joblog rows verified exactly-once in {wall:.2}s wall ({:.0}k tasks/s)",
        result.joblog.len(),
        result.tasks_total as f64 / wall / 1e3,
    );
    if let Some(file) = &mut *jsonl {
        let record = json!({
            "seed": seed,
            "scenario": "full-scale",
            "nodes": (config.nodes),
            "tasks_total": (result.tasks_total),
            "nodes_down": (result.nodes_failed.len()),
            "tasks_requeued": (result.tasks_requeued),
            "makespan_secs": (result.makespan_secs),
            "baseline_makespan_secs": (result.baseline_makespan_secs),
            "recovery_overhead_secs": (result.recovery_overhead_secs()),
            "wall_secs": wall,
            "exactly_once": true,
        });
        let line = serde_json::to_string(&record);
        writeln!(file, "{line}").expect("write jsonl record");
    }
}

fn main() {
    preamble(
        "Robustness — seeded node-failure campaign",
        "every task runs exactly once through crash recovery, for every seed",
    );

    let mut jsonl: Option<std::fs::File> = None;
    let mut want_full_scale = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        if arg == "--jsonl" {
            let path = argv.next().expect("--jsonl requires a path");
            jsonl = Some(std::fs::File::create(&path).expect("create jsonl file"));
        } else if arg == "--full-scale" {
            want_full_scale = true;
        }
    }
    if want_full_scale {
        full_scale(&mut jsonl);
        return;
    }

    let seeds: Vec<u64> = (0..6).map(|i| 2024 + i * 101).collect();
    let scenarios = ["crash-only", "crash+straggler", "heavy"];
    // Small enough to run in CI seconds, big enough that a crash costs
    // a whole shard: 12 nodes × 32 tasks.
    let nodes = 12u32;

    let widths = [8, 16, 6, 9, 11, 11, 9];
    println!(
        "{}",
        header(
            &[
                "seed",
                "scenario",
                "down",
                "requeued",
                "overhead_s",
                "wms_rst_s",
                "exact1"
            ],
            &widths
        )
    );

    let wms_cfg = WmsConfig::swift_t_like();
    let mut worst_overhead: f64 = 0.0;
    let mut total_down = 0usize;
    for &seed in &seeds {
        for name in scenarios {
            let mut config = WeakScalingConfig::frontier(nodes, seed);
            config.tasks_per_node = 32;
            config.jobs_per_node = 32;
            let faults = scenario(name, seed);
            let result = run_resilient(&config, &faults);
            if let Err(violation) = result.verify_exactly_once() {
                panic!("seed {seed} scenario {name}: exactly-once violated: {violation}");
            }
            let overhead = result.recovery_overhead_secs();
            let wms_restart = if result.tasks_requeued > 0 {
                wms_restart_overhead_secs(result.tasks_requeued, result.tasks_total, &wms_cfg)
            } else {
                0.0
            };
            worst_overhead = worst_overhead.max(overhead);
            total_down += result.nodes_failed.len();
            println!(
                "{}",
                row(
                    &[
                        format!("{seed}"),
                        name.to_string(),
                        format!("{}", result.nodes_failed.len()),
                        format!("{}", result.tasks_requeued),
                        format!("{overhead:.1}"),
                        format!("{wms_restart:.1}"),
                        "yes".to_string(),
                    ],
                    &widths
                )
            );
            if let Some(file) = &mut jsonl {
                let record = json!({
                    "seed": seed,
                    "scenario": name,
                    "nodes": nodes,
                    "tasks_total": (result.tasks_total),
                    "nodes_down": (result.nodes_failed.len()),
                    "tasks_requeued": (result.tasks_requeued),
                    "makespan_secs": (result.makespan_secs),
                    "baseline_makespan_secs": (result.baseline_makespan_secs),
                    "recovery_overhead_secs": overhead,
                    "wms_restart_secs": wms_restart,
                    "exactly_once": true,
                });
                let line = serde_json::to_string(&record);
                writeln!(file, "{line}").expect("write jsonl record");
            }
        }
    }
    println!(
        "  {} runs, {total_down} node crashes injected, worst recovery overhead {worst_overhead:.1}s — exactly-once held everywhere",
        seeds.len() * scenarios.len(),
    );
}
