//! §II regenerator: orchestration overhead, conventional WMS vs the
//! paper's sharded-parallel approach.
//!
//! Paper (citing the WfBench study, ref \[7\]): "the overhead is 500
//! seconds for 50,000 tasks and up to 5,000 seconds for 100,000 tasks of
//! the BLAST workflow"; versus "the maximum execution time for 9,000
//! nodes (1.152 million tasks) is 561 seconds, which is significantly
//! less than 10% of the overhead time reported for a workflow with
//! 100,000 tasks."

use htpar_bench::{header, preamble, row};
use htpar_cluster::weak_scaling::{run, WeakScalingConfig};
use htpar_wms::overhead_comparison;

fn main() {
    preamble(
        "§II — orchestration overhead: central WMS vs driver-script + parallel engine",
        "WMS: ~500s @50k tasks, up to ~5,000s @100k; parallel: 561s max for 1.152M tasks",
    );
    let widths = [11, 7, 16, 19, 11];
    println!(
        "{}",
        header(
            &[
                "tasks",
                "nodes",
                "wms_overhead_s",
                "parallel_overhead_s",
                "advantage"
            ],
            &widths
        )
    );
    for r in overhead_comparison(&[10_000, 50_000, 100_000, 200_000]) {
        println!(
            "{}",
            row(
                &[
                    format!("{}", r.tasks),
                    format!("{}", r.nodes),
                    format!("{:.0}", r.wms_overhead_secs),
                    format!("{:.1}", r.parallel_overhead_secs),
                    format!("{:.0}x", r.advantage()),
                ],
                &widths
            )
        );
    }
    println!();
    // The 1.152M-task point through the full Fig. 1 simulation (includes
    // straggler tails, I/O, copy-back — the honest end-to-end number).
    let extreme = run(&WeakScalingConfig::frontier(9000, 2024));
    println!(
        "parallel engine at extreme scale: {} tasks on 9,000 nodes complete in {:.0}s (paper: 561s)",
        extreme.tasks_total, extreme.makespan_secs
    );
    println!("note: a central WMS at 1.152M tasks extrapolates to >10^5 s of pure overhead under");
    println!("the same calibration — the regime the paper argues is architecturally out of reach.");
}
