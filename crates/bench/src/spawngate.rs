//! The process-launch rate gate: real `fork`/`exec`-bound work with a
//! checked-in floor.
//!
//! The dispatch gate ([`crate::gate`]) measures the engine with no-op
//! in-process tasks; this gate measures the other half of the paper's
//! launch-rate story — what it costs to start a *real* process per
//! task. The workload is `/bin/true {}`-shaped: trivially short, shell
//! bypass-eligible, so the measured rate is pure launch overhead
//! (spawn syscall, pipe setup, reaping, output collection).
//!
//! `measure` runs the workload twice-shaped: `legacy = true` pins the
//! portable `std::process::Command` path (`sh -c` + two reader threads
//! per task), `legacy = false` takes the posix_spawn fast path (shell
//! bypass + pooled pidfd reaper). The committed
//! `BENCH_spawn_rate_gate.json` records both; the floor is set above
//! the legacy rate so reverting the fast path trips the gate.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use htpar_core::executor::{ExecContext, Executor, ProcessExecutor, TaskOutput};
use htpar_core::job::CommandLine;
use htpar_core::prelude::*;
use htpar_core::runner::{Engine, JobInput};

/// Slot count of the canonical gate workload. Launch rate scales with
/// slots until the spawn path serializes; 8 is spawn-bound on a small
/// CI box without drowning it in processes.
pub const GATE_JOBS: usize = 8;
/// Task count of the canonical gate workload: enough launches that the
/// per-process cost dominates engine setup.
pub const GATE_TASKS: u64 = 1_000;

/// Floor in launches/sec for release builds: midway between the legacy
/// path's measured rate (530-554/s on a 1-core CI box) and the fast
/// path's (1100-1210/s, 2.0-2.2x), so a revert to `sh -c` +
/// reader-thread launches trips the gate on every attempt while
/// ordinary load noise passes.
pub const FLOOR_RELEASE: f64 = 750.0;
/// Same floor for debug builds, where `cargo test` runs. Launch cost
/// is almost entirely kernel time, so debug rates track release
/// closely (legacy 541/s, fast 1108/s on the same box).
pub const FLOOR_DEBUG: f64 = 700.0;

/// Attempts before declaring a regression; transient host hiccups
/// depress one trial, a real regression depresses all of them.
pub const GATE_ATTEMPTS: usize = 3;

/// The floor matching how this code was compiled.
pub fn floor() -> f64 {
    if cfg!(debug_assertions) {
        FLOOR_DEBUG
    } else {
        FLOOR_RELEASE
    }
}

/// Artificial per-launch cost (`HTPAR_SPAWN_GATE_HANDICAP_US`, in
/// microseconds), for the drill that proves the gate can trip.
pub fn handicap() -> Option<Duration> {
    std::env::var("HTPAR_SPAWN_GATE_HANDICAP_US")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|us| *us > 0)
        .map(Duration::from_micros)
}

/// Wraps a [`ProcessExecutor`] with a fixed pre-launch delay: the
/// simulated "slow spawn path" for handicap drills.
struct HandicappedExecutor {
    inner: ProcessExecutor,
    cost: Duration,
}

impl Executor for HandicappedExecutor {
    fn execute(&self, cmd: &CommandLine, ctx: &ExecContext) -> TaskOutput {
        std::thread::sleep(self.cost);
        self.inner.execute(cmd, ctx)
    }
}

/// One gate run's numbers.
#[derive(Debug, Clone, Copy)]
pub struct SpawnGateMeasurement {
    pub jobs: usize,
    pub tasks: u64,
    pub wall: Duration,
    /// Whole-run launches per second: every task is one real process.
    pub launches_per_sec: f64,
}

/// Run `tasks` real `/bin/true {}` launches through the engine at
/// `-j jobs`. `legacy` pins the portable spawn path; otherwise the
/// posix_spawn fast path runs (when the platform supports it).
pub fn measure(jobs: usize, tasks: u64, legacy: bool) -> SpawnGateMeasurement {
    let inputs: Vec<JobInput> = (1..=tasks)
        .map(|seq| JobInput::new(seq, vec![format!("arg-{seq}")]))
        .collect();
    let base = if legacy {
        ProcessExecutor::shell().legacy()
    } else {
        ProcessExecutor::shell()
    };
    let executor: Arc<dyn Executor> = match handicap() {
        Some(cost) => Arc::new(HandicappedExecutor { inner: base, cost }),
        None => Arc::new(base),
    };
    let engine = Engine {
        options: Options {
            jobs,
            shell: true,
            ..Options::default()
        },
        template: Template::parse("/bin/true {}").expect("static template"),
        executor,
        on_result: None,
        skip: HashSet::new(),
        gate: None,
        bus: None,
    };
    let started = Instant::now();
    let report = engine
        .run(Box::new(inputs.into_iter()))
        .expect("gate workload runs");
    let wall = started.elapsed();
    assert_eq!(report.succeeded, tasks, "gate workload must fully succeed");
    SpawnGateMeasurement {
        jobs,
        tasks,
        wall,
        launches_per_sec: tasks as f64 / wall.as_secs_f64().max(1e-9),
    }
}

/// Run the canonical fast-path workload up to [`GATE_ATTEMPTS`] times;
/// return the first measurement at or above the floor, or the best of
/// the failing attempts. Callers compare `launches_per_sec` to
/// [`floor`].
pub fn measure_gated() -> SpawnGateMeasurement {
    let mut best: Option<SpawnGateMeasurement> = None;
    for _ in 0..GATE_ATTEMPTS {
        let m = measure(GATE_JOBS, GATE_TASKS, false);
        if m.launches_per_sec >= floor() {
            return m;
        }
        if best.is_none_or(|b| m.launches_per_sec > b.launches_per_sec) {
            best = Some(m);
        }
    }
    best.expect("GATE_ATTEMPTS > 0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_runs_real_processes_on_both_paths() {
        for legacy in [false, true] {
            let m = measure(4, 30, legacy);
            assert_eq!(m.tasks, 30);
            assert!(m.launches_per_sec > 0.0, "legacy={legacy}");
        }
    }
}
