//! # htpar-bench — experiment regenerators
//!
//! One binary per figure/table of the paper's evaluation (run with
//! `cargo run -p htpar-bench --release --bin <name>`):
//!
//! | Binary | Paper result |
//! |---|---|
//! | `fig1_weak_scaling` | Fig. 1 — 1k–9k Frontier nodes × 128 tasks |
//! | `fig2_gpu_scaling` | Fig. 2 — 10–100 nodes × 8 GPUs, Celeritas |
//! | `fig3_launch_rate` | Fig. 3 — tasks/s vs instances on Perlmutter |
//! | `fig4_shifter` | Fig. 4 — Shifter container launch rate |
//! | `fig5_podman` | Fig. 5 — Podman-HPC launch rate + failures |
//! | `tab_overhead_comparison` | §II — WMS vs parallel overhead |
//! | `tab_darshan_pipeline` | §IV-B — staged NVMe prefetch pipeline |
//! | `tab_data_motion` | §IV-E — DTN transfer + baselines |
//! | `tab_srun_vs_parallel` | §IV — srun-per-task vs parallel dispatch |
//!
//! Criterion microbenchmarks (`cargo bench -p htpar-bench`) cover the
//! engine's own hot paths: template expansion, dispatch overhead, queue
//! throughput, the event engine, and the mini-rsync scan.

use std::fmt::Display;

pub mod daggate;
pub mod gate;
pub mod netgate;
pub mod pilotgate;
pub mod simgate;
pub mod spawngate;

/// Print a fixed-width table row from cells.
pub fn row<D: Display>(cells: &[D], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{:>width$}", c.to_string(), width = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Print a header + underline.
pub fn header(cells: &[&str], widths: &[usize]) -> String {
    let head = row(cells, widths);
    let line = "-".repeat(head.len());
    format!("{head}\n{line}")
}

/// Standard preamble for a regenerator binary.
pub fn preamble(fig: &str, claim: &str) {
    println!("== {fig} ==");
    println!("paper: {claim}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_align() {
        let r = row(&["a", "bb", "ccc"], &[4, 4, 6]);
        assert_eq!(r, "   a    bb     ccc");
    }

    #[test]
    fn header_underlines_full_width() {
        let h = header(&["x", "y"], &[3, 3]);
        let mut lines = h.lines();
        let head = lines.next().unwrap();
        let under = lines.next().unwrap();
        assert_eq!(head.len(), under.len());
        assert!(under.chars().all(|c| c == '-'));
    }
}
