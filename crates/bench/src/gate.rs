//! The launch-rate regression gate: a fixed dispatch-bound workload with
//! a checked-in floor.
//!
//! The paper's Fig. 3 claim is that slot-pull dispatch sustains launch
//! rates far above central schedulers; this module is the guardrail that
//! keeps our engine honest about it. `measure` runs N in-process no-op
//! tasks through the real engine at a fixed `-j`, so the measured rate is
//! pure dispatch cost (input hand-out, slot bookkeeping, completion
//! collection) with no fork/exec noise. The `launch_rate_gate` binary and
//! the `launch_rate_gate` integration test compare that rate against
//! [`floor`] and fail on a regression.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use htpar_core::prelude::*;
use htpar_core::runner::{Engine, JobInput};
use htpar_telemetry::{EventBus, MetricsRegistry};

/// Slot count of the canonical gate workload.
pub const GATE_JOBS: usize = 64;
/// Task count of the canonical gate workload (the CI smoke scale; the
/// Fig. 3 acceptance run uses 100k).
pub const GATE_TASKS: u64 = 10_000;

/// Floor in tasks/sec for the canonical workload in release builds:
/// 0.5x the low end of the sustained rate measured after the
/// sharded-dispatch rework on a 1-core CI box (1.06-1.91M tasks/s over
/// repeated trials), so ordinary scheduler noise passes while a
/// structural regression (a lock back on the hot path, per-task
/// syscalls) fails every attempt.
pub const FLOOR_RELEASE: f64 = 500_000.0;
/// Same floor for unoptimized (debug) builds, where `cargo test` runs
/// (measured 0.5-1.1M tasks/s sustained on the same box).
pub const FLOOR_DEBUG: f64 = 200_000.0;

/// Attempts the gate makes before declaring a regression. Transient VM
/// hiccups depress one run; a real regression depresses all of them.
pub const GATE_ATTEMPTS: usize = 3;

/// The floor matching how this code was compiled.
pub fn floor() -> f64 {
    if cfg!(debug_assertions) {
        FLOOR_DEBUG
    } else {
        FLOOR_RELEASE
    }
}

/// One gate run's numbers.
#[derive(Debug, Clone, Copy)]
pub struct GateMeasurement {
    pub jobs: usize,
    pub tasks: u64,
    pub wall: Duration,
    /// Whole-run wall-clock rate (includes engine setup/teardown).
    pub tasks_per_sec: f64,
    /// Sustained rate over `spawned` telemetry events, as defined by
    /// [`MetricsRegistry::launch_rate_sustained`]. `None` when the run
    /// was not observed by a bus.
    pub launch_rate_sustained: Option<f64>,
}

impl GateMeasurement {
    /// The rate the gate compares against the floor: the bus-observed
    /// sustained rate when available, wall-clock otherwise.
    pub fn gate_rate(&self) -> f64 {
        self.launch_rate_sustained.unwrap_or(self.tasks_per_sec)
    }
}

/// Optional artificial per-task cost, for verifying that the gate really
/// fails on a slowdown (set `HTPAR_GATE_HANDICAP_US` to a microsecond
/// count).
pub fn handicap() -> Option<Duration> {
    std::env::var("HTPAR_GATE_HANDICAP_US")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|us| *us > 0)
        .map(Duration::from_micros)
}

fn payload() -> FnExecutor {
    match handicap() {
        Some(cost) => FnExecutor::sleep(cost),
        None => FnExecutor::noop(),
    }
}

/// Run `tasks` in-process no-op jobs through the engine at `-j jobs` and
/// report the achieved rate. With `with_metrics`, a telemetry bus with a
/// [`MetricsRegistry`] observes the run (the gate's configuration); without
/// it the run is unobserved and the wall-clock rate is pure dispatch.
pub fn measure(jobs: usize, tasks: u64, with_metrics: bool) -> GateMeasurement {
    let inputs: Vec<JobInput> = (1..=tasks)
        .map(|seq| JobInput::new(seq, vec![seq.to_string()]))
        .collect();
    let (bus, metrics) = if with_metrics {
        let bus = EventBus::shared();
        let metrics = MetricsRegistry::shared();
        bus.attach(metrics.clone());
        (Some(bus), Some(metrics))
    } else {
        (None, None)
    };
    let engine = Engine {
        options: Options {
            jobs,
            shell: false,
            ..Options::default()
        },
        template: Template::parse("noop {}").expect("static template"),
        executor: Arc::new(payload()),
        on_result: None,
        skip: HashSet::new(),
        gate: None,
        bus,
    };
    let started = Instant::now();
    let report = engine
        .run(Box::new(inputs.into_iter()))
        .expect("gate workload runs");
    let wall = started.elapsed();
    assert_eq!(report.succeeded, tasks, "gate workload must fully succeed");
    GateMeasurement {
        jobs,
        tasks,
        wall,
        tasks_per_sec: tasks as f64 / wall.as_secs_f64().max(1e-9),
        launch_rate_sustained: metrics.and_then(|m| m.launch_rate_sustained()),
    }
}

/// Run the canonical gate workload up to [`GATE_ATTEMPTS`] times and
/// return the first measurement at or above the floor, or the best of
/// the failing attempts. Callers compare `gate_rate()` to [`floor`].
pub fn measure_gated() -> GateMeasurement {
    let mut best: Option<GateMeasurement> = None;
    for _ in 0..GATE_ATTEMPTS {
        let m = measure(GATE_JOBS, GATE_TASKS, true);
        if m.gate_rate() >= floor() {
            return m;
        }
        if best.is_none_or(|b| m.gate_rate() > b.gate_rate()) {
            best = Some(m);
        }
    }
    best.expect("GATE_ATTEMPTS > 0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_consistent_numbers() {
        let m = measure(4, 200, true);
        assert_eq!(m.tasks, 200);
        assert!(m.tasks_per_sec > 0.0);
        assert!(m.launch_rate_sustained.is_some());
        assert!(m.gate_rate() > 0.0);
    }

    #[test]
    fn unobserved_measure_has_no_bus_rate() {
        let m = measure(2, 50, false);
        assert!(m.launch_rate_sustained.is_none());
        assert_eq!(m.gate_rate(), m.tasks_per_sec);
    }
}
