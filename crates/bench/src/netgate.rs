//! The socket-path rate gate: mini-cluster dispatch throughput with a
//! checked-in ceiling on its slowdown versus in-process dispatch.
//!
//! The network subsystem (DESIGN.md §12) adds framing, syscalls, and
//! process hops to every task. This gate keeps that overhead honest:
//! it drives the canonical no-op workload through a real
//! `--local-cluster 8 -j 8` mini-cluster (eight agent subprocesses,
//! Unix/TCP sockets, the full driver protocol) and compares the
//! achieved rate against the in-process dispatch rate of
//! [`crate::gate::measure`] on the same task count and total slot
//! count. The gate fails when `in-process rate / socket rate` exceeds
//! the committed factor — a *relative* floor, so it tracks the machine
//! instead of assuming one.
//!
//! `HTPAR_NET_GATE_HANDICAP_US` injects an artificial per-task cost on
//! the agent side (a `sleep:US` payload), the drill that proves the
//! gate actually trips.

use std::process::Command;
use std::time::Duration;

use htpar_net::driver::{run_driver, DriverConfig};
use htpar_net::frame::Payload;
use htpar_net::local::LocalCluster;

use crate::gate;

/// Agent subprocesses in the canonical gate workload.
pub const NET_GATE_AGENTS: usize = 8;
/// Job slots per agent (`-j` in the handshake); total slots match the
/// in-process reference (8 × 8 = 64 = `gate::GATE_JOBS`).
pub const NET_GATE_JOBS_PER_AGENT: u32 = 8;
/// Task count of the canonical gate workload.
pub const NET_GATE_TASKS: u64 = 100_000;

/// Committed ceiling on `in-process rate / socket rate` for release
/// builds. The epoll reactor core batches shards, coalesces acks, and
/// feeds the agent engine batch-at-a-time, so the measured best-of-3
/// slowdown on the 1-core CI box sits around 2.8–3.3× (socket ~500k
/// tasks/s against a 1.4–2.8M tasks/s in-process reference). Per-trial
/// spread reaches ~5.5× because the in-process reference speeds up as
/// the box warms; the ceiling leaves headroom for that noise while a
/// structural regression fails every attempt — the pre-batching
/// per-item feed path, for comparison, measured 11–13×.
pub const MAX_SLOWDOWN_RELEASE: f64 = 6.0;
/// Same ceiling for unoptimized (debug) builds, where `cargo test`
/// runs. Debug hits the byte-level framing/decode path much harder than
/// the preloaded in-process reference, so the ratio is structurally
/// worse: measured best-of-3 ~10–11×, per-trial spread to ~18×.
pub const MAX_SLOWDOWN_DEBUG: f64 = 20.0;

/// The ceiling matching how this code was compiled.
pub fn max_slowdown() -> f64 {
    if cfg!(debug_assertions) {
        MAX_SLOWDOWN_DEBUG
    } else {
        MAX_SLOWDOWN_RELEASE
    }
}

/// Artificial per-task agent-side cost (`HTPAR_NET_GATE_HANDICAP_US`),
/// for verifying the gate really fails on a slowdown.
pub fn handicap() -> Option<Duration> {
    std::env::var("HTPAR_NET_GATE_HANDICAP_US")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|us| *us > 0)
        .map(Duration::from_micros)
}

/// The payload the gate ships to agents: no-ops, unless the handicap
/// drill is active.
pub fn gate_payload() -> Payload {
    match handicap() {
        Some(cost) => Payload::SleepUs(cost.as_micros() as u64),
        None => Payload::Noop,
    }
}

/// One gate run's numbers: the socket path and its in-process reference.
#[derive(Debug, Clone, Copy)]
pub struct NetGateMeasurement {
    pub agents: usize,
    pub jobs_per_agent: u32,
    pub tasks: u64,
    /// Wall time of the socket-path drive (connect to drain).
    pub wall: Duration,
    /// End-to-end socket-path completion rate.
    pub socket_tasks_per_sec: f64,
    /// In-process dispatch rate at the same task count and total slots.
    pub inproc_tasks_per_sec: f64,
}

impl NetGateMeasurement {
    /// The number the gate compares against [`max_slowdown`].
    pub fn slowdown(&self) -> f64 {
        self.inproc_tasks_per_sec / self.socket_tasks_per_sec.max(1e-9)
    }

    /// One JSONL record, shaped like the other `BENCH_*.json` artifacts.
    pub fn to_jsonl(&self, trial: usize) -> String {
        format!(
            "{{\"bench\":\"net_rate_gate\",\"trial\":{},\"agents\":{},\"jobs_per_agent\":{},\
             \"tasks\":{},\"wall_secs\":{:.6},\"socket_tasks_per_sec\":{:.0},\
             \"inproc_tasks_per_sec\":{:.0},\"slowdown\":{:.2}}}",
            trial,
            self.agents,
            self.jobs_per_agent,
            self.tasks,
            self.wall.as_secs_f64(),
            self.socket_tasks_per_sec,
            self.inproc_tasks_per_sec,
            self.slowdown(),
        )
    }
}

/// Run the gate workload once: spawn a mini-cluster from `base` (a
/// binary that calls `maybe_become_agent` first thing in `main`), drive
/// `tasks` `payload` tasks through it, and measure the in-process
/// reference on the same machine moments later.
pub fn measure_with<F: FnMut() -> Command>(
    base: F,
    payload: Payload,
    tasks: u64,
) -> Result<NetGateMeasurement, String> {
    let mut cluster = LocalCluster::spawn_with(NET_GATE_AGENTS, base)
        .map_err(|e| format!("spawning mini-cluster: {e}"))?;
    let inputs: Vec<Vec<String>> = (1..=tasks).map(|i| vec![i.to_string()]).collect();
    let mut config = DriverConfig::new(cluster.specs.clone(), "noop {}");
    config.jobs_per_agent = NET_GATE_JOBS_PER_AGENT;
    config.payload = payload;
    let outcome = run_driver(&config, &inputs, None).map_err(|e| format!("driving: {e}"))?;
    cluster.join();
    if outcome.completed != tasks {
        return Err(format!(
            "gate drive completed {}/{} tasks",
            outcome.completed, tasks
        ));
    }
    // In-process reference: same tasks, same total slot count, no bus —
    // pure dispatch cost on this machine right now.
    let inproc = gate::measure(
        NET_GATE_AGENTS * NET_GATE_JOBS_PER_AGENT as usize,
        tasks,
        false,
    );
    Ok(NetGateMeasurement {
        agents: NET_GATE_AGENTS,
        jobs_per_agent: NET_GATE_JOBS_PER_AGENT,
        tasks,
        wall: outcome.wall,
        socket_tasks_per_sec: outcome.tasks_per_sec(),
        inproc_tasks_per_sec: inproc.tasks_per_sec,
    })
}

/// Run the canonical workload via self-re-exec (the calling binary must
/// invoke `maybe_become_agent` first thing in `main`).
pub fn measure_self(tasks: u64) -> Result<NetGateMeasurement, String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    measure_with(|| Command::new(&exe), gate_payload(), tasks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_is_the_rate_ratio() {
        let m = NetGateMeasurement {
            agents: 4,
            jobs_per_agent: 16,
            tasks: 1000,
            wall: Duration::from_secs(1),
            socket_tasks_per_sec: 1000.0,
            inproc_tasks_per_sec: 8000.0,
        };
        assert!((m.slowdown() - 8.0).abs() < 1e-9);
        let line = m.to_jsonl(2);
        assert!(line.contains("\"trial\":2"));
        assert!(line.contains("\"slowdown\":8.00"));
    }

    #[test]
    fn payload_honors_handicap_grammar() {
        // Env-independent check of the mapping itself.
        assert_eq!(
            match handicap() {
                Some(cost) => Payload::SleepUs(cost.as_micros() as u64),
                None => Payload::Noop,
            },
            gate_payload()
        );
    }
}
