//! The DAG scheduling rate gate: ready-set release overhead with a
//! checked-in floor.
//!
//! The dispatch gate ([`crate::gate`]) prices the flat slot engine;
//! this gate prices the DAG layer on top of it — in-degree decrement,
//! ready-batch release through `Engine::run_batched`, completion
//! callbacks — with in-process no-op tasks so the measured rate is
//! pure scheduling cost. Three canonical topologies bound the shape
//! space:
//!
//! - **wide**: N independent tasks — one initial release, the DAG
//!   layer's overhead is a single callback per completion. Must stay
//!   within a small factor of the flat-list path.
//! - **deep**: one N-long chain — every release waits on the previous
//!   completion, so the rate is the full round-trip cost
//!   (callback → channel → slot → completion) with zero parallelism.
//! - **diamond**: chained fan-out/fan-in blocks (a → b,c → d) — the
//!   mixed case, two-wide parallelism with joins.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use htpar_core::dag::{Dag, DagRunner, DagSpec};
use htpar_core::prelude::*;
use htpar_core::runner::{Engine, JobInput};

/// Slot count of the canonical gate workload (matches the dispatch
/// gate; wide DAGs are dispatch-bound at the same `-j`).
pub const GATE_JOBS: usize = 64;
/// Task count of the canonical gate workload (the paper-scale DAG
/// acceptance run; the issue pins 100k).
pub const GATE_TASKS: u64 = 100_000;

/// Per-topology floors in tasks/sec for release builds, set from
/// measured rates on a 1-core CI box at roughly half the low end of
/// repeated trials (see `BENCH_dag_rate_gate.json`): ordinary noise
/// passes, a structural regression (per-task locking, per-release
/// allocation storms, a lost batch path) fails every attempt.
pub const FLOOR_WIDE_RELEASE: f64 = 500_000.0;
pub const FLOOR_DEEP_RELEASE: f64 = 50_000.0;
pub const FLOOR_DIAMOND_RELEASE: f64 = 60_000.0;
/// Debug floors, where `cargo test` runs the same workload.
pub const FLOOR_WIDE_DEBUG: f64 = 250_000.0;
pub const FLOOR_DEEP_DEBUG: f64 = 35_000.0;
pub const FLOOR_DIAMOND_DEBUG: f64 = 45_000.0;

/// The wide topology must stay within this factor of the flat-list
/// path measured in the same process: the DAG layer is scheduling, not
/// a second execution path, and this is the number that proves it.
pub const WIDE_OVERHEAD_FACTOR_CEIL: f64 = 6.0;

/// Attempts before declaring a regression; transient host hiccups
/// depress one trial, a real regression depresses all of them.
pub const GATE_ATTEMPTS: usize = 3;

/// Canonical gate topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    Wide,
    Deep,
    Diamond,
}

impl Topology {
    pub const ALL: [Topology; 3] = [Topology::Wide, Topology::Deep, Topology::Diamond];

    pub fn parse(s: &str) -> Option<Topology> {
        match s {
            "wide" => Some(Topology::Wide),
            "deep" => Some(Topology::Deep),
            "diamond" => Some(Topology::Diamond),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Topology::Wide => "wide",
            Topology::Deep => "deep",
            Topology::Diamond => "diamond",
        }
    }
}

/// The floor matching this topology and how this code was compiled.
pub fn floor(topology: Topology) -> f64 {
    match (topology, cfg!(debug_assertions)) {
        (Topology::Wide, false) => FLOOR_WIDE_RELEASE,
        (Topology::Deep, false) => FLOOR_DEEP_RELEASE,
        (Topology::Diamond, false) => FLOOR_DIAMOND_RELEASE,
        (Topology::Wide, true) => FLOOR_WIDE_DEBUG,
        (Topology::Deep, true) => FLOOR_DEEP_DEBUG,
        (Topology::Diamond, true) => FLOOR_DIAMOND_DEBUG,
    }
}

/// Artificial per-task cost (`HTPAR_DAG_GATE_HANDICAP_US`, in
/// microseconds), for the drill that proves the gate can trip.
pub fn handicap() -> Option<Duration> {
    std::env::var("HTPAR_DAG_GATE_HANDICAP_US")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|us| *us > 0)
        .map(Duration::from_micros)
}

fn payload() -> FnExecutor {
    match handicap() {
        Some(cost) => FnExecutor::sleep(cost),
        None => FnExecutor::noop(),
    }
}

/// Build the canonical `tasks`-node graph for a topology. Node
/// commands are inert markers; the gate runs them through
/// [`FnExecutor::noop`].
pub fn build(topology: Topology, tasks: u64) -> Dag {
    let mut spec = DagSpec::new();
    for i in 0..tasks {
        let deps: Vec<String> = match topology {
            Topology::Wide => Vec::new(),
            Topology::Deep => {
                if i == 0 {
                    Vec::new()
                } else {
                    vec![format!("t{}", i - 1)]
                }
            }
            Topology::Diamond => {
                // Blocks of 4: head → two arms → join, join → next head.
                match i % 4 {
                    0 if i == 0 => Vec::new(),
                    0 => vec![format!("t{}", i - 1)],
                    1 | 2 => vec![format!("t{}", i - (i % 4))],
                    _ => {
                        // The join waits on whichever arms exist.
                        vec![format!("t{}", i - 2), format!("t{}", i - 1)]
                    }
                }
            }
        };
        spec.task(format!("t{i}"), "noop", deps)
            .expect("generated ids are unique");
    }
    spec.build().expect("generated graphs are acyclic")
}

/// One gate run's numbers.
#[derive(Debug, Clone, Copy)]
pub struct DagGateMeasurement {
    pub topology: Topology,
    pub jobs: usize,
    pub tasks: u64,
    pub wall: Duration,
    /// Whole-run tasks per second through the DAG layer (graph build
    /// excluded: the gate prices scheduling, not parsing).
    pub tasks_per_sec: f64,
    /// The flat-list engine over the identical task count, same
    /// process, same payload — the baseline the overhead factor is
    /// priced against.
    pub flat_tasks_per_sec: f64,
}

impl DagGateMeasurement {
    /// How many times slower the DAG path is than the flat path.
    pub fn overhead_factor(&self) -> f64 {
        self.flat_tasks_per_sec / self.tasks_per_sec.max(1e-9)
    }
}

/// Run the flat-list baseline: `tasks` no-op jobs straight through the
/// engine at `-j jobs`.
pub fn measure_flat(jobs: usize, tasks: u64) -> f64 {
    let inputs: Vec<JobInput> = (1..=tasks)
        .map(|seq| JobInput::new(seq, vec!["noop".to_string()]))
        .collect();
    let engine = Engine {
        options: Options {
            jobs,
            shell: false,
            ..Options::default()
        },
        template: Template::parse("{}").expect("static template"),
        executor: Arc::new(payload()),
        on_result: None,
        skip: HashSet::new(),
        gate: None,
        bus: None,
    };
    let started = Instant::now();
    let report = engine
        .run(Box::new(inputs.into_iter()))
        .expect("baseline workload runs");
    assert_eq!(report.succeeded, tasks, "baseline must fully succeed");
    tasks as f64 / started.elapsed().as_secs_f64().max(1e-9)
}

/// Run `tasks` no-op jobs through the DAG layer at `-j jobs` on the
/// given topology, plus the flat baseline for the overhead factor.
pub fn measure(topology: Topology, jobs: usize, tasks: u64) -> DagGateMeasurement {
    let flat = measure_flat(jobs, tasks);
    let dag = build(topology, tasks);
    let runner = DagRunner {
        options: Options {
            jobs,
            shell: false,
            ..Options::default()
        },
        executor: Arc::new(payload()),
        bus: None,
    };
    let started = Instant::now();
    let report = runner.run(&dag).expect("gate workload runs");
    let wall = started.elapsed();
    assert_eq!(report.failed, 0, "gate workload must fully succeed");
    assert_eq!(report.skipped_dep_failed, 0);
    DagGateMeasurement {
        topology,
        jobs,
        tasks,
        wall,
        tasks_per_sec: tasks as f64 / wall.as_secs_f64().max(1e-9),
        flat_tasks_per_sec: flat,
    }
}

/// Run one topology's canonical workload up to [`GATE_ATTEMPTS`]
/// times; return the first measurement at or above the floor, or the
/// best of the failing attempts. Callers compare `tasks_per_sec` to
/// [`floor`].
pub fn measure_gated(topology: Topology) -> DagGateMeasurement {
    let mut best: Option<DagGateMeasurement> = None;
    for _ in 0..GATE_ATTEMPTS {
        let m = measure(topology, GATE_JOBS, GATE_TASKS);
        if m.tasks_per_sec >= floor(topology) {
            return m;
        }
        if best.is_none_or(|b| m.tasks_per_sec > b.tasks_per_sec) {
            best = Some(m);
        }
    }
    best.expect("GATE_ATTEMPTS > 0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_build_the_requested_size() {
        for topo in Topology::ALL {
            for n in [1u64, 2, 3, 5, 8, 40] {
                let dag = build(topo, n);
                assert_eq!(dag.len() as u64, n, "{}/{n}", topo.name());
            }
        }
        // Deep is a chain: every node but the first has one dep.
        let deep = build(Topology::Deep, 6);
        assert!(deep.nodes().iter().skip(1).all(|n| n.deps.len() == 1));
        // Diamond joins wait on both arms.
        let dia = build(Topology::Diamond, 8);
        assert_eq!(dia.nodes()[3].deps.len(), 2);
        assert_eq!(dia.nodes()[7].deps.len(), 2);
    }

    #[test]
    fn measure_reports_consistent_numbers() {
        let m = measure(Topology::Diamond, 4, 64);
        assert_eq!(m.tasks, 64);
        assert!(m.tasks_per_sec > 0.0);
        assert!(m.flat_tasks_per_sec > 0.0);
        assert!(m.overhead_factor() > 0.0);
    }
}
