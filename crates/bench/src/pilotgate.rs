//! The pilot-service rate gate: sustained multi-session throughput,
//! p99 time-to-first-task, and weighted fair-share accuracy, each with
//! a checked-in floor.
//!
//! `htpar serve` (DESIGN.md §13) multiplexes many client sessions onto
//! one persistent agent fleet. This gate keeps three promises honest:
//!
//! 1. **Session throughput** — waves of concurrent sessions through a
//!    real `--local-cluster 4` fleet must sustain a committed
//!    sessions-per-second floor (the pilot exists to amortize fleet
//!    startup; if opening a session is slow, it amortizes nothing).
//! 2. **Time-to-first-task** — p99 latency from `Submit` to the first
//!    completion delivered back must stay under a committed ceiling
//!    (admission plus scheduling plus dispatch plus one task).
//! 3. **Fair share** — on a 3-tenant 1:2:4 shape with saturated
//!    backlogs, each tenant's share of dispatched tasks must land
//!    within [`FAIR_SHARE_TOLERANCE`] of its weight share.
//!
//! `HTPAR_PILOT_GATE_HANDICAP_US` injects an artificial per-task cost
//! into the throughput workload — the drill proving the gate trips.

use std::process::Command;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use htpar_net::client::{ClientEvent, SessionClient, SessionConfig};
use htpar_net::frame::Payload;
use htpar_net::local::LocalCluster;
use htpar_net::serve::{PilotServer, ServeConfig};
use htpar_telemetry::{Event, EventBus, Recorder};

/// Agent subprocesses in the gate fleet (the ISSUE's canonical shape).
pub const PILOT_GATE_AGENTS: usize = 4;
/// Engine slots per agent.
pub const PILOT_GATE_JOBS: u32 = 4;
/// Concurrent client sessions per wave.
pub const PILOT_GATE_CONCURRENCY: usize = 8;
/// Sequential sessions per client thread (total = 8 × 3 = 24).
pub const PILOT_GATE_WAVES: usize = 3;
/// Tasks submitted by each throughput-phase session.
pub const PILOT_GATE_TASKS_PER_SESSION: u64 = 500;
/// Tasks per tenant in the fairness phase.
pub const PILOT_GATE_FAIR_TASKS: u64 = 3_000;
/// Per-task sleep in the fairness phase: slow enough that all three
/// backlogs stay saturated for the whole measurement window, fast
/// enough that the phase finishes in well under a second.
pub const PILOT_GATE_FAIR_TASK_US: u64 = 400;
/// Fairness-phase tenant weights (the ISSUE's 1:2:4 shape).
pub const FAIR_WEIGHTS: [u32; 3] = [1, 2, 4];
/// Max relative deviation of a tenant's dispatched share from its
/// weight share.
pub const FAIR_SHARE_TOLERANCE: f64 = 0.10;

/// Committed floor on sustained session throughput (sessions/s over
/// the whole multi-wave run) in release builds. Measured ~70-90
/// sessions/s on the 1-core CI box; the floor leaves ~4x headroom.
pub const MIN_SESSIONS_PER_SEC_RELEASE: f64 = 16.0;
/// Debug floor: unoptimized framing/decode roughly halves the rate.
pub const MIN_SESSIONS_PER_SEC_DEBUG: f64 = 6.0;
/// Committed ceiling on p99 Submit-to-first-completion latency in
/// release builds. Measured p99 ~15-40ms under 8-way contention.
pub const MAX_P99_TTFT_RELEASE: Duration = Duration::from_millis(250);
/// Debug ceiling.
pub const MAX_P99_TTFT_DEBUG: Duration = Duration::from_millis(800);

/// The floor matching how this code was compiled.
pub fn min_sessions_per_sec() -> f64 {
    if cfg!(debug_assertions) {
        MIN_SESSIONS_PER_SEC_DEBUG
    } else {
        MIN_SESSIONS_PER_SEC_RELEASE
    }
}

/// The ceiling matching how this code was compiled.
pub fn max_p99_ttft() -> Duration {
    if cfg!(debug_assertions) {
        MAX_P99_TTFT_DEBUG
    } else {
        MAX_P99_TTFT_RELEASE
    }
}

/// Artificial per-task cost (`HTPAR_PILOT_GATE_HANDICAP_US`) for the
/// inverted drill: inflating every task must blow the TTFT ceiling.
pub fn handicap() -> Option<Duration> {
    std::env::var("HTPAR_PILOT_GATE_HANDICAP_US")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|us| *us > 0)
        .map(Duration::from_micros)
}

/// Throughput-phase payload: no-ops unless the drill is active.
pub fn gate_payload() -> Payload {
    match handicap() {
        Some(cost) => Payload::SleepUs(cost.as_micros() as u64),
        None => Payload::Noop,
    }
}

/// One gate run's numbers.
#[derive(Debug, Clone, Copy)]
pub struct PilotGateMeasurement {
    pub sessions: usize,
    pub concurrency: usize,
    pub tasks_per_session: u64,
    /// Wall time of the whole throughput phase.
    pub wall: Duration,
    /// Sessions completed per second, sustained across all waves.
    pub sessions_per_sec: f64,
    /// p99 of Submit-to-first-completion latency across all sessions.
    pub p99_ttft: Duration,
    /// Max relative deviation of dispatched share from weight share
    /// across the fairness phase's three tenants.
    pub fairness_err: f64,
}

impl PilotGateMeasurement {
    /// All three floors at the compiled-in thresholds.
    pub fn pass(&self) -> bool {
        self.sessions_per_sec >= min_sessions_per_sec()
            && self.p99_ttft <= max_p99_ttft()
            && self.fairness_err <= FAIR_SHARE_TOLERANCE
    }

    /// One JSONL record, shaped like the other `BENCH_*.json` artifacts.
    pub fn to_jsonl(&self, trial: usize) -> String {
        format!(
            "{{\"bench\":\"pilot_rate_gate\",\"trial\":{},\"sessions\":{},\"concurrency\":{},\
             \"tasks_per_session\":{},\"wall_secs\":{:.6},\"sessions_per_sec\":{:.1},\
             \"p99_ttft_ms\":{:.2},\"fairness_err\":{:.4}}}",
            trial,
            self.sessions,
            self.concurrency,
            self.tasks_per_session,
            self.wall.as_secs_f64(),
            self.sessions_per_sec,
            self.p99_ttft.as_secs_f64() * 1e3,
            self.fairness_err,
        )
    }
}

/// Fresh journal dir for one gate phase. Both phases run with
/// `state_dir` set: journaling fsyncs on every admission, so the
/// committed floors must hold in the durable configuration, not just
/// the in-memory one.
fn gate_state_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("htpar-pilot-gate-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run one complete session and return its time-to-first-task.
fn run_session(spec: &str, tenant: &str, payload: Payload, tasks: u64) -> Result<Duration, String> {
    let mut config = SessionConfig::new(spec, tenant);
    config.payload = payload;
    let mut client = SessionClient::connect(config).map_err(|e| format!("connect: {e}"))?;
    let inputs: Vec<Vec<String>> = (1..=tasks).map(|i| vec![i.to_string()]).collect();
    let submitted = Instant::now();
    let verdict = client.submit(&inputs).map_err(|e| format!("submit: {e}"))?;
    if !verdict.accepted {
        return Err(format!("admission refused: {}", verdict.reason));
    }
    let mut ttft = None;
    while client.completed() < tasks {
        match client.recv().map_err(|e| format!("recv: {e}"))? {
            ClientEvent::Done(_) => {
                ttft.get_or_insert_with(|| submitted.elapsed());
            }
            other => return Err(format!("unexpected event {other:?}")),
        }
    }
    let completed = client.finish().map_err(|e| format!("finish: {e}"))?;
    if completed != tasks {
        return Err(format!("completed {completed}/{tasks}"));
    }
    ttft.ok_or_else(|| "no completions observed".to_string())
}

/// Throughput phase: `PILOT_GATE_CONCURRENCY` client threads, each
/// running `PILOT_GATE_WAVES` sessions back-to-back against one
/// persistent pilot. Returns (wall, per-session TTFTs).
fn measure_throughput(
    specs: Vec<String>,
    payload: Payload,
) -> Result<(Duration, Vec<Duration>), String> {
    let total_sessions = (PILOT_GATE_CONCURRENCY * PILOT_GATE_WAVES) as u64;
    let state_dir = gate_state_dir("throughput");
    let mut config = ServeConfig::new(specs, "127.0.0.1:0");
    config.jobs_per_agent = PILOT_GATE_JOBS;
    config.max_sessions = Some(total_sessions);
    config.state_dir = Some(state_dir.clone());
    let server = PilotServer::bind(config).map_err(|e| format!("pilot bind: {e}"))?;
    let spec = server
        .local_spec()
        .map_err(|e| format!("pilot spec: {e}"))?;
    let serve = std::thread::spawn(move || server.run(None));

    let started = Instant::now();
    let workers: Vec<_> = (0..PILOT_GATE_CONCURRENCY)
        .map(|w| {
            let spec = spec.clone();
            std::thread::spawn(move || -> Result<Vec<Duration>, String> {
                let mut ttfts = Vec::with_capacity(PILOT_GATE_WAVES);
                for wave in 0..PILOT_GATE_WAVES {
                    ttfts.push(run_session(
                        &spec,
                        &format!("client-{w}-{wave}"),
                        payload,
                        PILOT_GATE_TASKS_PER_SESSION,
                    )?);
                }
                Ok(ttfts)
            })
        })
        .collect();
    let mut ttfts = Vec::with_capacity(total_sessions as usize);
    for worker in workers {
        ttfts.extend(worker.join().map_err(|_| "worker panicked".to_string())??);
    }
    let wall = started.elapsed();

    let outcome = serve
        .join()
        .map_err(|_| "serve thread panicked".to_string())?
        .map_err(|e| format!("serve: {e}"))?;
    if outcome.completed != total_sessions * PILOT_GATE_TASKS_PER_SESSION {
        return Err(format!(
            "pilot completed {} of {} tasks",
            outcome.completed,
            total_sessions * PILOT_GATE_TASKS_PER_SESSION
        ));
    }
    let _ = std::fs::remove_dir_all(&state_dir);
    Ok((wall, ttfts))
}

/// Fairness phase: three tenants with weights 1:2:4 submit identical
/// saturating backlogs; the dispatched-task share of each tenant over
/// the contended window (everyone backlogged) must track its weight
/// share. Returns the max relative deviation.
fn measure_fairness(specs: Vec<String>) -> Result<f64, String> {
    let recorder = Recorder::shared();
    let bus = Arc::new(EventBus::new());
    bus.attach(recorder.clone());

    let state_dir = gate_state_dir("fairness");
    let mut config = ServeConfig::new(specs, "127.0.0.1:0");
    config.jobs_per_agent = PILOT_GATE_JOBS;
    config.max_sessions = Some(FAIR_WEIGHTS.len() as u64);
    config.state_dir = Some(state_dir.clone());
    config.bus = Some(bus);
    let server = PilotServer::bind(config).map_err(|e| format!("pilot bind: {e}"))?;
    let spec = server
        .local_spec()
        .map_err(|e| format!("pilot spec: {e}"))?;
    let serve = std::thread::spawn(move || server.run(None));

    // All three Submits race within a barrier-width of each other so
    // no tenant gets a meaningful head start on the backlog window.
    let barrier = Arc::new(Barrier::new(FAIR_WEIGHTS.len()));
    let clients: Vec<_> = FAIR_WEIGHTS
        .iter()
        .enumerate()
        .map(|(i, &weight)| {
            let spec = spec.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || -> Result<(), String> {
                let mut config = SessionConfig::new(spec, format!("fair-{weight}x"));
                config.weight = weight;
                config.payload = Payload::SleepUs(PILOT_GATE_FAIR_TASK_US);
                let mut client =
                    SessionClient::connect(config).map_err(|e| format!("connect: {e}"))?;
                let inputs: Vec<Vec<String>> = (1..=PILOT_GATE_FAIR_TASKS)
                    .map(|i| vec![format!("{i}-{i}")])
                    .collect();
                barrier.wait();
                let verdict = client.submit(&inputs).map_err(|e| format!("submit: {e}"))?;
                if !verdict.accepted {
                    return Err(format!("tenant {i} refused: {}", verdict.reason));
                }
                while client.completed() < PILOT_GATE_FAIR_TASKS {
                    client.recv().map_err(|e| format!("recv: {e}"))?;
                }
                client.finish().map_err(|e| format!("finish: {e}"))?;
                Ok(())
            })
        })
        .collect();
    for client in clients {
        client.join().map_err(|_| "client panicked".to_string())??;
    }
    serve
        .join()
        .map_err(|_| "serve thread panicked".to_string())?
        .map_err(|e| format!("serve: {e}"))?;
    let _ = std::fs::remove_dir_all(&state_dir);

    // Walk dispatch events chronologically; the contended window ends
    // when the first tenant's backlog is exhausted (after that, the
    // survivors split the fleet among themselves and shares shift by
    // design).
    let mut granted = vec![0u64; FAIR_WEIGHTS.len()];
    for event in recorder.events() {
        if let Event::TenantShardSent { tenant, tasks, .. } = event {
            let Some(idx) = FAIR_WEIGHTS
                .iter()
                .position(|w| tenant == format!("fair-{w}x"))
            else {
                continue;
            };
            granted[idx] += tasks;
            if granted[idx] >= PILOT_GATE_FAIR_TASKS {
                break;
            }
        }
    }
    let total: u64 = granted.iter().sum();
    if total == 0 {
        return Err("no dispatch events recorded".to_string());
    }
    let weight_sum: u32 = FAIR_WEIGHTS.iter().sum();
    let mut worst = 0f64;
    for (i, &weight) in FAIR_WEIGHTS.iter().enumerate() {
        let expected = weight as f64 / weight_sum as f64;
        let actual = granted[i] as f64 / total as f64;
        worst = worst.max((actual - expected).abs() / expected);
    }
    Ok(worst)
}

/// Run the full gate workload once: spawn a fresh mini-cluster from
/// `base` (a binary calling `maybe_become_agent` first thing in
/// `main`) for each phase, since the pilot drains its fleet on exit.
pub fn measure_with<F: FnMut() -> Command>(
    mut base: F,
    payload: Payload,
) -> Result<PilotGateMeasurement, String> {
    let mut cluster = LocalCluster::spawn_with(PILOT_GATE_AGENTS, &mut base)
        .map_err(|e| format!("spawning mini-cluster: {e}"))?;
    let (wall, mut ttfts) = measure_throughput(cluster.specs.clone(), payload)?;
    cluster.join();

    let mut cluster = LocalCluster::spawn_with(PILOT_GATE_AGENTS, &mut base)
        .map_err(|e| format!("spawning fairness cluster: {e}"))?;
    let fairness_err = measure_fairness(cluster.specs.clone())?;
    cluster.join();

    ttfts.sort_unstable();
    let p99_idx = ((ttfts.len() as f64 * 0.99).ceil() as usize).clamp(1, ttfts.len()) - 1;
    let sessions = PILOT_GATE_CONCURRENCY * PILOT_GATE_WAVES;
    Ok(PilotGateMeasurement {
        sessions,
        concurrency: PILOT_GATE_CONCURRENCY,
        tasks_per_session: PILOT_GATE_TASKS_PER_SESSION,
        wall,
        sessions_per_sec: sessions as f64 / wall.as_secs_f64().max(1e-9),
        p99_ttft: ttfts[p99_idx],
        fairness_err,
    })
}

/// Run the canonical workload via self-re-exec (the calling binary must
/// invoke `maybe_become_agent` first thing in `main`).
pub fn measure_self() -> Result<PilotGateMeasurement, String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    measure_with(|| Command::new(&exe), gate_payload())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_applies_all_three_floors() {
        let good = PilotGateMeasurement {
            sessions: 24,
            concurrency: 8,
            tasks_per_session: 500,
            wall: Duration::from_secs(1),
            sessions_per_sec: min_sessions_per_sec() + 1.0,
            p99_ttft: max_p99_ttft() / 2,
            fairness_err: FAIR_SHARE_TOLERANCE / 2.0,
        };
        assert!(good.pass());
        assert!(!PilotGateMeasurement {
            sessions_per_sec: min_sessions_per_sec() / 2.0,
            ..good
        }
        .pass());
        assert!(!PilotGateMeasurement {
            p99_ttft: max_p99_ttft() * 2,
            ..good
        }
        .pass());
        assert!(!PilotGateMeasurement {
            fairness_err: FAIR_SHARE_TOLERANCE * 2.0,
            ..good
        }
        .pass());
    }

    #[test]
    fn jsonl_record_carries_all_gate_numbers() {
        let m = PilotGateMeasurement {
            sessions: 24,
            concurrency: 8,
            tasks_per_session: 500,
            wall: Duration::from_secs(2),
            sessions_per_sec: 12.0,
            p99_ttft: Duration::from_millis(35),
            fairness_err: 0.042,
        };
        let line = m.to_jsonl(3);
        assert!(line.contains("\"trial\":3"));
        assert!(line.contains("\"sessions_per_sec\":12.0"));
        assert!(line.contains("\"p99_ttft_ms\":35.00"));
        assert!(line.contains("\"fairness_err\":0.0420"));
    }

    #[test]
    fn payload_honors_handicap_grammar() {
        assert_eq!(
            match handicap() {
                Some(cost) => Payload::SleepUs(cost.as_micros() as u64),
                None => Payload::Noop,
            },
            gate_payload()
        );
    }
}
