//! The pilot-service rate gate under `cargo test` (debug profile,
//! debug floors), plus the handicap drill proving the gate can trip.
//!
//! The mini-cluster agents are real subprocesses of the
//! `pilot_rate_gate` binary (its `main` calls `maybe_become_agent`
//! first); the test harness binary cannot serve as an agent itself
//! because libtest owns its `main`.

use std::process::Command;

use htpar_bench::pilotgate;
use htpar_net::frame::Payload;

fn agent_binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pilot_rate_gate"))
}

#[test]
fn pilot_service_clears_every_committed_floor() {
    let mut best: Option<pilotgate::PilotGateMeasurement> = None;
    for _ in 0..3 {
        let m = pilotgate::measure_with(agent_binary, Payload::Noop).expect("gate workload runs");
        assert_eq!(
            m.sessions,
            pilotgate::PILOT_GATE_CONCURRENCY * pilotgate::PILOT_GATE_WAVES
        );
        assert!(m.sessions_per_sec > 0.0);
        if best.is_none_or(|b: pilotgate::PilotGateMeasurement| !b.pass()) {
            best = Some(m);
        }
        if m.pass() {
            break;
        }
    }
    let best = best.unwrap();
    assert!(
        best.pass(),
        "pilot gate floors missed: {:.1} sessions/s (floor {:.1}), p99 TTFT {:.2} ms \
         (ceiling {} ms), fair-share err {:.3} (ceiling {})",
        best.sessions_per_sec,
        pilotgate::min_sessions_per_sec(),
        best.p99_ttft.as_secs_f64() * 1e3,
        pilotgate::max_p99_ttft().as_millis(),
        best.fairness_err,
        pilotgate::FAIR_SHARE_TOLERANCE
    );
}

/// The drill: a 10ms artificial cost on every throughput-phase task
/// caps the fleet at ~1.6k tasks/s, so the 24-session run takes ~7.5s
/// and sustained session throughput lands far below even the debug
/// floor — if this doesn't trip the gate, the gate protects nothing.
/// Uses an explicit payload rather than `HTPAR_PILOT_GATE_HANDICAP_US`
/// so parallel tests don't share env.
#[test]
fn handicapped_pilot_trips_the_gate() {
    let m = pilotgate::measure_with(agent_binary, Payload::SleepUs(10_000))
        .expect("handicapped workload runs");
    assert!(
        m.sessions_per_sec < pilotgate::min_sessions_per_sec(),
        "10ms/task handicap still sustained {:.1} sessions/s \
         (floor {:.1}) — the gate would never trip",
        m.sessions_per_sec,
        pilotgate::min_sessions_per_sec()
    );
    assert!(!m.pass());
}
