//! The process-launch rate gate under `cargo test` (debug profile),
//! plus the handicap drill proving the gate can trip.

use htpar_bench::spawngate;

#[test]
fn fast_path_launch_rate_stays_above_floor() {
    let m = spawngate::measure_gated();
    assert!(
        m.launches_per_sec >= spawngate::floor(),
        "launch rate {:.0}/s fell below the floor {:.0}/s",
        m.launches_per_sec,
        spawngate::floor()
    );
}

/// The fast path must actually beat the legacy path it replaced — on
/// the same machine, same run. A modest multiple here (the committed
/// BENCH json shows >2x in release) keeps the assertion robust to
/// debug-build and CI-box noise while still failing if the "fast"
/// path silently degrades to legacy behavior.
#[test]
fn fast_path_beats_legacy_path() {
    let tasks = 300;
    let legacy = spawngate::measure(spawngate::GATE_JOBS, tasks, true);
    let fast = spawngate::measure(spawngate::GATE_JOBS, tasks, false);
    assert!(
        fast.launches_per_sec > legacy.launches_per_sec * 1.2,
        "fast path {:.0}/s is not meaningfully above legacy {:.0}/s",
        fast.launches_per_sec,
        legacy.launches_per_sec
    );
}

/// The drill: a large artificial per-launch cost must land well below
/// the floor — otherwise the gate can never fail and protects nothing.
/// 20ms/launch across 8 slots caps the rate at ~400 launches/s, under
/// both floors. Uses a child process so the env var cannot leak into
/// concurrently running tests.
#[test]
fn handicapped_launch_rate_trips_the_gate() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_spawn_rate_gate"))
        .args(["--tasks", "200"])
        .env("HTPAR_SPAWN_GATE_HANDICAP_US", "20000")
        .output()
        .expect("gate binary runs");
    assert!(
        !out.status.success(),
        "5ms/launch handicap did not trip the gate; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("below the floor"),
        "gate failed for an unexpected reason; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
