//! The DAG scheduling rate gate under `cargo test` (debug profile),
//! plus the handicap drill proving the gate can trip.

use htpar_bench::daggate::{self, Topology};

#[test]
fn wide_dag_rate_stays_above_floor() {
    let m = daggate::measure_gated(Topology::Wide);
    assert!(
        m.tasks_per_sec >= daggate::floor(Topology::Wide),
        "wide DAG rate {:.0}/s fell below the floor {:.0}/s",
        m.tasks_per_sec,
        daggate::floor(Topology::Wide)
    );
    // The issue's headline bound: a dependency-free DAG must stay
    // within a small factor of the flat-list path — same machine, same
    // run. The committed BENCH json shows the release-mode factor.
    assert!(
        m.overhead_factor() <= daggate::WIDE_OVERHEAD_FACTOR_CEIL,
        "wide DAG path is {:.2}x slower than the flat path (ceiling {}x)",
        m.overhead_factor(),
        daggate::WIDE_OVERHEAD_FACTOR_CEIL
    );
}

#[test]
fn deep_dag_rate_stays_above_floor() {
    let m = daggate::measure_gated(Topology::Deep);
    assert!(
        m.tasks_per_sec >= daggate::floor(Topology::Deep),
        "deep DAG rate {:.0}/s fell below the floor {:.0}/s",
        m.tasks_per_sec,
        daggate::floor(Topology::Deep)
    );
}

#[test]
fn diamond_dag_rate_stays_above_floor() {
    let m = daggate::measure_gated(Topology::Diamond);
    assert!(
        m.tasks_per_sec >= daggate::floor(Topology::Diamond),
        "diamond DAG rate {:.0}/s fell below the floor {:.0}/s",
        m.tasks_per_sec,
        daggate::floor(Topology::Diamond)
    );
}

/// The drill: a large artificial per-task cost must land well below
/// the floor — otherwise the gate can never fail and protects nothing.
/// 5ms/task on the wide topology at -j 8 caps the rate at ~1.6k
/// tasks/s, far under both floors. Uses a child process so the env var
/// cannot leak into concurrently running tests.
#[test]
fn handicapped_dag_rate_trips_the_gate() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_dag_rate_gate"))
        .args(["--topology", "wide", "--jobs", "8", "--tasks", "400"])
        .env("HTPAR_DAG_GATE_HANDICAP_US", "5000")
        .output()
        .expect("gate binary runs");
    assert!(
        !out.status.success(),
        "5ms/task handicap did not trip the gate; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("below the floor"),
        "gate failed for an unexpected reason; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
