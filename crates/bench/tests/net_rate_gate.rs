//! The socket-path rate gate under `cargo test` (debug profile), plus
//! the handicap drill proving the gate can trip.
//!
//! The mini-cluster agents are real subprocesses of the
//! `net_rate_gate` binary (its `main` calls `maybe_become_agent`
//! first); the test harness binary cannot serve as an agent itself
//! because libtest owns its `main`.

use std::process::Command;

use htpar_bench::netgate;
use htpar_net::frame::Payload;

fn agent_binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_net_rate_gate"))
}

#[test]
fn socket_path_stays_within_committed_slowdown() {
    let mut best: Option<f64> = None;
    for _ in 0..3 {
        let m = netgate::measure_with(agent_binary, Payload::Noop, netgate::NET_GATE_TASKS)
            .expect("gate workload runs");
        assert_eq!(m.tasks, netgate::NET_GATE_TASKS);
        assert!(m.socket_tasks_per_sec > 0.0);
        let slowdown = m.slowdown();
        if best.is_none_or(|b| slowdown < b) {
            best = Some(slowdown);
        }
        if slowdown <= netgate::max_slowdown() {
            break;
        }
    }
    let best = best.unwrap();
    assert!(
        best <= netgate::max_slowdown(),
        "socket path is {best:.2}x slower than in-process dispatch \
         (ceiling {:.2}x)",
        netgate::max_slowdown()
    );
}

/// The drill: a large artificial per-task cost on the agent side must
/// blow well past the ceiling — otherwise the gate can never fail and
/// is not protecting anything. 30ms/task across 64 slots caps the
/// socket path at ~2k tasks/s, hundreds of times slower than
/// in-process dispatch even in debug builds. Uses an explicit payload rather than
/// `HTPAR_NET_GATE_HANDICAP_US` so parallel tests don't share env.
#[test]
fn handicapped_socket_path_trips_the_gate() {
    let m = netgate::measure_with(agent_binary, Payload::SleepUs(30_000), 1_000)
        .expect("handicapped workload runs");
    assert!(
        m.slowdown() > netgate::max_slowdown(),
        "30ms/task handicap only produced a {:.2}x slowdown \
         (ceiling {:.2}x) — the gate would never trip",
        m.slowdown(),
        netgate::max_slowdown()
    );
}
