//! Engine dispatch-overhead benchmark: how fast our slot pool moves
//! no-op tasks — the library-level analogue of the paper's Fig. 3 launch
//! rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use htpar_core::prelude::*;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("runner_dispatch");
    let tasks = 2_000u64;
    group.throughput(Throughput::Elements(tasks));
    for jobs in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("noop_tasks", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                Parallel::new("noop {}")
                    .jobs(jobs)
                    .executor(FnExecutor::noop())
                    .args((0..tasks).map(|i| i.to_string()))
                    .run()
                    .expect("bench run")
            })
        });
    }
    group.finish();
}

fn bench_keep_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("runner_keep_order");
    let tasks = 2_000u64;
    group.throughput(Throughput::Elements(tasks));
    for keep in [false, true] {
        group.bench_with_input(BenchmarkId::new("keep_order", keep), &keep, |b, &keep| {
            b.iter(|| {
                Parallel::new("noop {}")
                    .jobs(8)
                    .keep_order(keep)
                    .executor(FnExecutor::noop())
                    .args((0..tasks).map(|i| i.to_string()))
                    .run()
                    .expect("bench run")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dispatch, bench_keep_order
}
criterion_main!(benches);
