//! FollowQueue throughput: the streaming fetch-process pipe of §IV-A.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use htpar_core::queue::FollowQueue;

fn bench_channel_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("follow_queue");
    let items = 10_000u64;
    group.throughput(Throughput::Elements(items));
    group.bench_function("push_drain_10k", |b| {
        b.iter(|| {
            let (writer, queue) = FollowQueue::channel();
            for i in 0..items {
                writer.push(format!("item-{i}"));
            }
            drop(writer);
            let mut n = 0u64;
            for _ in queue {
                n += 1;
            }
            assert_eq!(n, items);
        })
    });
    group.bench_function("concurrent_producer_consumer", |b| {
        b.iter(|| {
            let (writer, queue) = FollowQueue::channel();
            let producer = std::thread::spawn(move || {
                for i in 0..items {
                    writer.push(i.to_string());
                }
            });
            let n = queue.count();
            producer.join().unwrap();
            assert_eq!(n as u64, items);
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_channel_queue
}
criterion_main!(benches);
