//! Event-engine throughput: the Fig. 1 simulation fires ~1.15M task
//! events; the engine must not be the bottleneck.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use htpar_simkit::{SimTime, Simulation};
use htpar_storage::{FairShareLink, Flow};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("simkit");
    let events = 100_000u64;
    group.throughput(Throughput::Elements(events));
    group.bench_function("fire_100k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(0u64);
            for i in 0..events {
                sim.schedule_at(SimTime::from_micros(i), |s| *s.world_mut() += 1);
            }
            sim.run();
            assert_eq!(*sim.world(), events);
        })
    });
    group.bench_function("self_scheduling_chain_100k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(0u64);
            fn tick(sim: &mut Simulation<u64>) {
                *sim.world_mut() += 1;
                if *sim.world() < 100_000 {
                    sim.schedule_in(SimTime::from_micros(1), tick);
                }
            }
            sim.schedule_at(SimTime::ZERO, tick);
            sim.run();
        })
    });
    group.finish();
}

fn bench_fair_share(c: &mut Criterion) {
    let mut group = c.benchmark_group("fair_share");
    for n in [64usize, 1024] {
        let flows: Vec<Flow> = (0..n).map(|i| Flow::at_zero(1e6 + i as f64)).collect();
        let link = FairShareLink::new(1e9);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("completion_times_{n}"), |b| {
            b.iter(|| link.completion_times(&flows))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine, bench_fair_share
}
criterion_main!(benches);
