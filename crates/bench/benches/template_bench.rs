//! Microbenchmarks for replacement-string parsing and expansion — the
//! per-task cost on the engine's dispatch path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use htpar_core::template::{ExpandContext, Template};

fn bench_template(c: &mut Criterion) {
    let mut group = c.benchmark_group("template");
    group.throughput(Throughput::Elements(1));

    group.bench_function("parse_simple", |b| {
        b.iter(|| Template::parse(black_box("gzip -9 {} > out/{/.}.gz")).unwrap())
    });

    let t = Template::parse("run --seq {#} --slot {%} --in {} --base {/.} --dir {//}").unwrap();
    let args = vec!["/gpfs/alpine/proj/data/file.2024.dat".to_string()];
    let ctx = ExpandContext {
        args: &args,
        seq: 123_456,
        slot: 17,
    };
    group.bench_function("expand_pathops", |b| b.iter(|| t.expand(black_box(&ctx))));

    let plain = Template::parse("echo {}").unwrap();
    group.bench_function("expand_simple", |b| {
        b.iter(|| plain.expand(black_box(&ctx)))
    });

    group.bench_function("expand_argv", |b| b.iter(|| t.expand_argv(black_box(&ctx))));

    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    use htpar_core::batch::{expand_context_replace, plan_batches};
    let mut group = c.benchmark_group("batch");
    let args: Vec<String> = (0..1000)
        .map(|i| format!("/proj/data/f{i:06}.dat"))
        .collect();
    group.throughput(Throughput::Elements(args.len() as u64));
    group.bench_function("plan_1000_files", |b| {
        b.iter(|| plan_batches(black_box(&args), None, 128 * 1024, 40, 1))
    });
    let t = Template::parse("rsync -R -Ha {} /lustre/proj/").unwrap();
    group.bench_function("context_replace_1000", |b| {
        b.iter(|| expand_context_replace(black_box(&t), black_box(&args), 1, 1))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_template, bench_batch
}
criterion_main!(benches);
