//! Mini-rsync benchmarks: the quick-check scan that makes incremental
//! re-transfers cheap (the property §IV-E's petabyte migration relies
//! on).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use htpar_transfer::{find_files, sync_tree, SyncOptions};
use std::fs;
use std::path::PathBuf;

fn setup_tree(files: usize) -> (PathBuf, PathBuf, Vec<PathBuf>) {
    let root = std::env::temp_dir().join(format!("htpar-rsbench-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let src = root.join("src");
    for i in 0..files {
        let p = src.join(format!("d{:02}/f{i:04}.dat", i % 16));
        fs::create_dir_all(p.parent().unwrap()).unwrap();
        fs::write(&p, vec![b'x'; 256]).unwrap();
    }
    let listed = find_files(&src).unwrap();
    (root.clone(), root.join("dst"), listed)
}

fn bench_rsync(c: &mut Criterion) {
    let files = 500usize;
    let (root, dst, listed) = setup_tree(files);
    let opts = SyncOptions {
        relative: true,
        ..Default::default()
    };
    // Warm copy so the benchmark below measures the incremental path.
    sync_tree(&listed, &dst, &opts).unwrap();

    let mut group = c.benchmark_group("mini_rsync");
    group.throughput(Throughput::Elements(files as u64));
    group.bench_function("quick_check_up_to_date_500", |b| {
        b.iter(|| {
            let stats = sync_tree(&listed, &dst, &opts).unwrap();
            assert_eq!(stats.files_copied, 0);
        })
    });
    group.bench_function("find_files_500", |b| {
        b.iter(|| find_files(root.join("src")).unwrap())
    });
    group.finish();
    let _ = fs::remove_dir_all(&root);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_rsync
}
criterion_main!(benches);
