//! Unified telemetry bus for htpar.
//!
//! Every layer of the stack — the real execution engine
//! (`htpar-core`), the discrete-event simulator (`htpar-simkit`), and
//! the cluster/launch models (`htpar-cluster`, `htpar-wms`) — emits
//! structured [`Event`]s onto an [`EventBus`]. Pluggable [`Sink`]s
//! consume them:
//!
//! * [`Recorder`] — in-memory capture for tests (golden traces,
//!   lifecycle assertions, kill-and-resume checks),
//! * [`JsonlWriter`] — one JSON object per line for benches, so runs
//!   like `fig3_launch_rate` produce machine-readable trajectories,
//! * [`MetricsRegistry`] — counters, gauges, and quantile histograms
//!   (p50/p95/p99) aggregated on the fly; launch rate and progress
//!   become views over the bus instead of bespoke meters.
//!
//! The emit path is lock-cheap: a bus with no sinks is a single
//! relaxed atomic load, and sink dispatch takes one short `RwLock`
//! read. The crate is dependency-free so every other crate can depend
//! on it without cycles.

pub mod bus;
pub mod event;
pub mod metrics;
pub mod sinks;

pub use bus::{EventBus, Sink, SinkSet};
pub use event::{Event, LaunchMethod, TimedEvent};
pub use metrics::{HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use sinks::{JsonlWriter, Recorder};
