//! The event bus: fan-out from emitters to attached sinks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use crate::event::Event;

/// A telemetry consumer. Sinks are responsible for their own interior
/// mutability; `record` may be called concurrently from worker threads.
pub trait Sink: Send + Sync {
    /// `at` is the offset from bus creation (monotonic).
    fn record(&self, at: Duration, event: &Event);
}

/// Lock-cheap multi-producer event bus.
///
/// `emit` on a bus with no sinks is a single relaxed atomic load; with
/// sinks it takes one uncontended `RwLock` read to walk the sink list.
/// Sinks are attached once during setup and shared via `Arc`, so tests
/// keep a handle to their [`crate::Recorder`] while the engine owns the
/// bus.
pub struct EventBus {
    origin: Instant,
    sinks: RwLock<Vec<Arc<dyn Sink>>>,
    sink_count: AtomicUsize,
}

impl EventBus {
    pub fn new() -> EventBus {
        EventBus {
            origin: Instant::now(),
            sinks: RwLock::new(Vec::new()),
            sink_count: AtomicUsize::new(0),
        }
    }

    /// A shared bus, ready to be handed to engine + sinks.
    pub fn shared() -> Arc<EventBus> {
        Arc::new(EventBus::new())
    }

    /// Attach a sink; it will observe every event emitted afterwards.
    pub fn attach(&self, sink: Arc<dyn Sink>) {
        let mut sinks = self.sinks.write().expect("sink list poisoned");
        sinks.push(sink);
        self.sink_count.store(sinks.len(), Ordering::Release);
    }

    /// True if at least one sink is attached (emitters can use this to
    /// skip building expensive payloads).
    pub fn is_active(&self) -> bool {
        self.sink_count.load(Ordering::Relaxed) > 0
    }

    /// Offset of "now" from bus creation.
    pub fn now(&self) -> Duration {
        self.origin.elapsed()
    }

    /// Broadcast an event to all sinks. No-op (one atomic load) when no
    /// sink is attached.
    pub fn emit(&self, event: Event) {
        if self.sink_count.load(Ordering::Relaxed) == 0 {
            return;
        }
        let at = self.origin.elapsed();
        let sinks = self.sinks.read().expect("sink list poisoned");
        for sink in sinks.iter() {
            sink.record(at, &event);
        }
    }

    /// Snapshot the current sink list for a hot emitter (see [`SinkSet`]).
    pub fn sink_set(&self) -> SinkSet {
        let sinks = self.sinks.read().expect("sink list poisoned");
        SinkSet {
            origin: self.origin,
            sinks: sinks.clone().into(),
        }
    }
}

/// A point-in-time snapshot of a bus's sink list, for emitters with a
/// hot path: fan-out walks a private slice with no lock at all, and the
/// emitter can supply its own stamps via [`SinkSet::emit_at`] to reuse a
/// clock read it already paid for. Stamps share the bus's origin, so
/// events emitted through a snapshot and through [`EventBus::emit`]
/// land on one timeline. Sinks attached after the snapshot was taken
/// are not seen — take the snapshot after setup (the engine does, at
/// the top of each run).
#[derive(Clone)]
pub struct SinkSet {
    origin: Instant,
    sinks: Arc<[Arc<dyn Sink>]>,
}

impl SinkSet {
    /// True when the snapshot holds no sinks (emits are then no-ops).
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// Bus-relative stamp for "now" (same origin as [`EventBus::now`]).
    pub fn now(&self) -> Duration {
        self.origin.elapsed()
    }

    /// Bus-relative stamp for an instant the caller already holds.
    pub fn stamp(&self, at: Instant) -> Duration {
        at.saturating_duration_since(self.origin)
    }

    /// Broadcast, stamping with a fresh clock read.
    pub fn emit(&self, event: Event) {
        self.emit_at(self.origin.elapsed(), event);
    }

    /// Broadcast with a caller-supplied stamp.
    pub fn emit_at(&self, at: Duration, event: Event) {
        for sink in self.sinks.iter() {
            sink.record(at, &event);
        }
    }
}

impl std::fmt::Debug for SinkSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SinkSet")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl Default for EventBus {
    fn default() -> EventBus {
        EventBus::new()
    }
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("sinks", &self.sink_count.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::Recorder;

    #[test]
    fn no_sink_emit_is_noop() {
        let bus = EventBus::new();
        assert!(!bus.is_active());
        bus.emit(Event::Queued { seq: 1 }); // must not panic or block
    }

    #[test]
    fn events_fan_out_to_all_sinks() {
        let bus = EventBus::shared();
        let a = Recorder::shared();
        let b = Recorder::shared();
        bus.attach(a.clone());
        bus.attach(b.clone());
        assert!(bus.is_active());
        bus.emit(Event::Queued { seq: 7 });
        bus.emit(Event::QueueDepth { depth: 1 });
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(a.events()[0], Event::Queued { seq: 7 });
    }

    #[test]
    fn concurrent_emit_preserves_all_events() {
        let bus = EventBus::shared();
        let rec = Recorder::shared();
        bus.attach(rec.clone());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let bus = bus.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        bus.emit(Event::Queued { seq: t * 1000 + i });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(rec.len(), 800);
        // Per-thread emission order is preserved in the capture.
        let events = rec.events();
        for t in 0..8u64 {
            let seqs: Vec<u64> = events
                .iter()
                .filter_map(|e| e.seq())
                .filter(|s| s / 1000 == t)
                .collect();
            assert_eq!(seqs, (0..100).map(|i| t * 1000 + i).collect::<Vec<_>>());
        }
    }
}
