//! Built-in sinks: in-memory capture for tests and JSONL output for
//! benches.

use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::bus::Sink;
use crate::event::{Event, TimedEvent};

/// In-memory sink capturing every event in arrival order. Designed for
/// tests: keep a clone of the `Arc` you attach, run the workload, then
/// assert on [`Recorder::events`].
#[derive(Debug, Default)]
pub struct Recorder {
    captured: Mutex<Vec<TimedEvent>>,
}

impl Recorder {
    pub fn new() -> Recorder {
        Recorder::default()
    }

    pub fn shared() -> Arc<Recorder> {
        Arc::new(Recorder::new())
    }

    pub fn len(&self) -> usize {
        self.captured.lock().expect("recorder poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of captured events (without timestamps).
    pub fn events(&self) -> Vec<Event> {
        self.captured
            .lock()
            .expect("recorder poisoned")
            .iter()
            .map(|t| t.event.clone())
            .collect()
    }

    /// Snapshot of captured events with bus-relative timestamps.
    pub fn timed_events(&self) -> Vec<TimedEvent> {
        self.captured.lock().expect("recorder poisoned").clone()
    }

    /// Events for one task, in capture order — the job's lifecycle
    /// trajectory (`queued → slot_acquired → spawned → completed`).
    pub fn lifecycle_of(&self, seq: u64) -> Vec<Event> {
        self.captured
            .lock()
            .expect("recorder poisoned")
            .iter()
            .filter(|t| t.event.seq() == Some(seq))
            .map(|t| t.event.clone())
            .collect()
    }

    /// Kind strings of every captured event, in order. Convenient for
    /// golden-trace assertions.
    pub fn kinds(&self) -> Vec<&'static str> {
        self.captured
            .lock()
            .expect("recorder poisoned")
            .iter()
            .map(|t| t.event.kind())
            .collect()
    }

    /// Count of events matching a predicate.
    pub fn count_matching<F: Fn(&Event) -> bool>(&self, pred: F) -> usize {
        self.captured
            .lock()
            .expect("recorder poisoned")
            .iter()
            .filter(|t| pred(&t.event))
            .count()
    }

    /// Drop everything captured so far (e.g. between test phases).
    pub fn clear(&self) {
        self.captured.lock().expect("recorder poisoned").clear();
    }
}

impl Sink for Recorder {
    fn record(&self, at: Duration, event: &Event) {
        self.captured
            .lock()
            .expect("recorder poisoned")
            .push(TimedEvent {
                at,
                event: event.clone(),
            });
    }
}

/// Sink that appends one JSON object per event to a writer. Lines
/// follow the schema documented in DESIGN.md (`t_us`, `type`, then the
/// variant's fields), so bench trajectories are machine-readable.
pub struct JsonlWriter {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlWriter {
    pub fn new(writer: Box<dyn Write + Send>) -> JsonlWriter {
        JsonlWriter {
            out: Mutex::new(BufWriter::new(writer)),
        }
    }

    /// Create (truncate) a JSONL file at `path`.
    pub fn create(path: &Path) -> io::Result<Arc<JsonlWriter>> {
        let file = std::fs::File::create(path)?;
        Ok(Arc::new(JsonlWriter::new(Box::new(file))))
    }

    /// Capture into an in-memory buffer (used by tests to validate the
    /// schema without touching disk). The buffer is shared: read it
    /// back after [`JsonlWriter::flush`].
    pub fn in_memory() -> (Arc<JsonlWriter>, Arc<Mutex<Vec<u8>>>) {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        let writer = SharedBuffer {
            buffer: buffer.clone(),
        };
        (Arc::new(JsonlWriter::new(Box::new(writer))), buffer)
    }

    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().expect("jsonl writer poisoned").flush()
    }
}

impl Sink for JsonlWriter {
    fn record(&self, at: Duration, event: &Event) {
        let line = event.to_jsonl(at);
        let mut out = self.out.lock().expect("jsonl writer poisoned");
        // Telemetry must never take down the workload; drop on I/O error.
        let _ = writeln!(out, "{line}");
    }
}

impl Drop for JsonlWriter {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

struct SharedBuffer {
    buffer: Arc<Mutex<Vec<u8>>>,
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buffer
            .lock()
            .expect("buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::EventBus;
    use crate::event::LaunchMethod;

    #[test]
    fn recorder_captures_in_order_with_lifecycle_lookup() {
        let bus = EventBus::shared();
        let rec = Recorder::shared();
        bus.attach(rec.clone());
        bus.emit(Event::Queued { seq: 1 });
        bus.emit(Event::SlotAcquired { seq: 1, slot: 1 });
        bus.emit(Event::Queued { seq: 2 });
        bus.emit(Event::Spawned { seq: 1, slot: 1 });
        bus.emit(Event::Completed {
            seq: 1,
            exit: 0,
            runtime: Duration::from_millis(1),
        });
        assert_eq!(
            rec.lifecycle_of(1)
                .iter()
                .map(|e| e.kind())
                .collect::<Vec<_>>(),
            vec!["queued", "slot_acquired", "spawned", "completed"]
        );
        assert_eq!(rec.lifecycle_of(2).len(), 1);
        assert_eq!(rec.kinds()[0], "queued");
        rec.clear();
        assert!(rec.is_empty());
    }

    #[test]
    fn jsonl_writer_emits_parseable_lines() {
        let (writer, buffer) = JsonlWriter::in_memory();
        let bus = EventBus::shared();
        bus.attach(writer.clone());
        bus.emit(Event::Launch {
            method: LaunchMethod::Parallel,
            tasks: 128,
        });
        bus.emit(Event::NodeUp { node: 3 });
        writer.flush().unwrap();
        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["type"].as_str(), Some("launch"));
        assert_eq!(first["method"].as_str(), Some("parallel"));
        assert_eq!(first["tasks"].as_u64(), Some(128));
        let second = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second["type"].as_str(), Some("node_up"));
        assert_eq!(second["node"].as_u64(), Some(3));
    }

    #[test]
    fn jsonl_writer_to_file_round_trips() {
        let dir = std::env::temp_dir().join(format!("htpar-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        {
            let writer = JsonlWriter::create(&path).unwrap();
            writer.record(Duration::from_micros(5), &Event::QueueDepth { depth: 9 });
            writer.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let v = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(v["depth"].as_u64(), Some(9));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
