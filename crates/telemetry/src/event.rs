//! The typed event vocabulary shared by engine, simulator, and cluster
//! models, plus its line-oriented JSON encoding.
//!
//! The JSONL schema (documented in DESIGN.md) is stable: every line is
//! an object with `"t_us"` (microseconds since bus creation), `"type"`
//! (the variant's kind string), and the variant's fields by name.

use std::time::Duration;

/// How a batch of tasks was launched onto a node (paper §IV compares
/// one `srun` per task against a single `srun` wrapping GNU parallel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchMethod {
    /// One scheduler RPC per task (`srun` per task).
    Srun,
    /// One scheduler RPC for the whole batch, fan-out by GNU parallel.
    Parallel,
}

impl LaunchMethod {
    pub fn as_str(&self) -> &'static str {
        match self {
            LaunchMethod::Srun => "srun",
            LaunchMethod::Parallel => "parallel",
        }
    }
}

/// A structured telemetry event. Variants group into four families:
/// task lifecycle, scheduler state, DES milestones, and cluster/launch.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    // -- Task lifecycle -------------------------------------------------
    /// A job left the input source and entered the run queue.
    Queued { seq: u64 },
    /// A job claimed an execution slot (GNU parallel `{%}`, 1-based).
    SlotAcquired { seq: u64, slot: usize },
    /// The job's command was spawned (or simulated/dry-run rendered).
    Spawned { seq: u64, slot: usize },
    /// The process-launch fast path execed the rendered command
    /// directly as argv — no `sh -c` layer (see
    /// `htpar_core::spawn::bypass_argv`). `latency_us` is the in-parent
    /// launch cost: argv/env arena fill through `posix_spawn` return.
    ShellBypass { seq: u64, latency_us: u64 },
    /// The fast path fell back to `sh -c` (the command needs shell
    /// interpretation). Same `latency_us` definition as `ShellBypass`.
    ShFallback { seq: u64, latency_us: u64 },
    /// The job finished. `runtime` is wall time of the final attempt.
    Completed {
        seq: u64,
        exit: i32,
        runtime: Duration,
    },
    /// A failed attempt is being retried (`attempt` counts from 1).
    Retried { seq: u64, attempt: u32 },
    /// The job exhausted retries (or failed with none configured).
    Failed { seq: u64, exit: i32 },

    // -- Scheduler state ------------------------------------------------
    /// Slot occupancy after an acquire/release (`busy` of `total`).
    SlotOccupancy { busy: usize, total: usize },
    /// Pending depth of the ingest queue after a push or pop.
    QueueDepth { depth: usize },
    /// Completion records buffered in per-slot buffers, not yet drained
    /// by the engine's collector thread (emitted after each drain batch).
    CollectorBacklog { pending: usize },

    // -- DES milestones -------------------------------------------------
    /// The simulator fired a scheduled event at virtual time `sim_time`.
    SimEventFired { sim_time: f64, count: u64 },
    /// `count` scheduled events were cancelled before firing (a single
    /// cancel emits `count: 1`; a batch cancel — e.g. everything in
    /// flight on a crashed node — emits one aggregate event).
    SimEventCancelled { sim_time: f64, count: u64 },

    // -- Cluster / launch ----------------------------------------------
    /// A simulated node came up and can accept work.
    NodeUp { node: u32 },
    /// A launch wave was dispatched: `tasks` tasks via `method`.
    Launch { method: LaunchMethod, tasks: u64 },
    /// A simulated node died mid-run (fault injection); `sim_time` is
    /// the crash instant in simulated seconds.
    NodeDown { node: u32, sim_time: f64 },
    /// A dead node's unfinished shard slice was requeued onto a
    /// surviving node by the resilient driver.
    ShardRequeued {
        from_node: u32,
        to_node: u32,
        tasks: u64,
    },

    // -- Network driver/agent -------------------------------------------
    /// A live agent process completed the protocol handshake with the
    /// driver, granting `slots` job slots.
    AgentConnected { agent: u32, slots: usize },
    /// An agent was declared lost (socket closed or heartbeat lease
    /// expired) with `outstanding` unfinished tasks re-sharded onto
    /// survivors.
    AgentLost { agent: u32, outstanding: u64 },
    /// A shard of `tasks` task assignments was sent to an agent (initial
    /// placement or recovery re-shard).
    ShardSent { agent: u32, tasks: u64 },
    /// Protocol byte totals for one agent connection, emitted when the
    /// driver closes it.
    FrameBytes {
        agent: u32,
        sent: u64,
        received: u64,
    },

    // -- Pilot service (`htpar serve`) ----------------------------------
    /// A client session completed its handshake with the pilot and bound
    /// a tenant on its first `Submit`.
    SessionOpened { session: u64, tenant: String },
    /// A session ended; `reason` is `"complete"` (all accepted work done
    /// and acknowledged) or `"disconnect"` (client went away mid-run).
    SessionClosed {
        session: u64,
        tenant: String,
        completed: u64,
        reason: String,
    },
    /// Admission control refused a `Submit` (the tenant's queue was at
    /// its depth bound); `queued` is the depth at the time of refusal.
    SubmitRejected {
        session: u64,
        tenant: String,
        tasks: u64,
        queued: u64,
    },
    /// Tenant-attributed shard dispatch: the pilot's scheduler granted
    /// `tasks` tasks of this tenant onto an agent.
    TenantShardSent {
        tenant: String,
        agent: u32,
        tasks: u64,
    },
    /// Tenant-attributed completion routed back to its session (`seq` is
    /// the session-local sequence number, the tenant joblog key).
    TenantTaskDone {
        tenant: String,
        session: u64,
        seq: u64,
    },
    /// A session detached: its client may drop the socket and reattach
    /// later by key; its accepted work stays live.
    SessionDetached { session: u64, tenant: String },
    /// A client reattached to a detached session; `replayed` counts
    /// already-recorded completions resent from the tenant joblog.
    SessionReattached {
        session: u64,
        tenant: String,
        replayed: u64,
    },
    /// A restarted pilot rebuilt its session table from the journal:
    /// `sessions` recovered, `tasks` unfinished seqs re-queued.
    PilotRecovered { sessions: u64, tasks: u64 },
}

impl Event {
    /// Stable kind string; also the `"type"` field of the JSONL encoding
    /// and the metric key prefix in [`crate::MetricsRegistry`].
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Queued { .. } => "queued",
            Event::SlotAcquired { .. } => "slot_acquired",
            Event::Spawned { .. } => "spawned",
            Event::ShellBypass { .. } => "shell_bypass",
            Event::ShFallback { .. } => "sh_fallback",
            Event::Completed { .. } => "completed",
            Event::Retried { .. } => "retried",
            Event::Failed { .. } => "failed",
            Event::SlotOccupancy { .. } => "slot_occupancy",
            Event::QueueDepth { .. } => "queue_depth",
            Event::CollectorBacklog { .. } => "collector_backlog",
            Event::SimEventFired { .. } => "sim_event_fired",
            Event::SimEventCancelled { .. } => "sim_event_cancelled",
            Event::NodeUp { .. } => "node_up",
            Event::Launch { .. } => "launch",
            Event::NodeDown { .. } => "node_down",
            Event::ShardRequeued { .. } => "shard_requeued",
            Event::AgentConnected { .. } => "agent_connected",
            Event::AgentLost { .. } => "agent_lost",
            Event::ShardSent { .. } => "shard_sent",
            Event::FrameBytes { .. } => "frame_bytes",
            Event::SessionOpened { .. } => "session_opened",
            Event::SessionClosed { .. } => "session_closed",
            Event::SubmitRejected { .. } => "submit_rejected",
            Event::TenantShardSent { .. } => "tenant_shard_sent",
            Event::TenantTaskDone { .. } => "tenant_task_done",
            Event::SessionDetached { .. } => "session_detached",
            Event::SessionReattached { .. } => "session_reattached",
            Event::PilotRecovered { .. } => "pilot_recovered",
        }
    }

    /// Sequence number for task-lifecycle events, if any.
    pub fn seq(&self) -> Option<u64> {
        match self {
            Event::Queued { seq }
            | Event::SlotAcquired { seq, .. }
            | Event::Spawned { seq, .. }
            | Event::ShellBypass { seq, .. }
            | Event::ShFallback { seq, .. }
            | Event::Completed { seq, .. }
            | Event::Retried { seq, .. }
            | Event::Failed { seq, .. } => Some(*seq),
            _ => None,
        }
    }

    /// Encode as a single JSONL object (no trailing newline).
    pub fn to_jsonl(&self, at: Duration) -> String {
        let t_us = at.as_micros();
        let body = match self {
            Event::Queued { seq } => format!("\"seq\":{seq}"),
            Event::SlotAcquired { seq, slot } => format!("\"seq\":{seq},\"slot\":{slot}"),
            Event::Spawned { seq, slot } => format!("\"seq\":{seq},\"slot\":{slot}"),
            Event::ShellBypass { seq, latency_us } | Event::ShFallback { seq, latency_us } => {
                format!("\"seq\":{seq},\"latency_us\":{latency_us}")
            }
            Event::Completed { seq, exit, runtime } => format!(
                "\"seq\":{seq},\"exit\":{exit},\"runtime_us\":{}",
                runtime.as_micros()
            ),
            Event::Retried { seq, attempt } => format!("\"seq\":{seq},\"attempt\":{attempt}"),
            Event::Failed { seq, exit } => format!("\"seq\":{seq},\"exit\":{exit}"),
            Event::SlotOccupancy { busy, total } => format!("\"busy\":{busy},\"total\":{total}"),
            Event::QueueDepth { depth } => format!("\"depth\":{depth}"),
            Event::CollectorBacklog { pending } => format!("\"pending\":{pending}"),
            Event::SimEventFired { sim_time, count } => {
                format!("\"sim_time\":{},\"count\":{count}", fmt_f64(*sim_time))
            }
            Event::SimEventCancelled { sim_time, count } => {
                format!("\"sim_time\":{},\"count\":{count}", fmt_f64(*sim_time))
            }
            Event::NodeUp { node } => format!("\"node\":{node}"),
            Event::Launch { method, tasks } => {
                format!("\"method\":\"{}\",\"tasks\":{tasks}", method.as_str())
            }
            Event::NodeDown { node, sim_time } => {
                format!("\"node\":{node},\"sim_time\":{}", fmt_f64(*sim_time))
            }
            Event::ShardRequeued {
                from_node,
                to_node,
                tasks,
            } => {
                format!("\"from_node\":{from_node},\"to_node\":{to_node},\"tasks\":{tasks}")
            }
            Event::AgentConnected { agent, slots } => {
                format!("\"agent\":{agent},\"slots\":{slots}")
            }
            Event::AgentLost { agent, outstanding } => {
                format!("\"agent\":{agent},\"outstanding\":{outstanding}")
            }
            Event::ShardSent { agent, tasks } => format!("\"agent\":{agent},\"tasks\":{tasks}"),
            Event::FrameBytes {
                agent,
                sent,
                received,
            } => {
                format!("\"agent\":{agent},\"sent\":{sent},\"received\":{received}")
            }
            Event::SessionOpened { session, tenant } => {
                format!("\"session\":{session},\"tenant\":{}", json_str(tenant))
            }
            Event::SessionClosed {
                session,
                tenant,
                completed,
                reason,
            } => format!(
                "\"session\":{session},\"tenant\":{},\"completed\":{completed},\"reason\":{}",
                json_str(tenant),
                json_str(reason)
            ),
            Event::SubmitRejected {
                session,
                tenant,
                tasks,
                queued,
            } => format!(
                "\"session\":{session},\"tenant\":{},\"tasks\":{tasks},\"queued\":{queued}",
                json_str(tenant)
            ),
            Event::TenantShardSent {
                tenant,
                agent,
                tasks,
            } => format!(
                "\"tenant\":{},\"agent\":{agent},\"tasks\":{tasks}",
                json_str(tenant)
            ),
            Event::TenantTaskDone {
                tenant,
                session,
                seq,
            } => format!(
                "\"tenant\":{},\"session\":{session},\"seq\":{seq}",
                json_str(tenant)
            ),
            Event::SessionDetached { session, tenant } => {
                format!("\"session\":{session},\"tenant\":{}", json_str(tenant))
            }
            Event::SessionReattached {
                session,
                tenant,
                replayed,
            } => format!(
                "\"session\":{session},\"tenant\":{},\"replayed\":{replayed}",
                json_str(tenant)
            ),
            Event::PilotRecovered { sessions, tasks } => {
                format!("\"sessions\":{sessions},\"tasks\":{tasks}")
            }
        };
        format!("{{\"t_us\":{t_us},\"type\":\"{}\",{body}}}", self.kind())
    }
}

/// JSON string literal with the two escapes that matter for
/// caller-supplied names (quotes, backslashes) plus control bytes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON-safe float formatting (no NaN/inf in the output stream).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// An event stamped with its offset from bus creation, as captured by
/// [`crate::Recorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    pub at: Duration,
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_strings_are_unique() {
        let events = [
            Event::Queued { seq: 1 },
            Event::SlotAcquired { seq: 1, slot: 2 },
            Event::Spawned { seq: 1, slot: 2 },
            Event::ShellBypass {
                seq: 1,
                latency_us: 180,
            },
            Event::ShFallback {
                seq: 2,
                latency_us: 420,
            },
            Event::Completed {
                seq: 1,
                exit: 0,
                runtime: Duration::from_millis(5),
            },
            Event::Retried { seq: 1, attempt: 1 },
            Event::Failed { seq: 1, exit: 2 },
            Event::SlotOccupancy { busy: 1, total: 4 },
            Event::QueueDepth { depth: 3 },
            Event::CollectorBacklog { pending: 2 },
            Event::SimEventFired {
                sim_time: 1.5,
                count: 9,
            },
            Event::SimEventCancelled {
                sim_time: 2.0,
                count: 1,
            },
            Event::NodeUp { node: 7 },
            Event::Launch {
                method: LaunchMethod::Parallel,
                tasks: 64,
            },
            Event::NodeDown {
                node: 3,
                sim_time: 12.5,
            },
            Event::ShardRequeued {
                from_node: 3,
                to_node: 1,
                tasks: 17,
            },
            Event::AgentConnected {
                agent: 0,
                slots: 16,
            },
            Event::AgentLost {
                agent: 2,
                outstanding: 41,
            },
            Event::ShardSent {
                agent: 1,
                tasks: 2500,
            },
            Event::FrameBytes {
                agent: 1,
                sent: 4096,
                received: 8192,
            },
            Event::SessionOpened {
                session: 3,
                tenant: "t0".into(),
            },
            Event::SessionClosed {
                session: 3,
                tenant: "t0".into(),
                completed: 100,
                reason: "complete".into(),
            },
            Event::SubmitRejected {
                session: 3,
                tenant: "t0".into(),
                tasks: 512,
                queued: 4096,
            },
            Event::TenantShardSent {
                tenant: "t0".into(),
                agent: 1,
                tasks: 64,
            },
            Event::TenantTaskDone {
                tenant: "t0".into(),
                session: 3,
                seq: 17,
            },
            Event::SessionDetached {
                session: 3,
                tenant: "t0".into(),
            },
            Event::SessionReattached {
                session: 3,
                tenant: "t0".into(),
                replayed: 42,
            },
            Event::PilotRecovered {
                sessions: 2,
                tasks: 300,
            },
        ];
        let mut kinds: Vec<_> = events.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len());
    }

    #[test]
    fn jsonl_lines_parse_as_json() {
        let at = Duration::from_micros(1234);
        let events = [
            Event::Completed {
                seq: 42,
                exit: 0,
                runtime: Duration::from_millis(545),
            },
            Event::ShellBypass {
                seq: 42,
                latency_us: 95,
            },
            Event::ShFallback {
                seq: 43,
                latency_us: 310,
            },
            Event::Launch {
                method: LaunchMethod::Srun,
                tasks: 1000,
            },
            Event::SimEventFired {
                sim_time: 0.25,
                count: 3,
            },
            Event::NodeDown {
                node: 9,
                sim_time: 3.75,
            },
            Event::ShardRequeued {
                from_node: 9,
                to_node: 0,
                tasks: 128,
            },
            Event::AgentConnected {
                agent: 3,
                slots: 16,
            },
            Event::AgentLost {
                agent: 3,
                outstanding: 12,
            },
            Event::ShardSent {
                agent: 0,
                tasks: 2048,
            },
            Event::FrameBytes {
                agent: 0,
                sent: 123456,
                received: 654321,
            },
            Event::SessionOpened {
                session: 7,
                tenant: "tenant \"a\"\\b".into(),
            },
            Event::SessionClosed {
                session: 7,
                tenant: "t1".into(),
                completed: 9,
                reason: "disconnect".into(),
            },
            Event::SubmitRejected {
                session: 7,
                tenant: "t1".into(),
                tasks: 100,
                queued: 1024,
            },
            Event::TenantShardSent {
                tenant: "t1".into(),
                agent: 2,
                tasks: 32,
            },
            Event::TenantTaskDone {
                tenant: "t1".into(),
                session: 7,
                seq: 5,
            },
            Event::SessionDetached {
                session: 7,
                tenant: "t \"x\"".into(),
            },
            Event::SessionReattached {
                session: 7,
                tenant: "t1".into(),
                replayed: 9,
            },
            Event::PilotRecovered {
                sessions: 1,
                tasks: 77,
            },
        ];
        for e in &events {
            let line = e.to_jsonl(at);
            let v = serde_json::from_str(&line).expect("valid JSON line");
            assert_eq!(v["t_us"].as_u64(), Some(1234));
            assert_eq!(v["type"].as_str(), Some(e.kind()));
        }
        let v = serde_json::from_str(&events[0].to_jsonl(at)).unwrap();
        assert_eq!(v["seq"].as_u64(), Some(42));
        assert_eq!(v["runtime_us"].as_u64(), Some(545_000));
        // Tenant names are caller-supplied; quotes and backslashes must
        // survive the JSON encoding.
        let v = serde_json::from_str(&events[11].to_jsonl(at)).unwrap();
        assert_eq!(v["tenant"].as_str(), Some("tenant \"a\"\\b"));
    }

    #[test]
    fn seq_accessor_covers_lifecycle_only() {
        assert_eq!(Event::Queued { seq: 9 }.seq(), Some(9));
        assert_eq!(Event::QueueDepth { depth: 1 }.seq(), None);
        assert_eq!(Event::NodeUp { node: 1 }.seq(), None);
    }
}
