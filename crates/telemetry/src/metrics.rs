//! Aggregating sink: counters, gauges, and quantile histograms over the
//! event stream.
//!
//! `MetricsRegistry` subsumes the engine's bespoke meters: the launch
//! rate it derives from `spawned` events matches
//! `htpar_core::stats::RateMeter` (same sustained-rate definition:
//! events-minus-one over first→last span), and its snapshot carries the
//! same ok/failed/retry tallies `htpar_core::progress::Progress`
//! tracks — both become views over the bus.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::bus::Sink;
use crate::event::Event;

/// Order statistics of one histogram (times in microseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    pub count: usize,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl HistogramSummary {
    fn empty() -> HistogramSummary {
        HistogramSummary {
            count: 0,
            min: 0,
            max: 0,
            mean: 0.0,
            p50: 0,
            p95: 0,
            p99: 0,
        }
    }

    /// Nearest-rank quantiles over the (unsorted) sample set.
    fn from_samples(samples: &[u64]) -> HistogramSummary {
        if samples.is_empty() {
            return HistogramSummary::empty();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = |q: f64| -> u64 {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };
        HistogramSummary {
            count: sorted.len(),
            min: sorted[0],
            max: *sorted.last().expect("nonempty"),
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
        }
    }
}

/// Point-in-time aggregate of everything the registry has observed.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Event counts keyed by [`Event::kind`] string.
    pub counters: BTreeMap<String, u64>,
    /// Latest queue depth seen (gauge).
    pub queue_depth: usize,
    /// Latest slot occupancy seen (gauge): `(busy, total)`.
    pub slot_occupancy: (usize, usize),
    /// Runtime distribution of completed tasks.
    pub runtime: HistogramSummary,
    /// Sustained launch rate over `spawned` events (see
    /// [`MetricsRegistry::launch_rate_sustained`]); `None` below 2 events.
    pub launch_rate: Option<f64>,
    /// Tasks that completed with exit 0.
    pub ok: u64,
    /// Tasks that completed with nonzero exit, plus terminal failures.
    pub failed: u64,
    /// Retry attempts observed.
    pub retries: u64,
    /// Total tasks launched into the cluster model, by launch waves.
    pub launched_tasks: u64,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    queue_depth: usize,
    slot_busy: usize,
    slot_total: usize,
    /// Bus-relative stamps of `spawned` events (launch-rate source).
    spawn_stamps: Vec<Duration>,
    /// Final-attempt runtimes of completed tasks, microseconds.
    runtimes_us: Vec<u64>,
    ok: u64,
    failed: u64,
    retries: u64,
    launched_tasks: u64,
}

/// Thread-safe aggregating sink. Attach it to a bus and read
/// [`MetricsRegistry::snapshot`] during or after the run.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    pub fn shared() -> std::sync::Arc<MetricsRegistry> {
        std::sync::Arc::new(MetricsRegistry::new())
    }

    /// Count of events of one kind seen so far.
    pub fn counter(&self, kind: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics poisoned");
        inner.counters.get(kind).copied().unwrap_or(0)
    }

    /// Sustained launch rate: `spawned`-events-minus-one over the
    /// first→last spawn span — the same definition as
    /// `RateMeter::rate_per_sec`, so the two agree when fed the same
    /// launches. `None` with fewer than 2 spawns or zero span.
    pub fn launch_rate_sustained(&self) -> Option<f64> {
        let inner = self.inner.lock().expect("metrics poisoned");
        rate_over(&inner.spawn_stamps)
    }

    /// Launches per second of bus lifetime (count over last stamp).
    pub fn launch_rate_overall(&self) -> Option<f64> {
        let inner = self.inner.lock().expect("metrics poisoned");
        let last = inner.spawn_stamps.iter().max()?.as_secs_f64();
        if last <= 0.0 {
            return None;
        }
        Some(inner.spawn_stamps.len() as f64 / last)
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            queue_depth: inner.queue_depth,
            slot_occupancy: (inner.slot_busy, inner.slot_total),
            runtime: HistogramSummary::from_samples(&inner.runtimes_us),
            launch_rate: rate_over(&inner.spawn_stamps),
            ok: inner.ok,
            failed: inner.failed,
            retries: inner.retries,
            launched_tasks: inner.launched_tasks,
        }
    }
}

fn rate_over(stamps: &[Duration]) -> Option<f64> {
    if stamps.len() < 2 {
        return None;
    }
    let first = stamps.iter().min().expect("nonempty");
    let last = stamps.iter().max().expect("nonempty");
    let span = (*last - *first).as_secs_f64();
    if span <= 0.0 {
        return None;
    }
    Some((stamps.len() - 1) as f64 / span)
}

impl Sink for MetricsRegistry {
    fn record(&self, at: Duration, event: &Event) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        *inner.counters.entry(event.kind()).or_insert(0) += 1;
        match event {
            Event::Spawned { .. } => inner.spawn_stamps.push(at),
            Event::Completed { exit, runtime, .. } => {
                inner.runtimes_us.push(runtime.as_micros() as u64);
                if *exit == 0 {
                    inner.ok += 1;
                } else {
                    inner.failed += 1;
                }
            }
            Event::Failed { .. } => inner.failed += 1,
            Event::Retried { .. } => inner.retries += 1,
            Event::QueueDepth { depth } => inner.queue_depth = *depth,
            Event::SlotOccupancy { busy, total } => {
                inner.slot_busy = *busy;
                inner.slot_total = *total;
            }
            Event::Launch { tasks, .. } => inner.launched_tasks += *tasks,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LaunchMethod;

    fn feed(reg: &MetricsRegistry, at_us: u64, event: Event) {
        reg.record(Duration::from_micros(at_us), &event);
    }

    #[test]
    fn counters_and_tallies() {
        let reg = MetricsRegistry::new();
        feed(&reg, 0, Event::Queued { seq: 1 });
        feed(&reg, 1, Event::Spawned { seq: 1, slot: 1 });
        feed(
            &reg,
            2,
            Event::Completed {
                seq: 1,
                exit: 0,
                runtime: Duration::from_millis(3),
            },
        );
        feed(&reg, 3, Event::Queued { seq: 2 });
        feed(&reg, 4, Event::Spawned { seq: 2, slot: 2 });
        feed(&reg, 5, Event::Retried { seq: 2, attempt: 1 });
        feed(
            &reg,
            6,
            Event::Completed {
                seq: 2,
                exit: 1,
                runtime: Duration::from_millis(9),
            },
        );
        let snap = reg.snapshot();
        assert_eq!(snap.counters["queued"], 2);
        assert_eq!(snap.counters["spawned"], 2);
        assert_eq!(snap.ok, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.retries, 1);
        assert_eq!(reg.counter("completed"), 2);
        assert_eq!(reg.counter("nonexistent"), 0);
    }

    #[test]
    fn gauges_track_latest_value() {
        let reg = MetricsRegistry::new();
        feed(&reg, 0, Event::QueueDepth { depth: 5 });
        feed(&reg, 1, Event::QueueDepth { depth: 2 });
        feed(&reg, 2, Event::SlotOccupancy { busy: 3, total: 8 });
        let snap = reg.snapshot();
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.slot_occupancy, (3, 8));
    }

    #[test]
    fn histogram_quantiles_nearest_rank() {
        let reg = MetricsRegistry::new();
        for ms in 1..=100u64 {
            feed(
                &reg,
                ms,
                Event::Completed {
                    seq: ms,
                    exit: 0,
                    runtime: Duration::from_micros(ms),
                },
            );
        }
        let h = reg.snapshot().runtime;
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert_eq!(h.p50, 50);
        assert_eq!(h.p95, 95);
        assert_eq!(h.p99, 99);
        assert!((h.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn launch_rate_matches_rate_meter_definition() {
        let reg = MetricsRegistry::new();
        // 11 spawns, 10 ms apart: sustained rate = 10 / 0.1 s = 100/s.
        for i in 0..11u64 {
            feed(&reg, i * 10_000, Event::Spawned { seq: i, slot: 1 });
        }
        let rate = reg.launch_rate_sustained().unwrap();
        assert!((rate - 100.0).abs() < 1e-6, "rate {rate}");
        let overall = reg.launch_rate_overall().unwrap();
        assert!((overall - 110.0).abs() < 1e-6, "overall {overall}");
    }

    #[test]
    fn launch_waves_accumulate() {
        let reg = MetricsRegistry::new();
        feed(
            &reg,
            0,
            Event::Launch {
                method: LaunchMethod::Srun,
                tasks: 100,
            },
        );
        feed(
            &reg,
            1,
            Event::Launch {
                method: LaunchMethod::Parallel,
                tasks: 900,
            },
        );
        assert_eq!(reg.snapshot().launched_tasks, 1000);
    }

    #[test]
    fn empty_registry_snapshot() {
        let snap = MetricsRegistry::new().snapshot();
        assert_eq!(snap.runtime.count, 0);
        assert_eq!(snap.launch_rate, None);
        assert!(snap.counters.is_empty());
    }
}
