//! Aggregating sink: counters, gauges, and quantile histograms over the
//! event stream.
//!
//! `MetricsRegistry` subsumes the engine's bespoke meters: the launch
//! rate it derives from `spawned` events matches
//! `htpar_core::stats::RateMeter` (same sustained-rate definition:
//! events-minus-one over first→last span), and its snapshot carries the
//! same ok/failed/retry tallies `htpar_core::progress::Progress`
//! tracks — both become views over the bus.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::bus::Sink;
use crate::event::Event;

/// Order statistics of one histogram (times in microseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    pub count: usize,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl HistogramSummary {
    fn empty() -> HistogramSummary {
        HistogramSummary {
            count: 0,
            min: 0,
            max: 0,
            mean: 0.0,
            p50: 0,
            p95: 0,
            p99: 0,
        }
    }

    /// Nearest-rank quantiles over the (unsorted) sample set.
    fn from_samples(samples: &[u64]) -> HistogramSummary {
        if samples.is_empty() {
            return HistogramSummary::empty();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = |q: f64| -> u64 {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };
        HistogramSummary {
            count: sorted.len(),
            min: sorted[0],
            max: *sorted.last().expect("nonempty"),
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
        }
    }
}

/// Point-in-time aggregate of everything the registry has observed.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Event counts keyed by [`Event::kind`] string.
    pub counters: BTreeMap<String, u64>,
    /// Latest queue depth seen (gauge).
    pub queue_depth: usize,
    /// Latest slot occupancy seen (gauge): `(busy, total)`.
    pub slot_occupancy: (usize, usize),
    /// Latest engine collector backlog seen (gauge): completion records
    /// buffered but not yet drained by the collector thread, and the
    /// high-water mark across the run.
    pub collector_backlog: usize,
    pub collector_backlog_peak: usize,
    /// Runtime distribution of completed tasks.
    pub runtime: HistogramSummary,
    /// In-parent launch-cost distribution (`latency_us` of
    /// `shell_bypass`/`sh_fallback` events from the process spawner).
    pub spawn_latency: HistogramSummary,
    /// Sustained launch rate over `spawned` events (see
    /// [`MetricsRegistry::launch_rate_sustained`]); `None` below 2 events.
    pub launch_rate: Option<f64>,
    /// Tasks that completed with exit 0.
    pub ok: u64,
    /// Tasks that completed with nonzero exit, plus terminal failures.
    pub failed: u64,
    /// Retry attempts observed.
    pub retries: u64,
    /// Total tasks launched into the cluster model, by launch waves.
    pub launched_tasks: u64,
    /// Simulated nodes lost to injected crashes.
    pub nodes_down: u64,
    /// Tasks requeued onto surviving nodes by the resilient driver.
    pub requeued_tasks: u64,
}

/// Every kind string, in counter-slot order. Indexed by [`kind_slot`].
const KINDS: [&str; 29] = [
    "queued",
    "slot_acquired",
    "spawned",
    "shell_bypass",
    "sh_fallback",
    "completed",
    "retried",
    "failed",
    "slot_occupancy",
    "queue_depth",
    "collector_backlog",
    "sim_event_fired",
    "sim_event_cancelled",
    "node_up",
    "launch",
    "node_down",
    "shard_requeued",
    "agent_connected",
    "agent_lost",
    "shard_sent",
    "frame_bytes",
    "session_opened",
    "session_closed",
    "submit_rejected",
    "tenant_shard_sent",
    "tenant_task_done",
    "session_detached",
    "session_reattached",
    "pilot_recovered",
];

/// Counter slot for an event — a direct variant match, so the hot
/// `record` path never does string lookups.
fn kind_slot(event: &Event) -> usize {
    match event {
        Event::Queued { .. } => 0,
        Event::SlotAcquired { .. } => 1,
        Event::Spawned { .. } => 2,
        Event::ShellBypass { .. } => 3,
        Event::ShFallback { .. } => 4,
        Event::Completed { .. } => 5,
        Event::Retried { .. } => 6,
        Event::Failed { .. } => 7,
        Event::SlotOccupancy { .. } => 8,
        Event::QueueDepth { .. } => 9,
        Event::CollectorBacklog { .. } => 10,
        Event::SimEventFired { .. } => 11,
        Event::SimEventCancelled { .. } => 12,
        Event::NodeUp { .. } => 13,
        Event::Launch { .. } => 14,
        Event::NodeDown { .. } => 15,
        Event::ShardRequeued { .. } => 16,
        Event::AgentConnected { .. } => 17,
        Event::AgentLost { .. } => 18,
        Event::ShardSent { .. } => 19,
        Event::FrameBytes { .. } => 20,
        Event::SessionOpened { .. } => 21,
        Event::SessionClosed { .. } => 22,
        Event::SubmitRejected { .. } => 23,
        Event::TenantShardSent { .. } => 24,
        Event::TenantTaskDone { .. } => 25,
        Event::SessionDetached { .. } => 26,
        Event::SessionReattached { .. } => 27,
        Event::PilotRecovered { .. } => 28,
    }
}

/// Sentinel for "no spawn seen yet" in the first-spawn stamp.
const NO_SPAWN: u64 = u64::MAX;

/// Shard count for the runtime sample vectors (power of two; completions
/// land in `seq % RUNTIME_SHARDS`, so concurrent workers rarely collide
/// on one lock).
const RUNTIME_SHARDS: usize = 8;

/// Thread-safe aggregating sink. Attach it to a bus and read
/// [`MetricsRegistry::snapshot`] during or after the run.
///
/// `record` is on the engine's per-task hot path (several events per
/// task, from every worker thread), so all counters and gauges are
/// plain atomics; the launch rate keeps only the spawn count and the
/// first/last spawn stamps (all [`rate_over`] ever looked at) instead
/// of the full stamp vector. The only locks guard the runtime sample
/// shards, one taken per completed task (sharded by `seq` to keep
/// concurrent completions off each other's lock).
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: [AtomicU64; KINDS.len()],
    queue_depth: AtomicUsize,
    slot_busy: AtomicUsize,
    slot_total: AtomicUsize,
    collector_backlog: AtomicUsize,
    collector_backlog_peak: AtomicUsize,
    spawn_count: AtomicU64,
    spawn_first_ns: AtomicU64,
    spawn_last_ns: AtomicU64,
    ok: AtomicU64,
    failed: AtomicU64,
    retries: AtomicU64,
    launched_tasks: AtomicU64,
    nodes_down: AtomicU64,
    requeued_tasks: AtomicU64,
    /// Final-attempt runtimes of completed tasks, microseconds, sharded
    /// by `seq` so concurrent completions rarely share a lock.
    runtimes_us: [Mutex<Vec<u64>>; RUNTIME_SHARDS],
    /// In-parent launch costs from the process spawner, microseconds,
    /// sharded like `runtimes_us`.
    spawn_latency_us: [Mutex<Vec<u64>>; RUNTIME_SHARDS],
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            queue_depth: AtomicUsize::new(0),
            slot_busy: AtomicUsize::new(0),
            slot_total: AtomicUsize::new(0),
            collector_backlog: AtomicUsize::new(0),
            collector_backlog_peak: AtomicUsize::new(0),
            spawn_count: AtomicU64::new(0),
            spawn_first_ns: AtomicU64::new(NO_SPAWN),
            spawn_last_ns: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            launched_tasks: AtomicU64::new(0),
            nodes_down: AtomicU64::new(0),
            requeued_tasks: AtomicU64::new(0),
            runtimes_us: std::array::from_fn(|_| Mutex::new(Vec::new())),
            spawn_latency_us: std::array::from_fn(|_| Mutex::new(Vec::new())),
        }
    }
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    pub fn shared() -> std::sync::Arc<MetricsRegistry> {
        std::sync::Arc::new(MetricsRegistry::new())
    }

    /// Count of events of one kind seen so far.
    pub fn counter(&self, kind: &str) -> u64 {
        KINDS
            .iter()
            .position(|k| *k == kind)
            .map(|i| self.counters[i].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Sustained launch rate: `spawned`-events-minus-one over the
    /// first→last spawn span — the same definition as
    /// `RateMeter::rate_per_sec`, so the two agree when fed the same
    /// launches. `None` with fewer than 2 spawns or zero span.
    pub fn launch_rate_sustained(&self) -> Option<f64> {
        rate_over(
            self.spawn_count.load(Ordering::Relaxed),
            self.spawn_first_ns.load(Ordering::Relaxed),
            self.spawn_last_ns.load(Ordering::Relaxed),
        )
    }

    /// Launches per second of bus lifetime (count over last stamp).
    pub fn launch_rate_overall(&self) -> Option<f64> {
        let count = self.spawn_count.load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        let last = self.spawn_last_ns.load(Ordering::Relaxed) as f64 / 1e9;
        if last <= 0.0 {
            return None;
        }
        Some(count as f64 / last)
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: KINDS
                .iter()
                .zip(self.counters.iter())
                .filter_map(|(k, v)| {
                    let v = v.load(Ordering::Relaxed);
                    (v > 0).then(|| (k.to_string(), v))
                })
                .collect(),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            slot_occupancy: (
                self.slot_busy.load(Ordering::Relaxed),
                self.slot_total.load(Ordering::Relaxed),
            ),
            collector_backlog: self.collector_backlog.load(Ordering::Relaxed),
            collector_backlog_peak: self.collector_backlog_peak.load(Ordering::Relaxed),
            runtime: {
                let mut samples = Vec::new();
                for shard in &self.runtimes_us {
                    samples.extend_from_slice(&shard.lock().expect("metrics poisoned"));
                }
                HistogramSummary::from_samples(&samples)
            },
            spawn_latency: {
                let mut samples = Vec::new();
                for shard in &self.spawn_latency_us {
                    samples.extend_from_slice(&shard.lock().expect("metrics poisoned"));
                }
                HistogramSummary::from_samples(&samples)
            },
            launch_rate: self.launch_rate_sustained(),
            ok: self.ok.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            launched_tasks: self.launched_tasks.load(Ordering::Relaxed),
            nodes_down: self.nodes_down.load(Ordering::Relaxed),
            requeued_tasks: self.requeued_tasks.load(Ordering::Relaxed),
        }
    }
}

fn rate_over(count: u64, first_ns: u64, last_ns: u64) -> Option<f64> {
    if count < 2 || first_ns == NO_SPAWN {
        return None;
    }
    let span = last_ns.saturating_sub(first_ns) as f64 / 1e9;
    if span <= 0.0 {
        return None;
    }
    Some((count - 1) as f64 / span)
}

impl Sink for MetricsRegistry {
    fn record(&self, at: Duration, event: &Event) {
        self.counters[kind_slot(event)].fetch_add(1, Ordering::Relaxed);
        match event {
            Event::Spawned { .. } => {
                let ns = at.as_nanos() as u64;
                self.spawn_count.fetch_add(1, Ordering::Relaxed);
                self.spawn_first_ns.fetch_min(ns, Ordering::Relaxed);
                self.spawn_last_ns.fetch_max(ns, Ordering::Relaxed);
            }
            Event::ShellBypass { seq, latency_us } | Event::ShFallback { seq, latency_us } => {
                self.spawn_latency_us[*seq as usize % RUNTIME_SHARDS]
                    .lock()
                    .expect("metrics poisoned")
                    .push(*latency_us);
            }
            Event::Completed { seq, exit, runtime } => {
                self.runtimes_us[*seq as usize % RUNTIME_SHARDS]
                    .lock()
                    .expect("metrics poisoned")
                    .push(runtime.as_micros() as u64);
                if *exit == 0 {
                    self.ok.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            Event::Failed { .. } => {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
            Event::Retried { .. } => {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            Event::QueueDepth { depth } => self.queue_depth.store(*depth, Ordering::Relaxed),
            Event::SlotOccupancy { busy, total } => {
                self.slot_busy.store(*busy, Ordering::Relaxed);
                self.slot_total.store(*total, Ordering::Relaxed);
            }
            Event::CollectorBacklog { pending } => {
                self.collector_backlog.store(*pending, Ordering::Relaxed);
                self.collector_backlog_peak
                    .fetch_max(*pending, Ordering::Relaxed);
            }
            Event::Launch { tasks, .. } => {
                self.launched_tasks.fetch_add(*tasks, Ordering::Relaxed);
            }
            Event::NodeDown { .. } => {
                self.nodes_down.fetch_add(1, Ordering::Relaxed);
            }
            Event::ShardRequeued { tasks, .. } => {
                self.requeued_tasks.fetch_add(*tasks, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LaunchMethod;

    fn feed(reg: &MetricsRegistry, at_us: u64, event: Event) {
        reg.record(Duration::from_micros(at_us), &event);
    }

    #[test]
    fn counters_and_tallies() {
        let reg = MetricsRegistry::new();
        feed(&reg, 0, Event::Queued { seq: 1 });
        feed(&reg, 1, Event::Spawned { seq: 1, slot: 1 });
        feed(
            &reg,
            2,
            Event::Completed {
                seq: 1,
                exit: 0,
                runtime: Duration::from_millis(3),
            },
        );
        feed(&reg, 3, Event::Queued { seq: 2 });
        feed(&reg, 4, Event::Spawned { seq: 2, slot: 2 });
        feed(&reg, 5, Event::Retried { seq: 2, attempt: 1 });
        feed(
            &reg,
            6,
            Event::Completed {
                seq: 2,
                exit: 1,
                runtime: Duration::from_millis(9),
            },
        );
        let snap = reg.snapshot();
        assert_eq!(snap.counters["queued"], 2);
        assert_eq!(snap.counters["spawned"], 2);
        assert_eq!(snap.ok, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.retries, 1);
        assert_eq!(reg.counter("completed"), 2);
        assert_eq!(reg.counter("nonexistent"), 0);
    }

    #[test]
    fn gauges_track_latest_value() {
        let reg = MetricsRegistry::new();
        feed(&reg, 0, Event::QueueDepth { depth: 5 });
        feed(&reg, 1, Event::QueueDepth { depth: 2 });
        feed(&reg, 2, Event::SlotOccupancy { busy: 3, total: 8 });
        feed(&reg, 3, Event::CollectorBacklog { pending: 7 });
        feed(&reg, 4, Event::CollectorBacklog { pending: 1 });
        let snap = reg.snapshot();
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.slot_occupancy, (3, 8));
        assert_eq!(snap.collector_backlog, 1, "gauge tracks latest");
        assert_eq!(
            snap.collector_backlog_peak, 7,
            "peak is the high-water mark"
        );
    }

    #[test]
    fn histogram_quantiles_nearest_rank() {
        let reg = MetricsRegistry::new();
        for ms in 1..=100u64 {
            feed(
                &reg,
                ms,
                Event::Completed {
                    seq: ms,
                    exit: 0,
                    runtime: Duration::from_micros(ms),
                },
            );
        }
        let h = reg.snapshot().runtime;
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert_eq!(h.p50, 50);
        assert_eq!(h.p95, 95);
        assert_eq!(h.p99, 99);
        assert!((h.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn launch_rate_matches_rate_meter_definition() {
        let reg = MetricsRegistry::new();
        // 11 spawns, 10 ms apart: sustained rate = 10 / 0.1 s = 100/s.
        for i in 0..11u64 {
            feed(&reg, i * 10_000, Event::Spawned { seq: i, slot: 1 });
        }
        let rate = reg.launch_rate_sustained().unwrap();
        assert!((rate - 100.0).abs() < 1e-6, "rate {rate}");
        let overall = reg.launch_rate_overall().unwrap();
        assert!((overall - 110.0).abs() < 1e-6, "overall {overall}");
    }

    #[test]
    fn launch_waves_accumulate() {
        let reg = MetricsRegistry::new();
        feed(
            &reg,
            0,
            Event::Launch {
                method: LaunchMethod::Srun,
                tasks: 100,
            },
        );
        feed(
            &reg,
            1,
            Event::Launch {
                method: LaunchMethod::Parallel,
                tasks: 900,
            },
        );
        assert_eq!(reg.snapshot().launched_tasks, 1000);
    }

    #[test]
    fn fault_counters_accumulate() {
        let reg = MetricsRegistry::new();
        feed(
            &reg,
            0,
            Event::NodeDown {
                node: 2,
                sim_time: 4.0,
            },
        );
        feed(
            &reg,
            1,
            Event::ShardRequeued {
                from_node: 2,
                to_node: 0,
                tasks: 40,
            },
        );
        feed(
            &reg,
            2,
            Event::ShardRequeued {
                from_node: 2,
                to_node: 1,
                tasks: 24,
            },
        );
        let snap = reg.snapshot();
        assert_eq!(snap.nodes_down, 1);
        assert_eq!(snap.requeued_tasks, 64);
        assert_eq!(snap.counters["node_down"], 1);
        assert_eq!(snap.counters["shard_requeued"], 2);
    }

    #[test]
    fn net_events_count_by_kind() {
        let reg = MetricsRegistry::new();
        feed(
            &reg,
            0,
            Event::AgentConnected {
                agent: 0,
                slots: 16,
            },
        );
        feed(
            &reg,
            1,
            Event::ShardSent {
                agent: 0,
                tasks: 2500,
            },
        );
        feed(
            &reg,
            2,
            Event::ShardSent {
                agent: 1,
                tasks: 2500,
            },
        );
        feed(
            &reg,
            3,
            Event::AgentLost {
                agent: 1,
                outstanding: 7,
            },
        );
        feed(
            &reg,
            4,
            Event::FrameBytes {
                agent: 0,
                sent: 100,
                received: 200,
            },
        );
        let snap = reg.snapshot();
        assert_eq!(snap.counters["agent_connected"], 1);
        assert_eq!(snap.counters["shard_sent"], 2);
        assert_eq!(snap.counters["agent_lost"], 1);
        assert_eq!(snap.counters["frame_bytes"], 1);
    }

    #[test]
    fn spawn_path_counters_and_latency_histogram() {
        let reg = MetricsRegistry::new();
        for seq in 0..10u64 {
            feed(
                &reg,
                seq,
                Event::ShellBypass {
                    seq,
                    latency_us: 100 + seq,
                },
            );
        }
        feed(
            &reg,
            10,
            Event::ShFallback {
                seq: 10,
                latency_us: 400,
            },
        );
        let snap = reg.snapshot();
        assert_eq!(snap.counters["shell_bypass"], 10);
        assert_eq!(snap.counters["sh_fallback"], 1);
        assert_eq!(snap.spawn_latency.count, 11);
        assert_eq!(snap.spawn_latency.min, 100);
        assert_eq!(snap.spawn_latency.max, 400);
        assert_eq!(reg.counter("shell_bypass"), 10);
    }

    #[test]
    fn empty_registry_snapshot() {
        let snap = MetricsRegistry::new().snapshot();
        assert_eq!(snap.runtime.count, 0);
        assert_eq!(snap.launch_rate, None);
        assert!(snap.counters.is_empty());
    }
}
