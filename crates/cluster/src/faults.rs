//! Fault injection and the failure-resilient driver.
//!
//! The paper's answer to "what happens when a node dies at 9,000-node
//! scale?" is not a WMS fault-tolerance layer: the driver script shards
//! the work list by `NR % NNODE` (listing 1) and GNU Parallel's
//! `--joblog`/`--resume` skips whatever is already logged. This module
//! makes that claim testable: a seeded [`FaultPlan`] injects node
//! crashes, stragglers, and NVMe write failures as discrete events into
//! the weak-scaling run, and a driver layer recovers by re-sharding a
//! dead node's unfinished lines across the survivors — skipping
//! already-logged seqs via [`htpar_core::joblog::completed_seqs`], the
//! same machinery the real `--resume` path uses.
//!
//! Model notes:
//!
//! - The joblog lives on the shared filesystem, so rows written by a
//!   node before it crashed survive the crash; tasks that were in
//!   flight (or never dispatched) on the dead node are the ones
//!   requeued. Exactly-once is verified against the joblog.
//! - An NVMe write failure does not kill the node: the affected task
//!   fails its stdout write and is retried in place (one
//!   [`Event::Retried`], roughly doubled cost), which preserves the
//!   single joblog row per seq.
//! - A straggler node runs every task `slowdown`× slower — the
//!   graceful-degradation case where nothing needs requeueing.
//!
//! The run reports recovery overhead as extra makespan over the
//! same-seed no-fault baseline, which `htpar_wms::compare` contrasts
//! with a simulated WMS that restarts per task through scheduler
//! round-trips.

use std::collections::HashSet;
use std::rc::Rc;
use std::sync::Arc;

use htpar_core::joblog::{completed_seqs, LogEntry};
use htpar_simkit::{stream_rng, Dist, SimTime, Simulation};
use htpar_telemetry::{Event, EventBus, LaunchMethod};
use rand::Rng;

use crate::slurm::driver_shard;
use crate::weak_scaling::{sample_node_plan, WeakScalingConfig};

/// Salt separating fault-plan draws from the workload's own streams.
const FAULT_STREAM_SALT: u64 = 0xFA17_0000_0000_0001;
/// Salt for re-sampling the cost of a requeued task on its new node.
const RECOVERY_STREAM_SALT: u64 = 0xFA17_0000_0000_0002;

/// Fault-injection rates for one run. All probabilities are per node.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability a node crashes at a uniform time within the run.
    pub crash_rate: f64,
    /// Probability a node is a straggler (all tasks slowed down).
    pub straggler_rate: f64,
    /// Worst-case straggler slowdown factor (sampled in `1..=this`).
    pub straggler_slowdown: f64,
    /// Probability a node suffers one NVMe write failure mid-run.
    pub nvme_fault_rate: f64,
    /// Driver-side delay between a crash and the requeue of its shard
    /// (missing-heartbeat detection window), seconds.
    pub detect_delay_secs: f64,
    pub seed: u64,
}

impl FaultConfig {
    /// No faults at all — the control arm of a campaign.
    pub fn none(seed: u64) -> FaultConfig {
        FaultConfig {
            crash_rate: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: 1.0,
            nvme_fault_rate: 0.0,
            detect_delay_secs: 5.0,
            seed,
        }
    }

    /// A plausibly hostile campaign setting: node loss is rare on real
    /// machines but must be common in a small simulated fleet for the
    /// recovery path to be exercised every run.
    pub fn calibrated(seed: u64) -> FaultConfig {
        FaultConfig {
            crash_rate: 0.15,
            straggler_rate: 0.08,
            straggler_slowdown: 3.0,
            nvme_fault_rate: 0.05,
            detect_delay_secs: 5.0,
            seed,
        }
    }
}

/// The concrete faults of one run, sampled up front so injection is
/// deterministic per `(seed, node)` and independent of event order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// `(node, crash time secs)`.
    pub crashes: Vec<(u32, f64)>,
    /// `(node, slowdown factor ≥ 1)`.
    pub stragglers: Vec<(u32, f64)>,
    /// `(node, NVMe write-failure time secs)`.
    pub nvme_faults: Vec<(u32, f64)>,
}

impl FaultPlan {
    /// Sample a plan for `nodes` nodes. Fault times are uniform over
    /// `[0, horizon_secs)` (use the no-fault makespan as the horizon).
    /// At least one node is guaranteed to survive: if every node drew a
    /// crash, the latest-crashing one is spared so the driver always
    /// has somewhere to requeue.
    pub fn sample(faults: &FaultConfig, nodes: u32, horizon_secs: f64) -> FaultPlan {
        let mut plan = FaultPlan::default();
        for node in 0..nodes {
            let mut rng = stream_rng(faults.seed ^ FAULT_STREAM_SALT, node as u64);
            // Draw every value unconditionally so plans with different
            // rates share fault times for the nodes they both afflict.
            let (crash_p, crash_t) = (rng.gen::<f64>(), rng.gen::<f64>() * horizon_secs);
            let (straggle_p, straggle_x) = (rng.gen::<f64>(), rng.gen::<f64>());
            let (nvme_p, nvme_t) = (rng.gen::<f64>(), rng.gen::<f64>() * horizon_secs);
            if crash_p < faults.crash_rate {
                plan.crashes.push((node, crash_t));
            }
            if straggle_p < faults.straggler_rate {
                let factor = 1.0 + straggle_x * (faults.straggler_slowdown - 1.0).max(0.0);
                plan.stragglers.push((node, factor));
            }
            if nvme_p < faults.nvme_fault_rate {
                plan.nvme_faults.push((node, nvme_t));
            }
        }
        if plan.crashes.len() == nodes as usize && nodes > 0 {
            let spare = plan
                .crashes
                .iter()
                .enumerate()
                .max_by(|(_, (_, a)), (_, (_, b))| a.total_cmp(b))
                .map(|(i, _)| i)
                .expect("nonempty");
            plan.crashes.remove(spare);
        }
        plan
    }

    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.stragglers.is_empty() && self.nvme_faults.is_empty()
    }
}

/// Result of one fault-injected weak-scaling run.
#[derive(Debug, Clone)]
pub struct FaultRunResult {
    pub nodes: u32,
    pub tasks_total: u64,
    /// Latest node end (task or copy-back) of the faulty run, seconds.
    pub makespan_secs: f64,
    /// Makespan of the same-seed run with no faults injected.
    pub baseline_makespan_secs: f64,
    /// Completion time of every task (original or requeued), seconds.
    pub task_completion_secs: Vec<f64>,
    /// Nodes lost to injected crashes, in crash order.
    pub nodes_failed: Vec<u32>,
    /// Tasks re-sharded onto survivors by the driver.
    pub tasks_requeued: u64,
    /// The run's joblog — one row per completed seq, the ground truth
    /// the exactly-once invariant is checked against.
    pub joblog: Vec<LogEntry>,
}

impl FaultRunResult {
    /// Extra makespan paid for the injected faults (can be slightly
    /// negative when a slow outlier node crashes early and its shard
    /// finishes faster on the survivors).
    pub fn recovery_overhead_secs(&self) -> f64 {
        self.makespan_secs - self.baseline_makespan_secs
    }

    /// The deterministic recovery invariant: every seq in
    /// `1..=tasks_total` has exactly one successful joblog row.
    pub fn verify_exactly_once(&self) -> std::result::Result<(), String> {
        if self.joblog.len() as u64 != self.tasks_total {
            return Err(format!(
                "joblog has {} rows for {} tasks",
                self.joblog.len(),
                self.tasks_total
            ));
        }
        let done = completed_seqs(&self.joblog);
        if done.len() as u64 != self.tasks_total {
            return Err(format!(
                "joblog covers {} distinct seqs of {}",
                done.len(),
                self.tasks_total
            ));
        }
        for entry in &self.joblog {
            if entry.seq < 1 || entry.seq > self.tasks_total {
                return Err(format!("seq {} out of range", entry.seq));
            }
            if !entry.succeeded() {
                return Err(format!("seq {} logged as failed", entry.seq));
            }
        }
        Ok(())
    }
}

/// Per-node driver state inside the simulation world.
struct NodeState {
    /// Seqs this node is responsible for (listing-1 shard, plus any
    /// slices requeued from dead nodes, in arrival order).
    shard: Vec<u64>,
    /// Task cost parallel to `shard`.
    costs: Vec<f64>,
    /// Next `shard` index the serial dispatcher will hand out.
    next: usize,
    busy: u32,
    jobs: u32,
    completed: u32,
    alive: bool,
    started: bool,
    /// A dispatch-chain hop is pending.
    dispatching: bool,
    /// The dispatcher is parked waiting for a free slot.
    stalled: bool,
    slowdown: f64,
    /// The next dispatched task pays an NVMe write-retry penalty.
    nvme_pending: bool,
    crash_at: Option<f64>,
    /// Events to cancel if this node crashes (start, completions, and
    /// dispatch hops; ids of already-fired events are harmless).
    pending: Vec<htpar_simkit::EventId>,
    inflight: Vec<u64>,
    last_done: f64,
    copy: f64,
}

#[derive(Default)]
struct FaultWorld {
    nodes: Vec<NodeState>,
    log: Vec<LogEntry>,
    /// Seqs with a joblog row, maintained incrementally so the recovery
    /// driver's `--resume` diff is O(shard) instead of re-deriving the
    /// skip set from the whole log at every crash (which is quadratic
    /// at the 9,408-node scale). Kept equal to
    /// [`completed_seqs`]`(&log)` — asserted in debug builds.
    done: HashSet<u64>,
    task_completion_secs: Vec<f64>,
    nodes_failed: Vec<u32>,
    tasks_requeued: u64,
}

impl Default for NodeState {
    fn default() -> NodeState {
        NodeState {
            shard: Vec::new(),
            costs: Vec::new(),
            next: 0,
            busy: 0,
            jobs: 1,
            completed: 0,
            alive: true,
            started: false,
            dispatching: false,
            stalled: false,
            slowdown: 1.0,
            nvme_pending: false,
            crash_at: None,
            pending: Vec::new(),
            inflight: Vec::new(),
            last_done: 0.0,
            copy: 0.0,
        }
    }
}

/// Shared scalars every handler needs. Handlers capture an [`Rc`] to
/// this (one pointer), which keeps every hot-path closure small enough
/// for the event queue's inline handler storage — no per-event
/// allocation on the dispatch/complete/crash paths.
struct Ctx {
    dispatch_gap: f64,
    task_runtime: Dist,
    /// Per-task stdout write cost on the new node (NVMe path).
    write_secs: f64,
    recovery_seed: u64,
    bus: Option<Arc<EventBus>>,
}

impl Ctx {
    fn emit(&self, event: Event) {
        if let Some(bus) = &self.bus {
            bus.emit(event);
        }
    }

    /// Cost of re-running `seq` on a surviving node, deterministic per
    /// `(seed, seq)` no matter which survivor picks it up.
    fn recovery_cost(&self, seq: u64) -> f64 {
        let mut rng = stream_rng(self.recovery_seed, seq);
        self.task_runtime.sample(&mut rng) + self.write_secs
    }
}

/// [`run_resilient`] with an optional telemetry bus: crashes emit
/// [`Event::NodeDown`], every requeued slice emits
/// [`Event::ShardRequeued`], NVMe retries emit [`Event::Retried`], and
/// node startups emit [`Event::NodeUp`]/[`Event::Launch`] as in
/// [`crate::des`]. Observation only — results are identical with and
/// without a bus.
pub fn run_resilient_observed(
    config: &WeakScalingConfig,
    faults: &FaultConfig,
    bus: Option<Arc<EventBus>>,
) -> FaultRunResult {
    let baseline = crate::weak_scaling::run(config);
    let plan = FaultPlan::sample(faults, config.nodes, baseline.makespan_secs);
    run_with_plan_observed(
        config,
        &plan,
        faults.detect_delay_secs,
        faults.seed,
        baseline.makespan_secs,
        bus,
    )
}

/// Run the weak-scaling workload under a sampled [`FaultPlan`] with the
/// listing-1 + `--joblog --resume` recovery driver on top.
pub fn run_resilient(config: &WeakScalingConfig, faults: &FaultConfig) -> FaultRunResult {
    run_resilient_observed(config, faults, None)
}

/// [`run_resilient`] against an explicit, hand-built [`FaultPlan`] —
/// the deterministic entry point for tests and comparisons that need a
/// specific failure (e.g. "node 1 dies at t=30 s").
pub fn run_with_plan(
    config: &WeakScalingConfig,
    plan: &FaultPlan,
    detect_delay_secs: f64,
) -> FaultRunResult {
    let baseline = crate::weak_scaling::run(config);
    run_with_plan_observed(
        config,
        plan,
        detect_delay_secs,
        config.seed,
        baseline.makespan_secs,
        None,
    )
}

fn run_with_plan_observed(
    config: &WeakScalingConfig,
    plan: &FaultPlan,
    detect_delay_secs: f64,
    fault_seed: u64,
    baseline_makespan_secs: f64,
    bus: Option<Arc<EventBus>>,
) -> FaultRunResult {
    assert!(config.nodes >= 1, "need at least one node");
    assert!(config.tasks_per_node >= 1 && config.jobs_per_node >= 1);
    let tasks_total = config.nodes as u64 * config.tasks_per_node as u64;
    let ctx = Rc::new(Ctx {
        dispatch_gap: 1.0 / config.machine.launch.instance_rate(),
        task_runtime: config.task_runtime.clone(),
        write_secs: config
            .machine
            .nvme
            .write_files_secs(1, config.stdout_bytes_per_task as f64),
        recovery_seed: fault_seed ^ RECOVERY_STREAM_SALT,
        bus,
    });

    // Peak pending events: per node one dispatch hop plus up to `jobs`
    // completions in flight, plus the not-yet-fired fault injections.
    let jobs_per_node = config.jobs_per_node.min(config.tasks_per_node) as usize;
    let peak_events =
        config.nodes as usize * (jobs_per_node + 2) + plan.crashes.len() + plan.nvme_faults.len();
    let world = FaultWorld {
        nodes: Vec::with_capacity(config.nodes as usize),
        log: Vec::with_capacity(tasks_total as usize),
        done: HashSet::with_capacity(tasks_total as usize),
        task_completion_secs: Vec::with_capacity(tasks_total as usize),
        ..FaultWorld::default()
    };
    let mut sim = Simulation::with_capacity(world, config.seed, peak_events);
    if let Some(bus) = &ctx.bus {
        sim.set_telemetry(Arc::clone(bus));
    }

    // The global work list is seqs 1..=tasks_total, sharded across nodes
    // exactly as the paper's awk driver does it (listing 1).
    let lines: Vec<u64> = (1..=tasks_total).collect();
    let shards = driver_shard(&lines, config.nodes);
    let crashes: std::collections::HashMap<u32, f64> = plan.crashes.iter().copied().collect();
    let stragglers: std::collections::HashMap<u32, f64> = plan.stragglers.iter().copied().collect();

    let mut starts = Vec::with_capacity(config.nodes as usize);
    let mut crash_events = Vec::with_capacity(plan.crashes.len());
    for (node, shard) in shards.into_iter().enumerate() {
        let plan_node = sample_node_plan(config, node as u32);
        // The shard and the plan's per-task costs are both
        // `tasks_per_node` long when the work list divides evenly; pad
        // with recovery-stream samples otherwise.
        let costs: Vec<f64> = shard
            .iter()
            .enumerate()
            .map(|(i, &seq)| {
                plan_node
                    .task_costs
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| ctx.recovery_cost(seq))
            })
            .collect();
        let state = NodeState {
            shard,
            costs,
            jobs: config.jobs_per_node.min(config.tasks_per_node),
            slowdown: stragglers.get(&(node as u32)).copied().unwrap_or(1.0),
            crash_at: crashes.get(&(node as u32)).copied(),
            copy: plan_node.copy,
            ..NodeState::default()
        };
        sim.world_mut().nodes.push(state);

        let start_ctx = Rc::clone(&ctx);
        starts.push((
            SimTime::from_secs_f64(plan_node.start),
            move |sim: &mut Simulation<FaultWorld>| node_start(sim, &start_ctx, node),
        ));

        if let Some(&crash_t) = crashes.get(&(node as u32)) {
            let crash_ctx = Rc::clone(&ctx);
            crash_events.push((
                SimTime::from_secs_f64(crash_t),
                move |sim: &mut Simulation<FaultWorld>| {
                    node_crash(sim, &crash_ctx, node, detect_delay_secs)
                },
            ));
        }
    }
    let start_ids = sim.schedule_batch(starts);
    for (node, id) in start_ids.into_iter().enumerate() {
        sim.world_mut().nodes[node].pending.push(id);
    }
    sim.schedule_batch(crash_events);
    sim.schedule_batch(plan.nvme_faults.iter().map(|&(node, t)| {
        (
            SimTime::from_secs_f64(t),
            move |sim: &mut Simulation<FaultWorld>| {
                if let Some(st) = sim.world_mut().nodes.get_mut(node as usize) {
                    if st.alive {
                        st.nvme_pending = true;
                    }
                }
            },
        )
    }));

    sim.run();
    let world = sim.into_world();

    let mut makespan_secs = 0.0f64;
    for st in &world.nodes {
        if st.completed == 0 {
            continue;
        }
        // A dead node's copy-back only counts if the crash came after it.
        let full = st.last_done + st.copy;
        let end = match st.crash_at {
            Some(t) if !st.alive && t < full => st.last_done,
            _ => full,
        };
        makespan_secs = makespan_secs.max(end);
    }
    let mut task_completion_secs = world.task_completion_secs;
    task_completion_secs.sort_by(f64::total_cmp);

    FaultRunResult {
        nodes: config.nodes,
        tasks_total,
        makespan_secs,
        baseline_makespan_secs,
        task_completion_secs,
        nodes_failed: world.nodes_failed,
        tasks_requeued: world.tasks_requeued,
        joblog: world.log,
    }
}

fn node_start(sim: &mut Simulation<FaultWorld>, ctx: &Rc<Ctx>, node: usize) {
    let tasks = {
        let st = &mut sim.world_mut().nodes[node];
        if !st.alive {
            return;
        }
        st.started = true;
        st.dispatching = true;
        st.shard.len() as u64
    };
    ctx.emit(Event::NodeUp { node: node as u32 });
    ctx.emit(Event::Launch {
        method: LaunchMethod::Parallel,
        tasks,
    });
    dispatch(sim, ctx, node);
}

/// One hop of the node's serial dispatcher: take the next shard line if
/// a slot is free, schedule its completion, and schedule the next hop
/// one dispatch gap later (GNU Parallel's single-instance launch rate).
fn dispatch(sim: &mut Simulation<FaultWorld>, ctx: &Rc<Ctx>, node: usize) {
    let now = sim.now().as_secs_f64();
    let (seq, cost, retried) = {
        let st = &mut sim.world_mut().nodes[node];
        if !st.alive || !st.started {
            st.dispatching = false;
            return;
        }
        if st.next >= st.shard.len() {
            st.dispatching = false;
            return;
        }
        if st.busy >= st.jobs {
            st.dispatching = false;
            st.stalled = true;
            return;
        }
        let i = st.next;
        st.next += 1;
        let seq = st.shard[i];
        let mut cost = st.costs[i] * st.slowdown;
        let retried = st.nvme_pending;
        if retried {
            // The stdout write failed; the task reruns in place before
            // its (single) joblog row is written.
            st.nvme_pending = false;
            cost *= 2.0;
        }
        st.busy += 1;
        st.inflight.push(seq);
        st.dispatching = true;
        (seq, cost, retried)
    };
    if retried {
        ctx.emit(Event::Retried { seq, attempt: 1 });
    }
    let completion_id = {
        let ctx2 = Rc::clone(ctx);
        sim.schedule_in(SimTime::from_secs_f64(cost), move |sim| {
            complete(sim, &ctx2, node, seq, now, cost)
        })
    };
    let hop_id = {
        let ctx2 = Rc::clone(ctx);
        sim.schedule_in(SimTime::from_secs_f64(ctx.dispatch_gap), move |sim| {
            dispatch(sim, &ctx2, node)
        })
    };
    let st = &mut sim.world_mut().nodes[node];
    st.pending.push(completion_id);
    st.pending.push(hop_id);
}

fn complete(
    sim: &mut Simulation<FaultWorld>,
    ctx: &Rc<Ctx>,
    node: usize,
    seq: u64,
    launched_at: f64,
    cost: f64,
) {
    let now = sim.now().as_secs_f64();
    let resume_dispatch = {
        let world = sim.world_mut();
        let st = &mut world.nodes[node];
        if !st.alive {
            return; // crash cancelled us; belt and braces
        }
        st.busy -= 1;
        st.completed += 1;
        st.inflight.retain(|&s| s != seq);
        st.last_done = st.last_done.max(now);
        let resume = st.stalled;
        if resume {
            st.stalled = false;
            st.dispatching = true;
        }
        world.done.insert(seq);
        world.log.push(LogEntry {
            seq,
            host: format!("node{node}"),
            start: launched_at,
            runtime: cost,
            send: 0,
            receive: 0,
            exitval: 0,
            signal: 0,
            command: format!("task {seq}"),
        });
        world.task_completion_secs.push(now);
        resume
    };
    if resume_dispatch {
        dispatch(sim, ctx, node);
    }
}

fn node_crash(
    sim: &mut Simulation<FaultWorld>,
    ctx: &Rc<Ctx>,
    node: usize,
    detect_delay_secs: f64,
) {
    let now = sim.now().as_secs_f64();
    let (pending, anything_lost) = {
        let world = sim.world_mut();
        let st = &mut world.nodes[node];
        st.alive = false;
        let lost = st.next < st.shard.len() || !st.inflight.is_empty();
        st.busy = 0;
        st.inflight.clear();
        st.stalled = false;
        st.dispatching = false;
        world.nodes_failed.push(node as u32);
        (std::mem::take(&mut st.pending), lost)
    };
    ctx.emit(Event::NodeDown {
        node: node as u32,
        sim_time: now,
    });
    // Everything in flight on the node dies with it: queued dispatch
    // hops, running tasks' completions, even the startup if the crash
    // beat the allocation ramp.
    sim.cancel_many(pending);
    if anything_lost {
        let ctx = Rc::clone(ctx);
        sim.schedule_in(SimTime::from_secs_f64(detect_delay_secs), move |sim| {
            requeue(sim, &ctx, node)
        });
    }
}

/// The recovery driver: once the crash is detected, diff the dead
/// node's shard against the joblog (the `--resume` skip set) and
/// re-shard the unfinished lines across the survivors with the same
/// listing-1 modulo split.
fn requeue(sim: &mut Simulation<FaultWorld>, ctx: &Rc<Ctx>, from: usize) {
    let kicks: Vec<usize> = {
        let world = sim.world_mut();
        // `world.done` is the incrementally maintained form of the
        // `--resume` skip set the real driver derives from the joblog.
        debug_assert_eq!(world.done, completed_seqs(&world.log));
        let lost: Vec<u64> = world.nodes[from]
            .shard
            .iter()
            .copied()
            .filter(|seq| !world.done.contains(seq))
            .collect();
        if lost.is_empty() {
            return;
        }
        let survivors: Vec<usize> = world
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, st)| st.alive)
            .map(|(i, _)| i)
            .collect();
        assert!(
            !survivors.is_empty(),
            "fault plans guarantee at least one survivor"
        );
        let slices = driver_shard(&lost, survivors.len() as u32);
        let mut kicks = Vec::new();
        for (k, slice) in slices.iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            let to = survivors[k];
            ctx.emit(Event::ShardRequeued {
                from_node: from as u32,
                to_node: to as u32,
                tasks: slice.len() as u64,
            });
            world.tasks_requeued += slice.len() as u64;
            let st = &mut world.nodes[to];
            for &seq in slice {
                st.shard.push(seq);
                st.costs.push(ctx.recovery_cost(seq));
            }
            // Nodes whose dispatcher already drained need a restart;
            // stalled or still-running dispatchers pick the new lines up
            // on their own, and unstarted nodes dispatch at node_start.
            if st.started && !st.dispatching && !st.stalled {
                st.dispatching = true;
                kicks.push(to);
            }
        }
        kicks
    };
    for node in kicks {
        dispatch(sim, ctx, node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htpar_telemetry::Recorder;

    /// A small, fast configuration: 8 nodes × 16 tasks.
    fn small_config(seed: u64) -> WeakScalingConfig {
        let mut config = WeakScalingConfig::frontier(8, seed);
        config.tasks_per_node = 16;
        config.jobs_per_node = 16;
        config
    }

    #[test]
    fn no_faults_tracks_the_analytic_baseline() {
        let config = small_config(11);
        let r = run_resilient(&config, &FaultConfig::none(11));
        r.verify_exactly_once().unwrap();
        assert!(r.nodes_failed.is_empty());
        assert_eq!(r.tasks_requeued, 0);
        // Same plans, same schedule semantics: overhead is only DES
        // microsecond quantization.
        assert!(
            r.recovery_overhead_secs().abs() < 0.01,
            "overhead {}",
            r.recovery_overhead_secs()
        );
    }

    #[test]
    fn mid_run_crash_requeues_and_completes_exactly_once() {
        let config = small_config(7);
        let baseline = crate::weak_scaling::run(&config);
        let plan = FaultPlan {
            crashes: vec![(1, baseline.makespan_secs * 0.3)],
            ..FaultPlan::default()
        };
        let r = run_with_plan(&config, &plan, 5.0);
        r.verify_exactly_once().unwrap();
        assert_eq!(r.nodes_failed, vec![1]);
        assert!(r.tasks_requeued > 0, "crash at 30% must strand work");
        assert!(r.makespan_secs.is_finite());
        // No row may claim the dead node after its crash.
        for entry in &r.joblog {
            if entry.host == "node1" {
                assert!(entry.start + entry.runtime <= baseline.makespan_secs * 0.3 + 1e-6);
            }
        }
    }

    #[test]
    fn crash_before_start_requeues_the_whole_shard() {
        let config = small_config(3);
        let plan = FaultPlan {
            crashes: vec![(2, 0.0)],
            ..FaultPlan::default()
        };
        let r = run_with_plan(&config, &plan, 5.0);
        r.verify_exactly_once().unwrap();
        assert_eq!(r.tasks_requeued, config.tasks_per_node as u64);
        assert!(r.joblog.iter().all(|e| e.host != "node2"));
    }

    #[test]
    fn straggler_slows_the_run_without_requeueing() {
        let config = small_config(5);
        let slow = run_with_plan(
            &config,
            &FaultPlan {
                stragglers: vec![(0, 50.0)],
                ..FaultPlan::default()
            },
            5.0,
        );
        slow.verify_exactly_once().unwrap();
        assert_eq!(slow.tasks_requeued, 0);
        assert!(
            slow.recovery_overhead_secs() > 0.0,
            "a 50x straggler must stretch the makespan: {}",
            slow.recovery_overhead_secs()
        );
    }

    #[test]
    fn nvme_fault_retries_in_place() {
        let config = small_config(9);
        let bus = EventBus::shared();
        let rec = Recorder::shared();
        bus.attach(rec.clone());
        let baseline = crate::weak_scaling::run(&config);
        let plan = FaultPlan {
            nvme_faults: vec![(0, baseline.makespan_secs * 0.2)],
            ..FaultPlan::default()
        };
        let r = run_with_plan_observed(
            &config,
            &plan,
            5.0,
            config.seed,
            baseline.makespan_secs,
            Some(Arc::clone(&bus)),
        );
        r.verify_exactly_once().unwrap();
        assert_eq!(r.tasks_requeued, 0);
        assert_eq!(rec.count_matching(|e| e.kind() == "retried"), 1);
    }

    #[test]
    fn telemetry_matches_result_and_does_not_perturb() {
        let config = small_config(13);
        let faults = FaultConfig {
            crash_rate: 0.4,
            ..FaultConfig::calibrated(13)
        };
        let bare = run_resilient(&config, &faults);
        let bus = EventBus::shared();
        let rec = Recorder::shared();
        bus.attach(rec.clone());
        let observed = run_resilient_observed(&config, &faults, Some(Arc::clone(&bus)));
        assert_eq!(bare.makespan_secs, observed.makespan_secs);
        assert_eq!(bare.task_completion_secs, observed.task_completion_secs);
        assert_eq!(bare.nodes_failed, observed.nodes_failed);
        assert!(!bare.nodes_failed.is_empty(), "0.4 crash rate on 8 nodes");

        let node_down = rec.count_matching(|e| e.kind() == "node_down");
        assert_eq!(node_down, bare.nodes_failed.len());
        let requeued: u64 = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::ShardRequeued { tasks, .. } => Some(*tasks),
                _ => None,
            })
            .sum();
        assert_eq!(requeued, bare.tasks_requeued);
    }

    #[test]
    fn resilient_run_is_deterministic() {
        let config = small_config(21);
        let faults = FaultConfig::calibrated(21);
        let a = run_resilient(&config, &faults);
        let b = run_resilient(&config, &faults);
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.task_completion_secs, b.task_completion_secs);
        assert_eq!(a.tasks_requeued, b.tasks_requeued);
    }

    #[test]
    fn every_node_crashing_still_leaves_a_survivor() {
        let config = small_config(31);
        let faults = FaultConfig {
            crash_rate: 1.0,
            ..FaultConfig::calibrated(31)
        };
        let r = run_resilient(&config, &faults);
        r.verify_exactly_once().unwrap();
        assert_eq!(r.nodes_failed.len() as u32, config.nodes - 1);
    }

    #[test]
    fn seeded_campaign_holds_the_exactly_once_invariant() {
        for seed in (0..6).map(|i| 2024 + i * 101) {
            let config = small_config(seed);
            let r = run_resilient(&config, &FaultConfig::calibrated(seed));
            r.verify_exactly_once()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(
                r.task_completion_secs.len() as u64,
                r.tasks_total,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn telemetry_event_counts_are_pinned_across_engine_swaps() {
        // Golden totals captured by running this exact workload on the
        // original binary-heap event queue (now `reference::HeapQueue`).
        // The calendar queue — and any future queue swap — must replay
        // the same seeds into the same fired/cancelled totals, or the
        // swap changed observable behavior, not just speed.
        let golden = [(13u64, 269u64, 2u64), (21, 271, 5), (2024, 269, 1)];
        for (seed, want_fired, want_cancelled) in golden {
            let config = small_config(seed);
            let faults = FaultConfig {
                crash_rate: 0.5,
                ..FaultConfig::calibrated(seed)
            };
            let bus = EventBus::shared();
            let rec = Recorder::shared();
            bus.attach(rec.clone());
            let r = run_resilient_observed(&config, &faults, Some(Arc::clone(&bus)));
            r.verify_exactly_once()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // `SimEventFired.count` is a running total, so the number of
            // fired events is the number of emissions; cancellations can
            // arrive aggregated, so those counts are summed.
            let fired = rec.count_matching(|e| e.kind() == "sim_event_fired") as u64;
            let cancelled: u64 = rec
                .events()
                .iter()
                .filter_map(|e| match e {
                    Event::SimEventCancelled { count, .. } => Some(*count),
                    _ => None,
                })
                .sum();
            assert_eq!(
                (fired, cancelled),
                (want_fired, want_cancelled),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn fault_plan_sampling_is_deterministic_and_bounded() {
        let faults = FaultConfig::calibrated(77);
        let a = FaultPlan::sample(&faults, 100, 60.0);
        let b = FaultPlan::sample(&faults, 100, 60.0);
        assert_eq!(a, b);
        assert!(a
            .crashes
            .iter()
            .all(|&(n, t)| n < 100 && (0.0..60.0).contains(&t)));
        assert!(a.stragglers.iter().all(|&(_, f)| f >= 1.0));
        // Rates are per node: expect a handful of each on 100 nodes.
        assert!(!a.crashes.is_empty() || !a.stragglers.is_empty());
        assert!(FaultPlan::sample(&FaultConfig::none(77), 100, 60.0).is_empty());
    }
}
