//! Machine presets.
//!
//! Shape parameters (node counts, cores, GPUs) are the published specs of
//! the systems the paper ran on; performance parameters come from the
//! paper's own measurements where it reports them (launch rates) and from
//! public system documentation elsewhere.

use htpar_storage::{Lustre, Nvme};
use serde::{Deserialize, Serialize};

use crate::launch::LaunchModel;

/// A simulated HPC machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    pub name: String,
    /// Total compute nodes.
    pub nodes: u32,
    /// Schedulable CPU threads per node (Frontier: 64 cores / 128 HT).
    pub threads_per_node: u32,
    /// Schedulable GPUs per node (Frontier: 8 GCDs).
    pub gpus_per_node: u32,
    /// Node-local NVMe model.
    pub nvme: Nvme,
    /// Shared filesystem model.
    pub lustre: Lustre,
    /// Process-launch model for this machine's nodes.
    pub launch: LaunchModel,
}

impl Machine {
    /// OLCF Frontier: 9,408 nodes, 64 dual-threaded cores (128 threads),
    /// 8 schedulable GCDs, node-local NVMe, Orion Lustre.
    pub fn frontier() -> Machine {
        Machine {
            name: "frontier".into(),
            nodes: 9408,
            threads_per_node: 128,
            gpus_per_node: 8,
            nvme: Nvme::frontier_node(),
            lustre: Lustre::frontier_orion(),
            launch: LaunchModel::paper_calibrated(),
        }
    }

    /// NERSC Perlmutter CPU partition: ~3,000 CPU-only nodes with 2× AMD
    /// Milan (256 threads). The launch-rate stress tests (Fig. 3–5) ran
    /// on one of these.
    pub fn perlmutter_cpu() -> Machine {
        Machine {
            name: "perlmutter-cpu".into(),
            nodes: 3072,
            threads_per_node: 256,
            gpus_per_node: 0,
            nvme: Nvme::frontier_node(),
            lustre: Lustre::campaign_storage(),
            launch: LaunchModel::paper_calibrated(),
        }
    }

    /// The 8-node scheduled Data Transfer Node cluster of §IV-E.
    pub fn dtn_cluster() -> Machine {
        Machine {
            name: "dtn".into(),
            nodes: 8,
            threads_per_node: 64,
            gpus_per_node: 0,
            nvme: Nvme::frontier_node(),
            lustre: Lustre::campaign_storage(),
            launch: LaunchModel::paper_calibrated(),
        }
    }

    /// Fraction of the machine a run of `nodes` nodes occupies.
    pub fn occupancy(&self, nodes: u32) -> f64 {
        nodes as f64 / self.nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_shape_matches_paper() {
        let m = Machine::frontier();
        assert_eq!(m.threads_per_node, 128);
        assert_eq!(m.gpus_per_node, 8);
        // "up to 9,000 nodes (96% of Frontier)" — 9000/9408 = 95.7 %.
        let occ = m.occupancy(9000);
        assert!((occ - 0.957).abs() < 0.005, "occupancy {occ}");
    }

    #[test]
    fn perlmutter_thread_count_matches_fig3() {
        // "Using 256 CPU threads on a Perlmutter CPU-only compute node".
        assert_eq!(Machine::perlmutter_cpu().threads_per_node, 256);
    }

    #[test]
    fn dtn_has_eight_nodes() {
        assert_eq!(Machine::dtn_cluster().nodes, 8);
    }
}
