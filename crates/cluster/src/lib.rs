//! # htpar-cluster — the simulated supercomputers
//!
//! We do not have Frontier or Perlmutter; this crate is the substitute
//! substrate (DESIGN.md §2). It models exactly the machine behaviours the
//! paper's evaluation depends on:
//!
//! - [`machine`]: machine presets — node counts, cores, GPUs, NVMe,
//!   filesystem — for OLCF Frontier, NERSC Perlmutter CPU nodes, and an
//!   8-node DTN cluster.
//! - [`launch`]: the process-launch-rate model behind Fig. 3: a single
//!   parallel instance dispatches ~470 processes/s; a node sustains at
//!   most ~6,400 forks/s across instances. The derived full-utilization
//!   task floors (545 ms single instance on 256 threads, 40 ms multi)
//!   come out of the same arithmetic the paper uses.
//! - [`slurm`]: `SLURM_NNODES`/`SLURM_NODEID` driver-script sharding
//!   (listing 1), allocation-delay model, and the `srun`-per-task
//!   baseline with central-controller degradation.
//! - [`weak_scaling`]: the Fig. 1 experiment — up to 9,000 nodes × 128
//!   tasks with NVMe-first stdout and Lustre copy-back.
//! - [`gpu`]: the Fig. 2 experiment — 10–100 nodes × 8 GPUs with
//!   slot-based GPU isolation (and the non-isolated ablation).
//! - [`faults`]: seeded node-crash/straggler/NVMe fault injection and
//!   the failure-resilient driver (re-shard the dead node's lines,
//!   skip already-logged seqs — the paper's joblog/resume story).

pub mod des;
pub mod faults;
pub mod gpu;
pub mod launch;
pub mod machine;
pub mod slurm;
pub mod weak_scaling;

pub use faults::{FaultConfig, FaultPlan, FaultRunResult};
pub use gpu::{GpuScalingConfig, GpuScalingResult};
pub use launch::LaunchModel;
pub use machine::Machine;
pub use slurm::{driver_shard, AllocationModel, SlurmEnv, SrunModel};
pub use weak_scaling::{WeakScalingConfig, WeakScalingResult};
