//! Event-driven execution of the weak-scaling experiment.
//!
//! [`crate::weak_scaling::run`] computes the schedule analytically (a
//! closed-form slot-cycling recurrence). This module executes the *same
//! node plans* as a discrete-event simulation on [`htpar_simkit`]:
//! node-ready events, a slot-token resource per node, task-completion
//! events, copy-back events. The two implementations must agree draw for
//! draw — the cross-validation that keeps the fast analytic path honest
//! (and exercises the simulation engine at the 1.15 M-event scale of
//! Fig. 1).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use htpar_simkit::{SimTime, Simulation, Tokens};
use htpar_telemetry::{Event, EventBus, LaunchMethod};

use crate::weak_scaling::{sample_node_plan, WeakScalingConfig, WeakScalingResult};

/// Per-run collector.
#[derive(Debug, Default)]
struct World {
    task_completion_secs: Vec<f64>,
    node_elapsed_secs: Vec<f64>,
}

/// Execute the weak-scaling configuration as a discrete-event
/// simulation. Semantically identical to [`crate::weak_scaling::run`];
/// see the cross-validation tests.
pub fn run_des(config: &WeakScalingConfig) -> WeakScalingResult {
    run_des_observed(config, None)
}

/// [`run_des`] with an optional telemetry bus attached: the simulation
/// engine reports its own milestones ([`Event::SimEventFired`] /
/// [`Event::SimEventCancelled`]), each node-ready event emits
/// [`Event::NodeUp`], and each node's launcher starting its dispatch
/// chain emits [`Event::Launch`] with [`LaunchMethod::Parallel`].
/// Telemetry is observation only: results are bit-identical with and
/// without a bus.
pub fn run_des_observed(
    config: &WeakScalingConfig,
    bus: Option<Arc<EventBus>>,
) -> WeakScalingResult {
    assert!(config.nodes >= 1, "need at least one node");
    assert!(config.tasks_per_node >= 1 && config.jobs_per_node >= 1);
    let tasks_total = config.nodes as usize * config.tasks_per_node as usize;
    let dispatch_gap = 1.0 / config.machine.launch.instance_rate();
    // Peak pending events: per node one dispatch hop plus up to `jobs`
    // completions in flight (the dominant term at Fig. 1 scale).
    let jobs_per_node = config.jobs_per_node.min(config.tasks_per_node) as usize;
    let peak_events = config.nodes as usize * (jobs_per_node + 2);
    let world = World {
        task_completion_secs: Vec::with_capacity(tasks_total),
        node_elapsed_secs: Vec::with_capacity(config.nodes as usize),
    };
    let mut sim = Simulation::with_capacity(world, config.seed, peak_events);
    if let Some(bus) = &bus {
        sim.set_telemetry(Arc::clone(bus));
    }

    let mut starts = Vec::with_capacity(config.nodes as usize);
    for node in 0..config.nodes {
        let plan = Rc::new(sample_node_plan(config, node));
        let jobs = config.jobs_per_node.min(config.tasks_per_node) as u64;
        let slots = Tokens::new(jobs);
        // Per-node completion bookkeeping: (#done, last completion secs).
        let node_state = Rc::new(RefCell::new((0u32, 0f64)));
        let tasks = config.tasks_per_node;

        let start = SimTime::from_secs_f64(plan.start);
        // The launcher dispatches tasks serially: each dispatch waits for
        // a free slot, then the next dispatch may happen `dispatch_gap`
        // later. Model as a chain of acquire→schedule events.
        fn dispatch_next(
            sim: &mut Simulation<World>,
            t: u32,
            tasks: u32,
            dispatch_gap: f64,
            plan: Rc<crate::weak_scaling::NodePlan>,
            slots: Rc<RefCell<Tokens<World>>>,
            node_state: Rc<RefCell<(u32, f64)>>,
        ) {
            if t >= tasks {
                return;
            }
            let slots2 = Rc::clone(&slots);
            let plan2 = Rc::clone(&plan);
            let state2 = Rc::clone(&node_state);
            Tokens::acquire(&slots, sim, 1, move |sim| {
                let cost = plan2.task_costs[t as usize];
                // Task completion event.
                {
                    let slots3 = Rc::clone(&slots2);
                    let plan3 = Rc::clone(&plan2);
                    let state3 = Rc::clone(&state2);
                    sim.schedule_in(SimTime::from_secs_f64(cost), move |sim| {
                        let done = sim.now().as_secs_f64();
                        sim.world_mut().task_completion_secs.push(done);
                        {
                            let mut st = state3.borrow_mut();
                            st.0 += 1;
                            st.1 = st.1.max(done);
                            if st.0 == tasks {
                                let elapsed = st.1 + plan3.copy;
                                sim.world_mut().node_elapsed_secs.push(elapsed);
                            }
                        }
                        Tokens::release(&slots3, sim, 1);
                    });
                }
                // Next dispatch no earlier than launch + gap.
                let plan4 = Rc::clone(&plan2);
                let slots4 = Rc::clone(&slots2);
                let state4 = Rc::clone(&state2);
                sim.schedule_in(SimTime::from_secs_f64(dispatch_gap), move |sim| {
                    dispatch_next(sim, t + 1, tasks, dispatch_gap, plan4, slots4, state4);
                });
            });
        }

        let plan2 = Rc::clone(&plan);
        let state2 = Rc::clone(&node_state);
        let node_bus = bus.clone();
        starts.push((start, move |sim: &mut Simulation<World>| {
            if let Some(bus) = &node_bus {
                bus.emit(Event::NodeUp { node });
                bus.emit(Event::Launch {
                    method: LaunchMethod::Parallel,
                    tasks: tasks as u64,
                });
            }
            dispatch_next(sim, 0, tasks, dispatch_gap, plan2, slots, state2);
        }));
    }
    sim.schedule_batch(starts);

    sim.run();
    let world = sim.into_world();
    let mut task_completion_secs = world.task_completion_secs;
    // Event order interleaves nodes; normalize to a stable order for
    // comparisons (the analytic path is node-major).
    task_completion_secs.sort_by(f64::total_cmp);
    let mut node_elapsed_secs = world.node_elapsed_secs;
    node_elapsed_secs.sort_by(f64::total_cmp);
    let makespan_secs = node_elapsed_secs.iter().cloned().fold(0.0, f64::max);
    WeakScalingResult {
        nodes: config.nodes,
        tasks_total: config.nodes as u64 * config.tasks_per_node as u64,
        task_completion_secs,
        node_elapsed_secs,
        makespan_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weak_scaling::run;

    fn close(a: f64, b: f64) -> bool {
        // The DES clock quantizes every event to whole microseconds; the
        // dispatch chain accumulates that rounding over 128 hops (~50 µs).
        (a - b).abs() < 1e-3
    }

    #[test]
    fn des_matches_analytic_schedule_exactly() {
        let config = WeakScalingConfig::frontier(50, 77);
        let analytic = run(&config);
        let des = run_des(&config);
        assert_eq!(des.tasks_total, analytic.tasks_total);
        // Same multiset of completion times (sorted comparison).
        let mut a = analytic.task_completion_secs.clone();
        a.sort_by(f64::total_cmp);
        assert_eq!(a.len(), des.task_completion_secs.len());
        for (x, y) in a.iter().zip(&des.task_completion_secs) {
            assert!(close(*x, *y), "{x} vs {y}");
        }
        assert!(close(analytic.makespan_secs, des.makespan_secs));
    }

    #[test]
    fn des_matches_at_slot_contention() {
        // Fewer slots than tasks: the slot-cycling recurrence and the
        // token resource must produce the same schedule.
        let mut config = WeakScalingConfig::frontier(5, 3);
        config.tasks_per_node = 40;
        config.jobs_per_node = 4;
        config.task_runtime = htpar_simkit::Dist::Uniform { lo: 0.5, hi: 2.0 };
        let analytic = run(&config);
        let des = run_des(&config);
        let mut a = analytic.task_completion_secs.clone();
        a.sort_by(f64::total_cmp);
        for (x, y) in a.iter().zip(&des.task_completion_secs) {
            assert!(close(*x, *y), "{x} vs {y}");
        }
        let mut an = analytic.node_elapsed_secs.clone();
        an.sort_by(f64::total_cmp);
        for (x, y) in an.iter().zip(&des.node_elapsed_secs) {
            assert!(close(*x, *y), "node elapsed {x} vs {y}");
        }
    }

    #[test]
    fn des_event_count_scales_with_tasks() {
        let config = WeakScalingConfig::frontier(10, 1);
        let des = run_des(&config);
        assert_eq!(des.task_completion_secs.len(), 1280);
    }

    #[test]
    fn des_is_deterministic() {
        let config = WeakScalingConfig::frontier(20, 5);
        let a = run_des(&config);
        let b = run_des(&config);
        assert_eq!(a.task_completion_secs, b.task_completion_secs);
    }

    #[test]
    fn observed_run_emits_cluster_events_without_perturbing_results() {
        use htpar_telemetry::Recorder;
        let config = WeakScalingConfig::frontier(6, 11);
        let bare = run_des(&config);

        let bus = EventBus::shared();
        let rec = Recorder::shared();
        bus.attach(rec.clone());
        let observed = run_des_observed(&config, Some(Arc::clone(&bus)));
        assert_eq!(bare.task_completion_secs, observed.task_completion_secs);
        assert_eq!(bare.makespan_secs, observed.makespan_secs);

        // One NodeUp per node, with every node id present.
        let mut nodes_up: Vec<u32> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::NodeUp { node } => Some(*node),
                _ => None,
            })
            .collect();
        nodes_up.sort_unstable();
        assert_eq!(nodes_up, (0..config.nodes).collect::<Vec<u32>>());

        // One parallel-launch wave per node covering all tasks.
        let launched: u64 = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Launch {
                    method: LaunchMethod::Parallel,
                    tasks,
                } => Some(*tasks),
                _ => None,
            })
            .sum();
        assert_eq!(launched, bare.tasks_total);

        // The simulation engine reported its own milestones too.
        let fired = rec.count_matching(|e| e.kind() == "sim_event_fired");
        assert!(fired as u64 >= bare.tasks_total, "fired {fired}");
    }
}
