//! The Fig. 1 experiment: weak scaling on Frontier, one GNU Parallel
//! instance per node, 128 tasks per node, up to 9,000 nodes (1.152 M
//! tasks).
//!
//! The paper's workflow per node: start when the allocation delivers the
//! node (ramp + stragglers), wait for node-local NVMe, dispatch 128 tasks
//! from one launcher instance at the measured per-instance rate, run each
//! trivial payload, write stdout to NVMe, and finally copy the aggregated
//! output to Lustre. The reported metric is the distribution of
//! completion times measured from job start.

use htpar_simkit::{stream_rng, Dist, Summary};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::machine::Machine;
use crate::slurm::AllocationModel;

/// Where each task's stdout goes — the knob behind the paper's best
/// practice ("standard output was initially written to the node-local
/// NVMe ... to avoid writing small files to the Lustre filesystem").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum IoStrategy {
    /// The paper's workflow: stdout to NVMe, one aggregated copy-back.
    #[default]
    NvmeFirst,
    /// The anti-pattern: every task creates its own small file on
    /// Lustre, paying a metadata-server round trip under storm load.
    LustreDirect,
}

/// Configuration of one weak-scaling run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeakScalingConfig {
    pub machine: Machine,
    pub allocation: AllocationModel,
    /// Nodes in this run (Fig. 1 sweeps 1,000 … 9,000).
    pub nodes: u32,
    /// Tasks per node (128: one per CPU thread).
    pub tasks_per_node: u32,
    /// `-j` slots per node's launcher instance (128 in the paper).
    pub jobs_per_node: u32,
    /// Runtime of the trivial payload (hostname + timestamp).
    pub task_runtime: Dist,
    /// Stdout bytes each task writes (to NVMe first).
    pub stdout_bytes_per_task: u64,
    /// Where stdout goes (NVMe-first vs the Lustre-direct anti-pattern).
    pub io: IoStrategy,
    pub seed: u64,
}

impl WeakScalingConfig {
    /// The paper's setup at a given node count.
    pub fn frontier(nodes: u32, seed: u64) -> WeakScalingConfig {
        WeakScalingConfig {
            machine: Machine::frontier(),
            allocation: AllocationModel::frontier_calibrated(),
            nodes,
            tasks_per_node: 128,
            jobs_per_node: 128,
            // A bash one-liner recording hostname+date: milliseconds of
            // work, with shell startup in front.
            task_runtime: Dist::Uniform { lo: 0.01, hi: 0.10 },
            stdout_bytes_per_task: 64,
            io: IoStrategy::NvmeFirst,
            seed,
        }
    }
}

/// Result of one weak-scaling run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeakScalingResult {
    pub nodes: u32,
    pub tasks_total: u64,
    /// Per-task completion times (seconds from job start).
    pub task_completion_secs: Vec<f64>,
    /// Per-node elapsed time from job start to Lustre copy-back done.
    pub node_elapsed_secs: Vec<f64>,
    /// Latest end minus earliest start — the paper's headline number.
    pub makespan_secs: f64,
}

impl WeakScalingResult {
    /// Distribution summary of task completion times.
    pub fn task_summary(&self) -> Summary {
        Summary::of(&self.task_completion_secs).expect("runs have tasks")
    }

    /// Distribution summary of node elapsed times.
    pub fn node_summary(&self) -> Summary {
        Summary::of(&self.node_elapsed_secs).expect("runs have nodes")
    }
}

/// Everything one node needs, sampled up-front from its own RNG stream.
/// Both the analytic schedule below and the event-driven simulation in
/// [`crate::des`] consume these plans, so the two implementations can be
/// cross-validated draw for draw.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodePlan {
    /// Job start on this node (allocation ready + NVMe wait), seconds.
    pub start: f64,
    /// Per-task cost after launch: runtime + stdout write, seconds.
    pub task_costs: Vec<f64>,
    /// Copy-back cost after the last task, seconds.
    pub copy: f64,
}

/// Sample node `node`'s plan (deterministic per `(seed, node)` stream).
pub fn sample_node_plan(config: &WeakScalingConfig, node: u32) -> NodePlan {
    let tasks_total = config.nodes as u64 * config.tasks_per_node as u64;
    // Lustre-direct anti-pattern: every task's file create queues at the
    // MDS. Under a full-machine storm the whole run's creates serialize;
    // a task's expected queueing delay is half the storm's service time,
    // and the MDS itself degrades under heavy concurrent load.
    let lustre_direct_md_secs = {
        let degradation = 1.0 + 2.0 * config.machine.occupancy(config.nodes);
        config.machine.lustre.metadata_time_secs(tasks_total) * degradation / 2.0
    };
    // Copy-back bandwidth: every node eventually streams its (small)
    // aggregated output; assume roughly a quarter of nodes overlap.
    let concurrent_writers = (config.nodes / 4).max(1) as usize;
    let copy_bw = config
        .machine
        .lustre
        .effective_client_bw(concurrent_writers);
    let aggregated_bytes = config.stdout_bytes_per_task as f64 * config.tasks_per_node as f64;
    // One metadata op per node; the MDS serves the whole machine.
    let md_secs = config
        .machine
        .lustre
        .metadata_time_secs(config.nodes as u64)
        / config.nodes as f64;

    let mut rng = stream_rng(config.seed, node as u64);
    let ready = config
        .allocation
        .sample_ready_time(&mut rng, config.nodes, node);
    let nvme_wait = config.machine.nvme.sample_availability_delay(&mut rng);
    let start = ready + nvme_wait;
    let task_costs = (0..config.tasks_per_node)
        .map(|_| {
            let runtime = config.task_runtime.sample(&mut rng);
            let stdout_write = match config.io {
                IoStrategy::NvmeFirst => config
                    .machine
                    .nvme
                    .write_files_secs(1, config.stdout_bytes_per_task as f64),
                IoStrategy::LustreDirect => {
                    // Expected MDS queueing delay for this task's create,
                    // jittered: the storm makes waits highly variable.
                    lustre_direct_md_secs * (0.5 + rng.gen::<f64>())
                }
            };
            runtime + stdout_write
        })
        .collect();
    // Copy-back only exists in the NVMe-first workflow: the anti-pattern
    // already paid Lustre per task.
    let copy = match config.io {
        IoStrategy::NvmeFirst => {
            aggregated_bytes / copy_bw
                + md_secs
                + rng.gen::<f64>() * 2.0 * config.machine.occupancy(config.nodes)
        }
        IoStrategy::LustreDirect => 0.0,
    };
    NodePlan {
        start,
        task_costs,
        copy,
    }
}

/// Execute the weak-scaling model (analytic slot-cycling schedule).
pub fn run(config: &WeakScalingConfig) -> WeakScalingResult {
    assert!(config.nodes >= 1, "need at least one node");
    assert!(config.tasks_per_node >= 1 && config.jobs_per_node >= 1);
    let tasks_total = config.nodes as u64 * config.tasks_per_node as u64;
    let mut task_completion_secs = Vec::with_capacity(tasks_total as usize);
    let mut node_elapsed_secs = Vec::with_capacity(config.nodes as usize);
    let dispatch_gap = 1.0 / config.machine.launch.instance_rate();

    for node in 0..config.nodes {
        let plan = sample_node_plan(config, node);
        // Greedy earliest-free-slot dispatch — the schedule a counting
        // slot semaphore produces (GNU's behaviour): each launch waits
        // for the serial dispatcher (gap after the previous launch) and
        // for any slot to free.
        let jobs = config.jobs_per_node.min(config.tasks_per_node) as usize;
        let mut slot_free = vec![plan.start; jobs];
        let mut next_dispatch = plan.start;
        let mut node_last = plan.start;
        for &cost in &plan.task_costs {
            let (slot, earliest) = slot_free
                .iter()
                .copied()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .expect("jobs >= 1");
            let launch = next_dispatch.max(earliest);
            next_dispatch = launch + dispatch_gap;
            let done = launch + cost;
            slot_free[slot] = done;
            node_last = node_last.max(done);
            task_completion_secs.push(done);
        }
        node_elapsed_secs.push(node_last + plan.copy);
    }

    let makespan_secs = node_elapsed_secs.iter().cloned().fold(0.0, f64::max);
    WeakScalingResult {
        nodes: config.nodes,
        tasks_total,
        task_completion_secs,
        node_elapsed_secs,
        makespan_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(nodes: u32) -> WeakScalingResult {
        run(&WeakScalingConfig::frontier(nodes, 42))
    }

    #[test]
    fn task_count_matches_paper_at_9000_nodes() {
        let r = quick(9000);
        assert_eq!(r.tasks_total, 1_152_000);
        assert_eq!(r.task_completion_secs.len(), 1_152_000);
    }

    #[test]
    fn fig1_shape_medians_scale_roughly_linearly() {
        let m1 = quick(1000).task_summary().median;
        let m4 = quick(4000).task_summary().median;
        let m8 = quick(8000).task_summary().median;
        assert!(m4 > m1 && m8 > m4, "medians grow: {m1} {m4} {m8}");
        // Linear-ish: m8/m1 within a factor of ~2 of the 8× node ratio's
        // effect on the ramp median (jitter adds a constant).
        assert!(m8 / m1 > 2.5 && m8 / m1 < 8.0, "{}", m8 / m1);
    }

    #[test]
    fn fig1_8000_nodes_half_under_a_minute_three_quarters_under_two() {
        let s = quick(8000).task_summary();
        assert!(s.median < 60.0, "median {}", s.median);
        assert!(s.q3 < 120.0, "q3 {}", s.q3);
    }

    #[test]
    fn fig1_9000_nodes_max_near_561s() {
        // Paper: "the maximum execution time for 9,000 nodes ... is 561
        // seconds". We check the band, not the point value.
        let r = quick(9000);
        assert!(
            r.makespan_secs > 350.0 && r.makespan_secs < 700.0,
            "makespan {}",
            r.makespan_secs
        );
    }

    #[test]
    fn outlier_variance_appears_at_high_node_counts() {
        let small = quick(2000).task_summary();
        let large = quick(9000).task_summary();
        // The gap between max and p99 explodes when outlier nodes appear.
        let tail_small = small.max - small.p99;
        let tail_large = large.max - large.p99;
        assert!(
            tail_large > 3.0 * tail_small,
            "tails: {tail_small} vs {tail_large}"
        );
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let a = quick(500);
        let b = quick(500);
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.task_completion_secs, b.task_completion_secs);
        let c = run(&WeakScalingConfig::frontier(500, 43));
        assert_ne!(a.makespan_secs, c.makespan_secs);
    }

    #[test]
    fn per_node_rng_streams_differ_between_nodes() {
        // Each node draws from its own stream: nodes do not all sample
        // identical delays.
        let r = quick(50);
        let first_node = &r.task_completion_secs[..128];
        let second_node = &r.task_completion_secs[128..256];
        assert_ne!(first_node, second_node);
    }

    #[test]
    fn lustre_direct_antipattern_is_much_slower_at_scale() {
        // The quantitative form of the paper's best practice: writing
        // 1.152M small stdout files straight to Lustre storms the MDS.
        let good = quick(9000);
        let mut cfg = WeakScalingConfig::frontier(9000, 42);
        cfg.io = IoStrategy::LustreDirect;
        let bad = run(&cfg);
        let ratio = bad.task_summary().median / good.task_summary().median;
        // The allocation ramp dominates completion times, so the MDS
        // storm shows up as a ~1.3x median penalty plus a fattened tail
        // rather than a wholesale collapse.
        assert!(ratio > 1.25, "Lustre-direct median {ratio}x NVMe-first");
        let tail_good = good.task_summary().p99 - good.task_summary().median;
        let tail_bad = bad.task_summary().p99 - bad.task_summary().median;
        assert!(tail_bad > tail_good, "storm fattens the tail");
    }

    #[test]
    fn io_strategies_agree_at_tiny_scale() {
        // With one node, the MDS storm is negligible: both strategies
        // land in the same ballpark.
        let good = quick(1);
        let mut cfg = WeakScalingConfig::frontier(1, 42);
        cfg.io = IoStrategy::LustreDirect;
        let bad = run(&cfg);
        let ratio = bad.task_summary().median / good.task_summary().median;
        assert!(ratio < 1.2, "no storm at one node: {ratio}");
    }

    #[test]
    fn slot_cycling_respects_job_limit() {
        // 4 tasks of 10 s each on 2 slots: last completion ≥ 20 s after
        // start even though dispatch is fast.
        let mut cfg = WeakScalingConfig::frontier(1, 7);
        cfg.tasks_per_node = 4;
        cfg.jobs_per_node = 2;
        cfg.task_runtime = Dist::constant(10.0);
        let r = run(&cfg);
        let start = r
            .task_completion_secs
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            - 10.0;
        let last = r.task_completion_secs.iter().cloned().fold(0.0, f64::max);
        assert!(last - start >= 20.0 - 1e-6, "two rounds of 10 s tasks");
    }
}
