//! Slurm-side models: the driver-script sharding of listing 1, the
//! allocation-delay model, and the `srun`-per-task baseline.

use htpar_simkit::Dist;
use htpar_telemetry::{Event, EventBus, LaunchMethod};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The two environment variables the paper's driver script consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlurmEnv {
    /// `SLURM_NNODES`: nodes in the allocation.
    pub nnodes: u32,
    /// `SLURM_NODEID`: this node's 0-based id.
    pub nodeid: u32,
}

impl SlurmEnv {
    /// Would this node take input line `nr` (1-based, like awk's NR)?
    /// Implements `NR % NNODE == NODEID` from listing 1.
    ///
    /// A degenerate `nnodes == 0` clamps to a single node, matching
    /// [`driver_shard`]: node 0 takes every line instead of every line
    /// being dropped.
    pub fn takes_line(&self, nr: u64) -> bool {
        let n = self.nnodes.max(1) as u64;
        nr % n == self.nodeid as u64
    }
}

/// Shard `lines` across `nnodes` exactly as the paper's awk driver does:
/// 1-based line number modulo node count. Returns one shard per node id.
///
/// Note the awk idiom's one quirk, reproduced faithfully: because NR is
/// 1-based, node 0 takes lines nnodes, 2·nnodes, … and node 1 takes
/// lines 1, nnodes+1, … — distribution is even, offset by one.
pub fn driver_shard<T: Clone>(lines: &[T], nnodes: u32) -> Vec<Vec<T>> {
    let n = nnodes.max(1);
    let mut shards: Vec<Vec<T>> = vec![Vec::new(); n as usize];
    for (idx, line) in lines.iter().enumerate() {
        let nr = idx as u64 + 1; // awk NR is 1-based
        shards[(nr % n as u64) as usize].push(line.clone());
    }
    shards
}

/// When nodes of an allocation become ready to run the job script.
///
/// Large allocations do not start atomically: prolog scripts, NVMe burst
/// buffer setup, and node health checks spread actual start times over a
/// ramp that grows with allocation size, with a small population of
/// heavily delayed outlier nodes — the paper's stated explanation for the
/// extra variance at 7,000+ nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationModel {
    /// Ready times ramp uniformly over `ramp_secs_per_node × nodes`.
    pub ramp_secs_per_node: f64,
    /// Baseline per-node jitter added to the ramp.
    pub jitter: Dist,
    /// Probability that a node is an outlier grows quadratically with
    /// machine occupancy: `p = outlier_base × (nodes / reference_nodes)²`.
    pub outlier_base: f64,
    pub reference_nodes: u32,
    /// Extra delay suffered by outlier nodes.
    pub outlier_delay: Dist,
}

impl AllocationModel {
    /// Calibrated against Fig. 1: medians grow linearly (≈45 s at 9,000
    /// nodes), noticeable outliers appear at ≥7,000 nodes, and the
    /// worst-case 9,000-node completion lands near the paper's 561 s.
    pub fn frontier_calibrated() -> AllocationModel {
        AllocationModel {
            ramp_secs_per_node: 0.01,
            jitter: Dist::lognormal_median(8.0, 0.45),
            outlier_base: 0.012,
            reference_nodes: 9000,
            outlier_delay: Dist::Uniform {
                lo: 180.0,
                hi: 430.0,
            },
        }
    }

    /// Probability that one node of an `nodes`-node allocation is an
    /// outlier.
    pub fn outlier_probability(&self, nodes: u32) -> f64 {
        let x = nodes as f64 / self.reference_nodes as f64;
        (self.outlier_base * x * x).clamp(0.0, 1.0)
    }

    /// Sample the ready time (seconds from job start) of node `nodeid` in
    /// an allocation of `nodes`.
    pub fn sample_ready_time<R: Rng + ?Sized>(&self, rng: &mut R, nodes: u32, _nodeid: u32) -> f64 {
        let ramp_window = self.ramp_secs_per_node * nodes as f64;
        let base = rng.gen::<f64>() * ramp_window;
        let jitter = self.jitter.sample(rng);
        let outlier = if rng.gen::<f64>() < self.outlier_probability(nodes) {
            self.outlier_delay.sample(rng)
        } else {
            0.0
        };
        base + jitter + outlier
    }
}

/// The `srun`-per-task baseline (paper §IV intro and listing 4).
///
/// Every `srun` is an RPC to the central Slurm controller, which creates
/// a job step, allocates resources, and launches. Controller service time
/// degrades as outstanding step requests pile up — "a large number of
/// srun invocations can impact the overall scheduler performance". The
/// pre-GNU-Parallel Darshan script also had to sleep 0.2 s between sruns
/// to avoid overwhelming the controller (listing 4, line 16).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SrunModel {
    /// Controller service time for one step when idle, seconds.
    pub base_service_secs: f64,
    /// Additional service time per outstanding request, seconds.
    pub degradation_per_outstanding: f64,
    /// Client-side spacing the script inserts between sruns, seconds.
    pub client_spacing_secs: f64,
}

impl SrunModel {
    /// Slurm controller figures consistent with the paper's observation
    /// that srun-based dispatch is far slower than GNU Parallel's.
    pub fn calibrated() -> SrunModel {
        SrunModel {
            base_service_secs: 0.05,
            degradation_per_outstanding: 0.02,
            client_spacing_secs: 0.2,
        }
    }

    /// Time to dispatch `n` tasks by invoking one srun per task from a
    /// single script (the listing-4 pattern). Steps are submitted
    /// `client_spacing_secs` apart; the controller serves a FIFO of
    /// steps, each costing `base + degradation × queue_depth`.
    pub fn dispatch_time(&self, n: u64) -> f64 {
        let mut controller_free_at = 0.0f64;
        let mut finished = 0u64;
        let mut queue: std::collections::VecDeque<f64> = std::collections::VecDeque::new();
        for i in 0..n {
            let submit = i as f64 * self.client_spacing_secs;
            // Drain controller work that completes before this submit.
            while let Some(&head) = queue.front() {
                if head <= submit {
                    queue.pop_front();
                    finished += 1;
                } else {
                    break;
                }
            }
            let start = controller_free_at.max(submit);
            let service =
                self.base_service_secs + self.degradation_per_outstanding * queue.len() as f64;
            controller_free_at = start + service;
            queue.push_back(controller_free_at);
        }
        let _ = finished;
        controller_free_at
    }

    /// [`SrunModel::dispatch_time`] that also reports the launch wave on
    /// a telemetry bus as [`Event::Launch`] with [`LaunchMethod::Srun`] —
    /// the srun-vs-parallel comparison becomes a pair of `launch` events
    /// on the same bus.
    pub fn dispatch_observed(&self, n: u64, bus: &EventBus) -> f64 {
        bus.emit(Event::Launch {
            method: LaunchMethod::Srun,
            tasks: n,
        });
        self.dispatch_time(n)
    }

    /// Steady-state dispatch rate (tasks/s) for large `n`.
    pub fn dispatch_rate(&self, n: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        n as f64 / self.dispatch_time(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htpar_simkit::stream_rng;

    #[test]
    fn takes_line_matches_awk_semantics() {
        let env = SlurmEnv {
            nnodes: 4,
            nodeid: 1,
        };
        // NR % 4 == 1 → lines 1, 5, 9, …
        assert!(env.takes_line(1));
        assert!(!env.takes_line(2));
        assert!(env.takes_line(5));
        let env0 = SlurmEnv {
            nnodes: 4,
            nodeid: 0,
        };
        assert!(env0.takes_line(4));
        assert!(!env0.takes_line(1));
    }

    #[test]
    fn driver_shard_is_even_and_complete() {
        let lines: Vec<u32> = (0..1000).collect();
        let shards = driver_shard(&lines, 8);
        assert_eq!(shards.len(), 8);
        let total: usize = shards.iter().map(Vec::len).sum();
        assert_eq!(total, 1000);
        let min = shards.iter().map(Vec::len).min().unwrap();
        let max = shards.iter().map(Vec::len).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn driver_shard_agrees_with_takes_line() {
        let lines: Vec<u64> = (0..97).collect();
        let shards = driver_shard(&lines, 5);
        for nodeid in 0..5u32 {
            let env = SlurmEnv { nnodes: 5, nodeid };
            for &val in &shards[nodeid as usize] {
                let nr = val + 1; // line numbers are 1-based
                assert!(env.takes_line(nr), "node {nodeid} line {nr}");
            }
        }
    }

    #[test]
    fn driver_shard_single_node_takes_all() {
        let lines: Vec<u32> = (0..10).collect();
        let shards = driver_shard(&lines, 1);
        assert_eq!(shards[0].len(), 10);
    }

    #[test]
    fn zero_nodes_clamps_to_one_in_both_implementations() {
        // The two listing-1 implementations must agree even on the
        // degenerate input: one shard holding everything.
        let lines: Vec<u32> = (0..10).collect();
        let shards = driver_shard(&lines, 0);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].len(), 10);
        let env = SlurmEnv {
            nnodes: 0,
            nodeid: 0,
        };
        for nr in 1..=10u64 {
            assert!(env.takes_line(nr), "line {nr}");
        }
    }

    mod props {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// For any node count (including 0), the union of
            /// `takes_line` picks across all effective node ids equals
            /// the concatenation of `driver_shard`'s shards, and each
            /// line lands on exactly one node.
            #[test]
            fn takes_line_union_equals_driver_shard(
                nnodes in 0u32..12u32,
                len in 0usize..200usize,
            ) {
                let lines: Vec<u64> = (0..len as u64).collect();
                let shards = driver_shard(&lines, nnodes);
                let effective = nnodes.max(1);
                prop_assert_eq!(shards.len(), effective as usize);
                for (nodeid, shard) in shards.iter().enumerate() {
                    let env = SlurmEnv { nnodes, nodeid: nodeid as u32 };
                    let picks: Vec<u64> = lines
                        .iter()
                        .copied()
                        .filter(|&v| env.takes_line(v + 1))
                        .collect();
                    prop_assert_eq!(&picks, shard, "node {}", nodeid);
                }
                // Exactly-once across nodes: shard sizes sum to the
                // input and every line appears in exactly one shard.
                let total: usize = shards.iter().map(Vec::len).sum();
                prop_assert_eq!(total, len);
                let mut seen: Vec<u64> = shards.iter().flatten().copied().collect();
                seen.sort_unstable();
                prop_assert_eq!(seen, lines);
            }
        }
    }

    #[test]
    fn outlier_probability_grows_quadratically() {
        let m = AllocationModel::frontier_calibrated();
        let p1 = m.outlier_probability(1000);
        let p9 = m.outlier_probability(9000);
        assert!((p9 / p1 - 81.0).abs() < 1.0, "{}", p9 / p1);
        assert!(p9 <= 0.02, "rare even at full scale: {p9}");
    }

    #[test]
    fn ready_times_ramp_with_scale() {
        let m = AllocationModel::frontier_calibrated();
        let mut rng = stream_rng(3, 0);
        let small: Vec<f64> = (0..2000)
            .map(|i| m.sample_ready_time(&mut rng, 1000, i))
            .collect();
        let large: Vec<f64> = (0..2000)
            .map(|i| m.sample_ready_time(&mut rng, 9000, i))
            .collect();
        let med = |v: &[f64]| {
            let mut s = v.to_vec();
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        };
        assert!(med(&large) > 2.0 * med(&small), "medians scale with nodes");
        // Fig. 1: median stays under a minute even at 9,000 nodes.
        assert!(med(&large) < 60.0, "median {}", med(&large));
    }

    #[test]
    fn srun_dispatch_is_client_spacing_bound_at_paper_settings() {
        let m = SrunModel::calibrated();
        // 128 tasks spaced 0.2 s apart ≈ 25.6 s (listing 4's pattern).
        let t = m.dispatch_time(128);
        assert!((25.4..28.0).contains(&t), "{t}");
        // GNU Parallel does the same dispatch in 128/470 ≈ 0.27 s — the
        // two-orders-of-magnitude gap the paper describes.
        assert!(t / (128.0 / 470.0) > 90.0);
    }

    #[test]
    fn srun_controller_degrades_without_client_spacing() {
        let fast = SrunModel {
            client_spacing_secs: 0.0,
            ..SrunModel::calibrated()
        };
        // Without spacing, every submit queues instantly; service time
        // grows with queue depth, so dispatch is superlinear in n.
        let r100 = fast.dispatch_rate(100);
        let r1000 = fast.dispatch_rate(1000);
        assert!(
            r1000 < r100 / 2.0,
            "controller collapse: {r100}/s at 100 vs {r1000}/s at 1000"
        );
    }

    #[test]
    fn srun_zero_tasks() {
        assert_eq!(SrunModel::calibrated().dispatch_time(0), 0.0);
        assert_eq!(SrunModel::calibrated().dispatch_rate(0), 0.0);
    }

    #[test]
    fn observed_dispatch_reports_srun_launch_wave() {
        use htpar_telemetry::Recorder;
        let bus = EventBus::shared();
        let rec = Recorder::shared();
        bus.attach(rec.clone());
        let m = SrunModel::calibrated();
        let observed = m.dispatch_observed(128, &bus);
        assert_eq!(observed, m.dispatch_time(128));
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            Event::Launch {
                method: LaunchMethod::Srun,
                tasks: 128
            }
        ));
    }
}
