//! The process-launch-rate model (paper Fig. 3).
//!
//! Measured facts from the paper, used as calibration constants:
//!
//! - a single GNU Parallel instance launches ≈ **470 processes/s**
//!   (dispatch is serialized inside one instance);
//! - multiple concurrent instances on one node raise the aggregate to an
//!   upper bound of ≈ **6,400 processes/s** (kernel fork/exec ceiling);
//! - therefore a 256-thread node is fully utilized by a single instance
//!   only when tasks last ≥ 256/470 ≈ **545 ms**, and by multiple
//!   instances when tasks last ≥ 256/6,400 = **40 ms** — both numbers the
//!   paper quotes.

use htpar_telemetry::{Event, EventBus, LaunchMethod};
use serde::{Deserialize, Serialize};

/// Launch-rate model for one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchModel {
    /// Sustained dispatch rate of one launcher instance (procs/s).
    pub per_instance_rate: f64,
    /// Node-wide aggregate fork/exec ceiling (procs/s).
    pub node_ceiling: f64,
    /// Multiplicative per-launch overhead of a container runtime
    /// (1.0 = bare metal).
    pub container_overhead: f64,
}

impl LaunchModel {
    /// The calibration measured in the paper on Perlmutter.
    pub fn paper_calibrated() -> LaunchModel {
        LaunchModel {
            per_instance_rate: 470.0,
            node_ceiling: 6400.0,
            container_overhead: 1.0,
        }
    }

    /// Scale per-launch cost by a container runtime factor and cap the
    /// ceiling accordingly.
    pub fn with_container_overhead(mut self, factor: f64) -> LaunchModel {
        assert!(factor >= 1.0, "container overhead cannot be < 1");
        self.container_overhead = factor;
        self
    }

    /// Effective dispatch rate of one instance (procs/s).
    pub fn instance_rate(&self) -> f64 {
        self.per_instance_rate / self.container_overhead
    }

    /// Effective node ceiling (procs/s).
    pub fn ceiling(&self) -> f64 {
        self.node_ceiling / self.container_overhead
    }

    /// Aggregate launch rate with `instances` concurrent launcher
    /// instances, ignoring task durations (the pure stress test of
    /// Fig. 3: no-op payloads). Scales linearly until the node ceiling.
    pub fn aggregate_rate(&self, instances: u32) -> f64 {
        (instances as f64 * self.instance_rate()).min(self.ceiling())
    }

    /// Sustained *task completion* rate when each instance runs `jobs`
    /// slots of tasks lasting `task_secs`. A slot cycles every
    /// `task_secs + 1/instance_rate` (run, then get the next dispatch);
    /// an instance cannot exceed its dispatch rate regardless of slots.
    pub fn throughput(&self, instances: u32, jobs: u32, task_secs: f64) -> f64 {
        if instances == 0 || jobs == 0 {
            return 0.0;
        }
        let dispatch = 1.0 / self.instance_rate();
        let per_slot = 1.0 / (task_secs.max(0.0) + dispatch);
        let per_instance = (jobs as f64 * per_slot).min(self.instance_rate());
        (instances as f64 * per_instance).min(self.ceiling())
    }

    /// Minimum task duration that keeps `threads` busy at launch rate
    /// `rate`: the paper's 545 ms (one instance) / 40 ms (many).
    pub fn min_task_secs_for_utilization(threads: u32, rate: f64) -> f64 {
        threads as f64 / rate
    }

    /// Time to dispatch `n` tasks from `instances` instances (no-op
    /// payloads), seconds.
    pub fn dispatch_time(&self, n: u64, instances: u32) -> f64 {
        if n == 0 {
            return 0.0;
        }
        n as f64 / self.aggregate_rate(instances.max(1))
    }

    /// [`LaunchModel::dispatch_time`] that also reports the launch wave
    /// on a telemetry bus as [`Event::Launch`] with
    /// [`LaunchMethod::Parallel`].
    pub fn dispatch_observed(&self, n: u64, instances: u32, bus: &EventBus) -> f64 {
        bus.emit(Event::Launch {
            method: LaunchMethod::Parallel,
            tasks: n,
        });
        self.dispatch_time(n, instances)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_instance_rate_is_470() {
        let m = LaunchModel::paper_calibrated();
        assert_eq!(m.aggregate_rate(1), 470.0);
    }

    #[test]
    fn multi_instance_plateaus_at_6400() {
        let m = LaunchModel::paper_calibrated();
        assert_eq!(m.aggregate_rate(4), 1880.0);
        assert_eq!(m.aggregate_rate(13), 6110.0);
        assert_eq!(m.aggregate_rate(14), 6400.0, "ceiling reached");
        assert_eq!(m.aggregate_rate(64), 6400.0);
    }

    #[test]
    fn paper_task_floor_numbers() {
        // 256 threads / 470 per-s ≈ 545 ms.
        let single = LaunchModel::min_task_secs_for_utilization(256, 470.0);
        assert!((single - 0.5447).abs() < 0.001, "{single}");
        // 256 / 6400 = 40 ms.
        let multi = LaunchModel::min_task_secs_for_utilization(256, 6400.0);
        assert!((multi - 0.040).abs() < 1e-9, "{multi}");
    }

    #[test]
    fn throughput_task_bound_vs_dispatch_bound() {
        let m = LaunchModel::paper_calibrated();
        // Long tasks: throughput = jobs/task time, dispatch irrelevant.
        let t = m.throughput(1, 256, 10.0);
        assert!((t - 25.58).abs() < 0.1, "{t}");
        // Zero-length tasks: dispatch-bound at 470.
        let t = m.throughput(1, 256, 0.0);
        assert!((t - 470.0).abs() < 1e-6, "{t}");
        // 545 ms tasks on 256 slots: right at the crossover, ~437/s
        // (dispatch still in the loop), close to the 470 limit.
        let t = m.throughput(1, 256, 0.545);
        assert!(t > 430.0 && t <= 470.0, "{t}");
    }

    #[test]
    fn throughput_scales_with_instances_to_ceiling() {
        let m = LaunchModel::paper_calibrated();
        let t1 = m.throughput(1, 64, 0.04);
        let t16 = m.throughput(16, 64, 0.04);
        assert!(t16 > 10.0 * t1, "near-linear up to the ceiling");
        assert!(t16 <= 6400.0);
        let t64 = m.throughput(64, 64, 0.0);
        assert_eq!(t64, 6400.0);
    }

    #[test]
    fn container_overhead_scales_rates() {
        // Shifter: 19 % startup overhead → rates divide by 1.23 (Fig. 4:
        // ~5,200/s from 6,400/s bare metal).
        let m = LaunchModel::paper_calibrated().with_container_overhead(6400.0 / 5200.0);
        let rate = m.aggregate_rate(32);
        assert!((rate - 5200.0).abs() < 1.0, "{rate}");
    }

    #[test]
    fn dispatch_time_for_node_of_tasks() {
        let m = LaunchModel::paper_calibrated();
        // 128 tasks from one instance at 470/s ≈ 0.27 s.
        let t = m.dispatch_time(128, 1);
        assert!((t - 128.0 / 470.0).abs() < 1e-9);
        assert_eq!(m.dispatch_time(0, 1), 0.0);
    }

    #[test]
    fn zero_cases() {
        let m = LaunchModel::paper_calibrated();
        assert_eq!(m.throughput(0, 8, 1.0), 0.0);
        assert_eq!(m.throughput(8, 0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot be < 1")]
    fn sub_unity_overhead_rejected() {
        let _ = LaunchModel::paper_calibrated().with_container_overhead(0.5);
    }

    #[test]
    fn observed_dispatch_reports_parallel_launch_wave() {
        use htpar_telemetry::Recorder;
        let bus = EventBus::shared();
        let rec = Recorder::shared();
        bus.attach(rec.clone());
        let m = LaunchModel::paper_calibrated();
        let observed = m.dispatch_observed(1280, 4, &bus);
        assert_eq!(observed, m.dispatch_time(1280, 4));
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            Event::Launch {
                method: LaunchMethod::Parallel,
                tasks: 1280
            }
        ));
    }
}
