//! The Fig. 2 experiment: GPU weak scaling with Celeritas-style tasks,
//! 10–100 nodes × 8 GPUs, 1:1 process–GPU mapping via slot-based GPU
//! isolation (`HIP_VISIBLE_DEVICES=$(({%} - 1))`, paper §IV-D).
//!
//! The ablation (`isolation: false`) models what happens *without* the
//! idiom: every process defaults to device 0 and the node's work
//! serializes onto one GPU — the failure mode the construct exists to
//! prevent.

use htpar_simkit::{stream_rng, Dist, Summary};
use serde::{Deserialize, Serialize};

use crate::machine::Machine;

/// Configuration of one GPU weak-scaling run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuScalingConfig {
    pub machine: Machine,
    pub nodes: u32,
    /// Processes per node (8: one per schedulable GCD).
    pub procs_per_node: u32,
    /// Runtime of one Celeritas task on a dedicated GPU.
    pub task_runtime: Dist,
    /// Whether the `{%}`→device binding is applied.
    pub isolation: bool,
    pub seed: u64,
}

impl GpuScalingConfig {
    /// The paper's setup: 8 GPU processes per node, fixed-work Monte
    /// Carlo transport taking ~4 minutes with seconds of spread.
    pub fn frontier(nodes: u32, seed: u64) -> GpuScalingConfig {
        GpuScalingConfig {
            machine: Machine::frontier(),
            nodes,
            procs_per_node: 8,
            task_runtime: Dist::Normal {
                mean: 240.0,
                sd: 2.0,
                min: 1.0,
            },
            isolation: true,
            seed,
        }
    }
}

/// Result of one GPU weak-scaling run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuScalingResult {
    pub nodes: u32,
    pub tasks_total: u64,
    /// Per-task completion times (seconds from job start).
    pub task_completion_secs: Vec<f64>,
    pub makespan_secs: f64,
    /// Device index each task actually computed on, for isolation checks.
    pub devices_used: Vec<u32>,
}

impl GpuScalingResult {
    /// Distribution of task completion times.
    pub fn task_summary(&self) -> Summary {
        Summary::of(&self.task_completion_secs).expect("runs have tasks")
    }
}

/// Execute the GPU weak-scaling model.
pub fn run(config: &GpuScalingConfig) -> GpuScalingResult {
    assert!(config.nodes >= 1 && config.procs_per_node >= 1);
    let gpus = config.machine.gpus_per_node.max(1);
    let dispatch_gap = 1.0 / config.machine.launch.instance_rate();
    let mut completions = Vec::new();
    let mut devices_used = Vec::new();

    for node in 0..config.nodes {
        let mut rng = stream_rng(config.seed, node as u64);
        // GPU nodes of a modest allocation come up quickly; keep a small
        // start spread.
        let start = rng.gen_range(0.0..2.0);
        // Contention: tasks per device.
        let mut per_device_tasks: Vec<u32> = vec![0; gpus as usize];
        for p in 0..config.procs_per_node {
            let device = if config.isolation {
                // slot numbers are dense 1..=j; device = slot-1.
                p % gpus
            } else {
                0 // default device for every process
            };
            per_device_tasks[device as usize] += 1;
            devices_used.push(device);
        }
        for p in 0..config.procs_per_node {
            let device = if config.isolation { p % gpus } else { 0 };
            let sharers = per_device_tasks[device as usize].max(1);
            let launch = start + p as f64 * dispatch_gap;
            let runtime = config.task_runtime.sample(&mut rng) * sharers as f64;
            completions.push(launch + runtime);
        }
    }

    let makespan_secs = completions.iter().cloned().fold(0.0, f64::max);
    GpuScalingResult {
        nodes: config.nodes,
        tasks_total: config.nodes as u64 * config.procs_per_node as u64,
        task_completion_secs: completions,
        makespan_secs,
        devices_used,
    }
}

/// Convenience: sweep node counts and return `(nodes, makespan)` pairs.
pub fn sweep(node_counts: &[u32], seed: u64) -> Vec<(u32, f64)> {
    node_counts
        .iter()
        .map(|&n| (n, run(&GpuScalingConfig::frontier(n, seed)).makespan_secs))
        .collect()
}

use rand::Rng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_weak_scaling_is_flat_within_10s() {
        // Paper: "variance in execution time was less than 10 seconds
        // across runs on 10 to 100 nodes".
        let points = sweep(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100], 11);
        let min = points.iter().map(|&(_, m)| m).fold(f64::INFINITY, f64::min);
        let max = points.iter().map(|&(_, m)| m).fold(0.0, f64::max);
        assert!(max - min < 10.0, "spread {}", max - min);
    }

    #[test]
    fn isolation_spreads_work_over_all_gpus() {
        let r = run(&GpuScalingConfig::frontier(10, 1));
        let mut devices = r.devices_used.clone();
        devices.sort_unstable();
        devices.dedup();
        assert_eq!(devices, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn no_isolation_serializes_onto_device_zero() {
        let mut cfg = GpuScalingConfig::frontier(10, 1);
        cfg.isolation = false;
        let broken = run(&cfg);
        assert!(broken.devices_used.iter().all(|&d| d == 0));
        let good = run(&GpuScalingConfig::frontier(10, 1));
        // 8-way contention ≈ 8× slower.
        let ratio = broken.makespan_secs / good.makespan_secs;
        assert!(ratio > 6.0 && ratio < 10.0, "ratio {ratio}");
    }

    #[test]
    fn task_count_scales_with_nodes() {
        assert_eq!(run(&GpuScalingConfig::frontier(100, 2)).tasks_total, 800);
    }

    #[test]
    fn per_task_spread_is_seconds_not_minutes() {
        let s = run(&GpuScalingConfig::frontier(100, 3)).task_summary();
        assert!(s.std < 5.0, "std {}", s.std);
        assert!(s.mean > 200.0 && s.mean < 280.0, "mean {}", s.mean);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run(&GpuScalingConfig::frontier(25, 9));
        let b = run(&GpuScalingConfig::frontier(25, 9));
        assert_eq!(a.task_completion_secs, b.task_completion_secs);
    }
}
