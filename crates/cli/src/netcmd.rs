//! The `htpar agent` and `htpar drive` subcommands — the CLI face of
//! the network subsystem (`htpar-net`, DESIGN.md §12).
//!
//! ```text
//! # one agent per node, then drive from the head node:
//! htpar agent --listen 0.0.0.0:4511
//! seq 100000 | htpar drive --agents n1:4511,n2:4511 -j 16 --joblog run.log 'task {}'
//!
//! # or a self-contained mini-cluster of local subprocesses:
//! seq 10000 | htpar drive --local-cluster 4 --joblog run.log 'task {}'
//! ```
//!
//! `drive` accepts the same `COMMAND ::: ARGS` tail as the classic CLI
//! (stdin lines when no `:::` source is given), records an aggregated
//! joblog with the agent name in the `Host` column, and honors
//! `--resume` against it. `--chaos-kill-agent IDX@DONE` SIGKILLs one
//! `--local-cluster` agent once the global completion count reaches
//! `DONE` — the fault-injection knob the e2e recovery tests are built
//! on.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use htpar_net::agent::{self, AgentConfig};
use htpar_net::driver::{run_driver, DriveOutcome, DriverConfig};
use htpar_net::frame::Payload;
use htpar_net::local::LocalCluster;
use htpar_net::{NetCore, ENV_NET_CORE};
use htpar_telemetry::{EventBus, JsonlWriter};

pub const AGENT_USAGE: &str = "\
usage: htpar agent --listen ADDR [--name NAME] [--quiet]
  --listen ADDR   bind address: HOST:PORT (0 picks a port) or unix:/path
  --name NAME     handshake name (drivers log it as the joblog Host)
  --quiet         do not print the HTPAR_AGENT_LISTENING announce line";

pub const DRIVE_USAGE: &str = "\
usage: htpar drive (--agents SPEC[,SPEC...] | --local-cluster N) [OPTIONS] \
COMMAND... [::: ARGS...]
  --agents SPECS         comma-separated agent addresses to dial
  --local-cluster N      spawn N agent subprocesses on this machine
  -j, --jobs-per-agent N job slots per agent (default: 2)
      --joblog FILE      aggregated joblog (Host = agent name)
      --resume           skip seqs already recorded in the joblog
      --heartbeat-ms MS  agent heartbeat interval (default: 200)
      --lease-ms MS      declare an agent lost after MS of silence
                         (default: 2000)
      --payload KIND     what agents run: shell (default), noop, or
                         sleep:MICROS (measurement payloads)
      --net-core CORE    I/O core: reactor (default) or threaded (the
                         reference core; also via HTPAR_NET_CORE)
      --chaos-kill-agent IDX@DONE
                         SIGKILL local agent IDX once DONE tasks have
                         completed (requires --local-cluster)
With no ::: source, arguments are read from stdin, one per line.";

/// Dispatch a net subcommand. `None` means `argv` is a classic
/// `parallel`-style invocation and the caller should fall through.
pub fn dispatch(argv: &[String]) -> Option<i32> {
    match argv.first().map(String::as_str) {
        Some("agent") => Some(run_agent(&argv[1..])),
        Some("drive") => Some(run_drive(&argv[1..])),
        _ => None,
    }
}

/// `HTPAR_TELEMETRY_JSONL=PATH` attaches a JSONL sink, same contract as
/// the classic CLI path: agent lifecycle, shard, and frame-byte events
/// land in the file.
fn bus_from_env() -> Option<Arc<EventBus>> {
    let path = std::env::var("HTPAR_TELEMETRY_JSONL").ok()?;
    match JsonlWriter::create(std::path::Path::new(&path)) {
        Ok(writer) => {
            let bus = EventBus::shared();
            bus.attach(writer);
            Some(bus)
        }
        Err(e) => {
            eprintln!("htpar: cannot open telemetry file {path}: {e}");
            None
        }
    }
}

// ---------------------------------------------------------------- agent

fn run_agent(argv: &[String]) -> i32 {
    let mut listen: Option<String> = None;
    let mut name: Option<String> = None;
    let mut announce = true;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--listen" => match argv.get(i + 1) {
                Some(v) => {
                    listen = Some(v.clone());
                    i += 2;
                }
                None => return usage_error("agent: --listen needs an address", AGENT_USAGE),
            },
            "--name" => match argv.get(i + 1) {
                Some(v) => {
                    name = Some(v.clone());
                    i += 2;
                }
                None => return usage_error("agent: --name needs a value", AGENT_USAGE),
            },
            "--quiet" => {
                announce = false;
                i += 1;
            }
            "--help" | "-h" => {
                println!("{AGENT_USAGE}");
                return 0;
            }
            other => return usage_error(&format!("agent: unknown option {other}"), AGENT_USAGE),
        }
    }
    let Some(listen) = listen else {
        return usage_error("agent: --listen is required", AGENT_USAGE);
    };
    let mut config = AgentConfig::new(listen);
    if let Some(name) = name {
        config.name = name;
    }
    config.announce = announce;
    match agent::serve(&config) {
        Ok(report) => {
            eprintln!(
                "htpar agent: {} task(s) done, session {}",
                report.done, report.reason
            );
            0
        }
        Err(e) => {
            eprintln!("htpar agent: {e}");
            1
        }
    }
}

// ---------------------------------------------------------------- drive

/// Parsed `htpar drive` invocation (separated from execution so the
/// grammar is unit-testable without sockets).
#[derive(Debug, Clone, PartialEq)]
pub struct DriveSpec {
    pub agents: Vec<String>,
    pub local_cluster: usize,
    pub jobs_per_agent: u32,
    pub joblog: Option<PathBuf>,
    pub resume: bool,
    pub heartbeat_ms: u32,
    pub lease_window_ms: u64,
    pub payload: Payload,
    /// `--net-core`; `None` defers to `HTPAR_NET_CORE` / the default.
    pub core: Option<NetCore>,
    /// `--chaos-kill-agent IDX@DONE`.
    pub chaos_kill: Option<(usize, u64)>,
    pub command: String,
    /// `::: ARGS` values; `None` means read stdin lines.
    pub values: Option<Vec<String>>,
    pub help: bool,
}

impl Default for DriveSpec {
    fn default() -> Self {
        DriveSpec {
            agents: Vec::new(),
            local_cluster: 0,
            jobs_per_agent: 2,
            joblog: None,
            resume: false,
            heartbeat_ms: 200,
            lease_window_ms: 2_000,
            payload: Payload::Shell,
            core: None,
            chaos_kill: None,
            command: String::new(),
            values: None,
            help: false,
        }
    }
}

/// Parse `htpar drive` arguments (everything after the subcommand).
pub fn parse_drive(argv: &[String]) -> Result<DriveSpec, String> {
    let mut spec = DriveSpec::default();
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--agents" => {
                spec.agents = value(argv, i, "--agents")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                i += 2;
            }
            "--local-cluster" => {
                spec.local_cluster = value(argv, i, "--local-cluster")?
                    .parse()
                    .map_err(|_| "--local-cluster needs a count".to_string())?;
                i += 2;
            }
            "-j" | "--jobs-per-agent" => {
                spec.jobs_per_agent = value(argv, i, "-j")?
                    .parse()
                    .map_err(|_| "-j needs a number".to_string())?;
                i += 2;
            }
            "--joblog" => {
                spec.joblog = Some(PathBuf::from(value(argv, i, "--joblog")?));
                i += 2;
            }
            "--resume" => {
                spec.resume = true;
                i += 1;
            }
            "--heartbeat-ms" => {
                spec.heartbeat_ms = value(argv, i, "--heartbeat-ms")?
                    .parse()
                    .map_err(|_| "--heartbeat-ms needs milliseconds".to_string())?;
                i += 2;
            }
            "--lease-ms" => {
                spec.lease_window_ms = value(argv, i, "--lease-ms")?
                    .parse()
                    .map_err(|_| "--lease-ms needs milliseconds".to_string())?;
                i += 2;
            }
            "--payload" => {
                spec.payload = parse_payload(&value(argv, i, "--payload")?)?;
                i += 2;
            }
            "--net-core" => {
                let v = value(argv, i, "--net-core")?;
                spec.core =
                    Some(NetCore::parse(&v).ok_or_else(|| {
                        format!("unknown net core {v:?} (want reactor or threaded)")
                    })?);
                i += 2;
            }
            "--chaos-kill-agent" => {
                spec.chaos_kill = Some(parse_chaos(&value(argv, i, "--chaos-kill-agent")?)?);
                i += 2;
            }
            "--help" | "-h" => {
                spec.help = true;
                return Ok(spec);
            }
            other => {
                // `-j16` attached form, matching the main CLI grammar.
                if let Some(n) = other.strip_prefix("-j") {
                    if !n.is_empty() && n.bytes().all(|b| b.is_ascii_digit()) {
                        spec.jobs_per_agent =
                            n.parse().map_err(|_| "-j needs a number".to_string())?;
                        i += 1;
                        continue;
                    }
                }
                // An unrecognized `--flag` before the command is a typo,
                // not a command word — absorbing it would silently eat
                // everything after it (e.g. `--joblog`) into the template.
                if other.starts_with("--") {
                    return Err(format!("unknown option {other}"));
                }
                break;
            }
        }
    }
    // Everything from here is the command template, then `::: ARGS`.
    let mut command_words = Vec::new();
    while i < argv.len() && argv[i] != ":::" {
        command_words.push(argv[i].clone());
        i += 1;
    }
    spec.command = command_words.join(" ");
    if i < argv.len() {
        // Consume the `:::`.
        spec.values = Some(argv[i + 1..].to_vec());
    }
    if spec.command.is_empty() {
        return Err("a command template is required".to_string());
    }
    if spec.agents.is_empty() && spec.local_cluster == 0 {
        return Err("one of --agents or --local-cluster is required".to_string());
    }
    if spec.chaos_kill.is_some() && spec.local_cluster == 0 {
        return Err("--chaos-kill-agent requires --local-cluster".to_string());
    }
    if let Some((idx, _)) = spec.chaos_kill {
        if idx >= spec.local_cluster {
            return Err(format!(
                "--chaos-kill-agent index {idx} out of range for --local-cluster {}",
                spec.local_cluster
            ));
        }
    }
    Ok(spec)
}

/// `shell`, `noop`, or `sleep:MICROS`.
fn parse_payload(s: &str) -> Result<Payload, String> {
    match s {
        "shell" => Ok(Payload::Shell),
        "noop" => Ok(Payload::Noop),
        _ => match s.strip_prefix("sleep:") {
            Some(us) => us
                .parse()
                .map(Payload::SleepUs)
                .map_err(|_| format!("bad sleep payload {s:?} (want sleep:MICROS)")),
            None => Err(format!(
                "unknown payload {s:?} (want shell, noop, or sleep:MICROS)"
            )),
        },
    }
}

/// `IDX@DONE` — kill agent IDX once DONE tasks have completed.
fn parse_chaos(s: &str) -> Result<(usize, u64), String> {
    let (idx, done) = s
        .split_once('@')
        .ok_or_else(|| format!("bad --chaos-kill-agent {s:?} (want IDX@DONE)"))?;
    let idx = idx
        .parse()
        .map_err(|_| format!("bad agent index in {s:?}"))?;
    let done = done
        .parse()
        .map_err(|_| format!("bad completion count in {s:?}"))?;
    Ok((idx, done))
}

fn run_drive(argv: &[String]) -> i32 {
    let spec = match parse_drive(argv) {
        Ok(spec) => spec,
        Err(msg) => return usage_error(&format!("drive: {msg}"), DRIVE_USAGE),
    };
    if spec.help {
        println!("{DRIVE_USAGE}");
        return 0;
    }
    let inputs: Vec<Vec<String>> = match &spec.values {
        Some(values) => values.iter().map(|v| vec![v.clone()]).collect(),
        None => {
            use std::io::BufRead;
            let stdin = std::io::stdin();
            match stdin.lock().lines().collect::<std::io::Result<Vec<_>>>() {
                Ok(lines) => lines.into_iter().map(|l| vec![l]).collect(),
                Err(e) => {
                    eprintln!("htpar drive: reading stdin: {e}");
                    return 1;
                }
            }
        }
    };
    if inputs.is_empty() {
        eprintln!("htpar drive: no input arguments");
        return 1;
    }

    if let Some(core) = spec.core {
        // Local-cluster agents pick their core up from the environment,
        // so the flag must land before any children spawn.
        std::env::set_var(ENV_NET_CORE, core.as_str());
    }

    let mut cluster = if spec.local_cluster > 0 {
        match LocalCluster::spawn_self(spec.local_cluster) {
            Ok(cluster) => Some(cluster),
            Err(e) => {
                eprintln!("htpar drive: spawning local cluster: {e}");
                return 1;
            }
        }
    } else {
        None
    };
    let agents = match &cluster {
        Some(cluster) => cluster.specs.clone(),
        None => spec.agents.clone(),
    };

    let mut config = DriverConfig::new(agents, spec.command.clone());
    if let Some(core) = spec.core {
        config.core = core;
    }
    config.jobs_per_agent = spec.jobs_per_agent;
    config.payload = spec.payload;
    config.heartbeat_ms = spec.heartbeat_ms;
    config.lease_window_ms = spec.lease_window_ms;
    config.drain_timeout = Duration::from_secs(10);
    config.joblog = spec.joblog.clone();
    config.resume = spec.resume;
    config.bus = bus_from_env();

    // Chaos hook: SIGKILL one local agent at a deterministic point in
    // the completion sequence.
    let mut chaos_cb: Option<Box<dyn FnMut(u64) + '_>> = match (spec.chaos_kill, cluster.as_mut()) {
        (Some((idx, at)), Some(cluster)) => {
            let mut fired = false;
            // The closure holds the only &mut to the cluster while
            // run_driver is live; join/drop below run after it is gone.
            let cluster: &mut LocalCluster = cluster;
            Some(Box::new(move |done: u64| {
                if !fired && done >= at {
                    fired = true;
                    eprintln!("htpar drive: chaos: killing agent {idx} at done={done}");
                    cluster.kill(idx);
                }
            }))
        }
        _ => None,
    };

    let outcome = run_driver(
        &config,
        &inputs,
        chaos_cb.as_deref_mut().map(|f| f as &mut dyn FnMut(u64)),
    );
    drop(chaos_cb);
    let code = match outcome {
        Ok(outcome) => {
            print_summary(&outcome);
            if outcome.completed + outcome.skipped == outcome.total {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("htpar drive: {e}");
            1
        }
    };
    if let Some(mut cluster) = cluster {
        // Drained agents exit on their own; reap them.
        cluster.join();
    }
    code
}

fn print_summary(outcome: &DriveOutcome) {
    eprintln!(
        "htpar drive: {}/{} task(s) in {:.2}s ({:.0} tasks/s), {} skipped, {} duplicate completion(s) suppressed",
        outcome.completed,
        outcome.total,
        outcome.wall.as_secs_f64(),
        outcome.tasks_per_sec(),
        outcome.skipped,
        outcome.duplicates,
    );
    for (idx, agent) in outcome.agents.iter().enumerate() {
        let mut line = format!("  agent {idx} ({}): {} done", agent.name, agent.done);
        if agent.lost {
            line.push_str(" [lost]");
        }
        if let Some(error) = &agent.error {
            line.push_str(&format!(" [error: {error}]"));
        }
        eprintln!("{line}");
    }
}

fn usage_error(msg: &str, usage: &str) -> i32 {
    eprintln!("htpar: {msg}");
    eprintln!("{usage}");
    255
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn drive_grammar_parses() {
        let spec = parse_drive(&argv(
            "--local-cluster 4 -j 16 --joblog run.log --resume --payload noop \
             --chaos-kill-agent 2@500 task {} ::: a b c",
        ))
        .unwrap();
        assert_eq!(spec.local_cluster, 4);
        assert_eq!(spec.jobs_per_agent, 16);
        assert_eq!(spec.joblog, Some(PathBuf::from("run.log")));
        assert!(spec.resume);
        assert_eq!(spec.payload, Payload::Noop);
        assert_eq!(spec.chaos_kill, Some((2, 500)));
        assert_eq!(spec.command, "task {}");
        assert_eq!(
            spec.values,
            Some(vec!["a".to_string(), "b".to_string(), "c".to_string()])
        );
    }

    #[test]
    fn drive_attached_jobs_form_and_unknown_flags() {
        let spec = parse_drive(&argv("--local-cluster 2 -j16 --joblog run.log task {}")).unwrap();
        assert_eq!(spec.jobs_per_agent, 16);
        assert_eq!(spec.joblog, Some(PathBuf::from("run.log")));
        assert_eq!(spec.command, "task {}");
        let err = parse_drive(&argv("--local-cluster 2 --jobslog run.log task {}")).unwrap_err();
        assert!(err.contains("unknown option --jobslog"), "{err}");
    }

    #[test]
    fn drive_agents_list_splits_on_commas() {
        let spec = parse_drive(&argv("--agents n1:4511,n2:4511 task {}")).unwrap();
        assert_eq!(spec.agents, vec!["n1:4511", "n2:4511"]);
        assert_eq!(spec.values, None, "stdin is the input source");
    }

    #[test]
    fn drive_requires_agents_and_command() {
        assert!(parse_drive(&argv("task {}")).is_err());
        assert!(parse_drive(&argv("--local-cluster 2")).is_err());
    }

    #[test]
    fn chaos_requires_local_cluster_and_range() {
        assert!(parse_drive(&argv("--agents a --chaos-kill-agent 0@5 task {}")).is_err());
        assert!(parse_drive(&argv("--local-cluster 2 --chaos-kill-agent 2@5 task {}")).is_err());
        assert!(parse_drive(&argv("--local-cluster 2 --chaos-kill-agent 1@5 task {}")).is_ok());
    }

    #[test]
    fn net_core_grammar() {
        let spec = parse_drive(&argv("--local-cluster 2 --net-core threaded task {}")).unwrap();
        assert_eq!(spec.core, Some(NetCore::Threaded));
        let spec = parse_drive(&argv("--local-cluster 2 --net-core reactor task {}")).unwrap();
        assert_eq!(spec.core, Some(NetCore::Reactor));
        let spec = parse_drive(&argv("--local-cluster 2 task {}")).unwrap();
        assert_eq!(spec.core, None, "unset defers to HTPAR_NET_CORE");
        assert!(parse_drive(&argv("--local-cluster 2 --net-core epoll task {}")).is_err());
    }

    #[test]
    fn payload_grammar() {
        assert_eq!(parse_payload("shell").unwrap(), Payload::Shell);
        assert_eq!(parse_payload("noop").unwrap(), Payload::Noop);
        assert_eq!(parse_payload("sleep:250").unwrap(), Payload::SleepUs(250));
        assert!(parse_payload("sleep:x").is_err());
        assert!(parse_payload("exec").is_err());
    }

    #[test]
    fn dispatch_ignores_classic_invocations() {
        assert_eq!(dispatch(&argv("-j8 echo {} ::: 1 2")), None);
        assert_eq!(dispatch(&[]), None);
    }
}
