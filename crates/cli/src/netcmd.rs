//! The `htpar agent` and `htpar drive` subcommands — the CLI face of
//! the network subsystem (`htpar-net`, DESIGN.md §12).
//!
//! ```text
//! # one agent per node, then drive from the head node:
//! htpar agent --listen 0.0.0.0:4511
//! seq 100000 | htpar drive --agents n1:4511,n2:4511 -j 16 --joblog run.log 'task {}'
//!
//! # or a self-contained mini-cluster of local subprocesses:
//! seq 10000 | htpar drive --local-cluster 4 --joblog run.log 'task {}'
//! ```
//!
//! `drive` accepts the same `COMMAND ::: ARGS` tail as the classic CLI
//! (stdin lines when no `:::` source is given), records an aggregated
//! joblog with the agent name in the `Host` column, and honors
//! `--resume` against it. `--chaos-kill-agent IDX@DONE` SIGKILLs one
//! `--local-cluster` agent once the global completion count reaches
//! `DONE` — the fault-injection knob the e2e recovery tests are built
//! on.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use htpar_core::dag::{Dag, DagRunner, DagSpec, ReadySet};
use htpar_core::sched::SchedPolicy;
use htpar_net::agent::{self, AgentConfig};
use htpar_net::client::{ClientEvent, SessionClient, SessionConfig};
use htpar_net::driver::{run_driver, DriveOutcome, DriverConfig};
use htpar_net::frame::Payload;
use htpar_net::local::LocalCluster;
use htpar_net::serve::{PilotServer, ServeConfig, ServeOutcome, SERVE_ANNOUNCE_PREFIX};
use htpar_net::{NetCore, ENV_NET_CORE};
use htpar_telemetry::{EventBus, JsonlWriter};

pub const AGENT_USAGE: &str = "\
usage: htpar agent --listen ADDR [--name NAME] [--quiet]
  --listen ADDR   bind address: HOST:PORT (0 picks a port) or unix:/path
  --name NAME     handshake name (drivers log it as the joblog Host)
  --quiet         do not print the HTPAR_AGENT_LISTENING announce line";

pub const DRIVE_USAGE: &str = "\
usage: htpar drive (--agents SPEC[,SPEC...] | --local-cluster N) [OPTIONS] \
COMMAND... [::: ARGS...]
  --agents SPECS         comma-separated agent addresses to dial
  --local-cluster N      spawn N agent subprocesses on this machine
  -j, --jobs-per-agent N job slots per agent (default: 2)
      --joblog FILE      aggregated joblog (Host = agent name)
      --resume           skip seqs already recorded in the joblog
      --heartbeat-ms MS  agent heartbeat interval (default: 200)
      --lease-ms MS      declare an agent lost after MS of silence
                         (default: 2000)
      --payload KIND     what agents run: shell (default), noop, or
                         sleep:MICROS (measurement payloads)
      --net-core CORE    I/O core: reactor (default) or threaded (the
                         reference core; also via HTPAR_NET_CORE)
      --chaos-kill-agent IDX@DONE
                         SIGKILL local agent IDX once DONE tasks have
                         completed (requires --local-cluster)
      --dag FILE         drive a dependency graph: FILE supplies the
                         commands (htpar dag grammar) and the driver
                         releases a task to the fleet only after its
                         dependencies succeed; no COMMAND/::: tail
      --make             with --dag: FILE is make-style `target: deps`
                         lines and the COMMAND tail renders each task
                         ({} = target)
With no ::: source, arguments are read from stdin, one per line.";

pub const DAG_USAGE: &str = "\
usage: htpar dag FILE [OPTIONS]
Run a dependency graph in-process: ready tasks release into the slot
engine as their dependencies complete; a failure marks every descendant
skipped-dep-failed with its own joblog row.
FILE grammar (one task per line; blank lines and # comments ignored):
  ID: COMMAND                     one task
  ID: COMMAND {} ::: A B C        expands to ID.1..ID.N, one arg each;
                                  ID then names the whole group
  ...anything... # after: ID,ID   run only after the named tasks
  -j, --jobs N      parallel job slots
      --joblog FILE one row per task; skipped tasks get
                    Host=skipped-dep-failed, Exitval=-2
      --resume      with --joblog: keep tasks that already have a
                    successful row and replay exactly the unfinished
                    subgraph (failed tasks, their descendants, and
                    anything unrecorded)
      --make CMD    FILE is make-style `target: deps` lines; CMD
                    renders each task's command ({} = target)
      --no-shell    exec argv directly instead of via sh -c
      --dry-run     validate and print a topological plan, then exit";

pub const SERVE_USAGE: &str = "\
usage: htpar serve (--agents SPEC[,SPEC...] | --local-cluster N) [OPTIONS]
  --listen ADDR          session listener: HOST:PORT (0 picks a port;
                         default 127.0.0.1:0) or unix:/path
  --agents SPECS         comma-separated agent addresses to dial
  --local-cluster N      spawn N agent subprocesses on this machine
  -j, --jobs-per-agent N job slots per agent (default: 2)
      --scheduler POLICY tenant multiplexing: fifo, fair (default,
                         weighted fair share), or priority
      --max-queue N      per-tenant admission bound; a Submit past it
                         gets a SessionAck refusal (default: 100000)
      --oversub N        in-flight target per agent, in multiples of
                         its slots (default: 4)
      --joblog-dir DIR   per-tenant joblogs, DIR/<tenant>.joblog
      --state-dir DIR    write-ahead session journal (DIR/pilot.journal);
                         a restarted pilot recovers accepted-but-
                         unfinished work from it
      --detach-ttl SECS  hold a detached session for SECS after its
                         socket drops before purging its work
                         (default: 3600; 0 holds forever)
      --journal-compact N
                         rewrite the session journal after N journaled
                         sessions close, dropping closed-session
                         records (default: 64; 0 never compacts)
      --max-sessions N   exit after N sessions close (default: forever)
      --heartbeat-ms MS  agent heartbeat interval (default: 200)
      --lease-ms MS      declare an agent lost after MS of silence
                         (default: 2000)
      --net-core CORE    I/O core for spawned agents: reactor (default)
                         or threaded (also via HTPAR_NET_CORE)
      --chaos-kill-agent IDX@DONE
                         SIGKILL local agent IDX once DONE tasks have
                         completed (requires --local-cluster)
      --quiet            do not print the HTPAR_SERVE_LISTENING line
One-shot runs are unchanged: `htpar drive` still owns its own fleet.";

pub const SUBMIT_USAGE: &str = "\
usage: htpar submit --connect ADDR [OPTIONS] COMMAND... [::: ARGS...]
  --connect ADDR     pilot address (HOST:PORT or unix:/path)
  --tenant NAME      tenant to submit under (default: default)
  --weight N         fair-share weight (default: 1)
  --priority N       priority level, higher wins (default: 0)
  --payload KIND     shell (default), noop, or sleep:MICROS
  --batch N          tasks per Submit frame (default: 1000)
  --retry-max N      give up after N backpressure retries per batch,
                     with capped exponential backoff (default: 10)
  --detach KEY       submit everything, then detach: the pilot keeps
                     the work alive; collect later with --reattach KEY
  --reattach KEY     reattach to a detached session and collect its
                     results (no command template; requires --tenant
                     to match the detached session)
  --dag FILE         submit a dependency graph: the client withholds
                     each task until its dependencies' completions
                     arrive, so the pilot sees ordinary batches
  --make             with --dag: FILE is make-style `target: deps`
                     lines rendered through the COMMAND tail
With no ::: source, arguments are read from stdin, one per line.";

/// Dispatch a net subcommand. `None` means `argv` is a classic
/// `parallel`-style invocation and the caller should fall through.
pub fn dispatch(argv: &[String]) -> Option<i32> {
    match argv.first().map(String::as_str) {
        Some("agent") => Some(run_agent(&argv[1..])),
        Some("drive") => Some(run_drive(&argv[1..])),
        Some("dag") => Some(run_dag(&argv[1..])),
        Some("serve") => Some(run_serve(&argv[1..])),
        Some("submit") => Some(run_submit(&argv[1..])),
        _ => None,
    }
}

/// `HTPAR_TELEMETRY_JSONL=PATH` attaches a JSONL sink, same contract as
/// the classic CLI path: agent lifecycle, shard, and frame-byte events
/// land in the file.
fn bus_from_env() -> Option<Arc<EventBus>> {
    let path = std::env::var("HTPAR_TELEMETRY_JSONL").ok()?;
    match JsonlWriter::create(std::path::Path::new(&path)) {
        Ok(writer) => {
            let bus = EventBus::shared();
            bus.attach(writer);
            Some(bus)
        }
        Err(e) => {
            eprintln!("htpar: cannot open telemetry file {path}: {e}");
            None
        }
    }
}

/// The `COMMAND... [::: ARGS...]` tail both `drive` and `submit`
/// accept, split starting at `argv[i]`: everything up to `:::` joins
/// into the command template, everything after it is the argument list
/// (`None` = read stdin lines). One helper so the two grammars cannot
/// drift.
fn parse_command_tail(argv: &[String], i: usize) -> (String, Option<Vec<String>>) {
    let mut j = i;
    let mut words = Vec::new();
    while j < argv.len() && argv[j] != ":::" {
        words.push(argv[j].clone());
        j += 1;
    }
    let values = (j < argv.len()).then(|| argv[j + 1..].to_vec());
    (words.join(" "), values)
}

/// Read and build a `--dag` file. `make` carries the `--make` render
/// template (`{}` = target); `None` selects the `id: cmd` grammar.
fn load_dag(path: &std::path::Path, make: Option<&str>) -> Result<Dag, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let spec = match make {
        Some(template) => DagSpec::parse_make(&text, template),
        None => DagSpec::parse(&text),
    };
    spec.and_then(DagSpec::build).map_err(|e| e.to_string())
}

// ---------------------------------------------------------------- agent

fn run_agent(argv: &[String]) -> i32 {
    let mut listen: Option<String> = None;
    let mut name: Option<String> = None;
    let mut announce = true;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--listen" => match argv.get(i + 1) {
                Some(v) => {
                    listen = Some(v.clone());
                    i += 2;
                }
                None => return usage_error("agent: --listen needs an address", AGENT_USAGE),
            },
            "--name" => match argv.get(i + 1) {
                Some(v) => {
                    name = Some(v.clone());
                    i += 2;
                }
                None => return usage_error("agent: --name needs a value", AGENT_USAGE),
            },
            "--quiet" => {
                announce = false;
                i += 1;
            }
            "--help" | "-h" => {
                println!("{AGENT_USAGE}");
                return 0;
            }
            other => return usage_error(&format!("agent: unknown option {other}"), AGENT_USAGE),
        }
    }
    let Some(listen) = listen else {
        return usage_error("agent: --listen is required", AGENT_USAGE);
    };
    let mut config = AgentConfig::new(listen);
    if let Some(name) = name {
        config.name = name;
    }
    config.announce = announce;
    match agent::serve(&config) {
        Ok(report) => {
            eprintln!(
                "htpar agent: {} task(s) done, session {}",
                report.done, report.reason
            );
            0
        }
        Err(e) => {
            eprintln!("htpar agent: {e}");
            1
        }
    }
}

// ---------------------------------------------------------------- drive

/// Parsed `htpar drive` invocation (separated from execution so the
/// grammar is unit-testable without sockets).
#[derive(Debug, Clone, PartialEq)]
pub struct DriveSpec {
    pub agents: Vec<String>,
    pub local_cluster: usize,
    pub jobs_per_agent: u32,
    pub joblog: Option<PathBuf>,
    pub resume: bool,
    pub heartbeat_ms: u32,
    pub lease_window_ms: u64,
    pub payload: Payload,
    /// `--net-core`; `None` defers to `HTPAR_NET_CORE` / the default.
    pub core: Option<NetCore>,
    /// `--chaos-kill-agent IDX@DONE`.
    pub chaos_kill: Option<(usize, u64)>,
    /// `--dag FILE`: dependency-aware drive; commands come from FILE.
    pub dag: Option<PathBuf>,
    /// `--make`: the `--dag` file is make-style `target: deps` lines,
    /// rendered through the command template.
    pub make: bool,
    pub command: String,
    /// `::: ARGS` values; `None` means read stdin lines.
    pub values: Option<Vec<String>>,
    pub help: bool,
}

impl Default for DriveSpec {
    fn default() -> Self {
        DriveSpec {
            agents: Vec::new(),
            local_cluster: 0,
            jobs_per_agent: 2,
            joblog: None,
            resume: false,
            heartbeat_ms: 200,
            lease_window_ms: 2_000,
            payload: Payload::Shell,
            core: None,
            chaos_kill: None,
            dag: None,
            make: false,
            command: String::new(),
            values: None,
            help: false,
        }
    }
}

/// Parse `htpar drive` arguments (everything after the subcommand).
pub fn parse_drive(argv: &[String]) -> Result<DriveSpec, String> {
    let mut spec = DriveSpec::default();
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--agents" => {
                spec.agents = value(argv, i, "--agents")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                i += 2;
            }
            "--local-cluster" => {
                spec.local_cluster = value(argv, i, "--local-cluster")?
                    .parse()
                    .map_err(|_| "--local-cluster needs a count".to_string())?;
                i += 2;
            }
            "-j" | "--jobs-per-agent" => {
                spec.jobs_per_agent = value(argv, i, "-j")?
                    .parse()
                    .map_err(|_| "-j needs a number".to_string())?;
                i += 2;
            }
            "--joblog" => {
                spec.joblog = Some(PathBuf::from(value(argv, i, "--joblog")?));
                i += 2;
            }
            "--resume" => {
                spec.resume = true;
                i += 1;
            }
            "--heartbeat-ms" => {
                spec.heartbeat_ms = value(argv, i, "--heartbeat-ms")?
                    .parse()
                    .map_err(|_| "--heartbeat-ms needs milliseconds".to_string())?;
                i += 2;
            }
            "--lease-ms" => {
                spec.lease_window_ms = value(argv, i, "--lease-ms")?
                    .parse()
                    .map_err(|_| "--lease-ms needs milliseconds".to_string())?;
                i += 2;
            }
            "--payload" => {
                spec.payload = parse_payload(&value(argv, i, "--payload")?)?;
                i += 2;
            }
            "--net-core" => {
                let v = value(argv, i, "--net-core")?;
                spec.core =
                    Some(NetCore::parse(&v).ok_or_else(|| {
                        format!("unknown net core {v:?} (want reactor or threaded)")
                    })?);
                i += 2;
            }
            "--chaos-kill-agent" => {
                spec.chaos_kill = Some(parse_chaos(&value(argv, i, "--chaos-kill-agent")?)?);
                i += 2;
            }
            "--dag" => {
                spec.dag = Some(PathBuf::from(value(argv, i, "--dag")?));
                i += 2;
            }
            "--make" => {
                spec.make = true;
                i += 1;
            }
            "--help" | "-h" => {
                spec.help = true;
                return Ok(spec);
            }
            other => {
                // `-j16` attached form, matching the main CLI grammar.
                if let Some(n) = other.strip_prefix("-j") {
                    if !n.is_empty() && n.bytes().all(|b| b.is_ascii_digit()) {
                        spec.jobs_per_agent =
                            n.parse().map_err(|_| "-j needs a number".to_string())?;
                        i += 1;
                        continue;
                    }
                }
                // An unrecognized `--flag` before the command is a typo,
                // not a command word — absorbing it would silently eat
                // everything after it (e.g. `--joblog`) into the template.
                if other.starts_with("--") {
                    return Err(format!("unknown option {other}"));
                }
                break;
            }
        }
    }
    // Everything from here is the command template, then `::: ARGS`.
    let (command, values) = parse_command_tail(argv, i);
    spec.command = command;
    spec.values = values;
    if spec.make && spec.dag.is_none() {
        return Err("--make requires --dag FILE".to_string());
    }
    if spec.dag.is_some() {
        if spec.values.is_some() {
            return Err("--dag and ::: are mutually exclusive".to_string());
        }
        if spec.make && spec.command.is_empty() {
            return Err("--dag --make needs a command template ({} = target)".to_string());
        }
        if !spec.make && !spec.command.is_empty() {
            return Err(
                "--dag FILE supplies the commands; drop the command words (or add --make)"
                    .to_string(),
            );
        }
    } else if spec.command.is_empty() {
        return Err("a command template is required".to_string());
    }
    if spec.agents.is_empty() && spec.local_cluster == 0 {
        return Err("one of --agents or --local-cluster is required".to_string());
    }
    if spec.chaos_kill.is_some() && spec.local_cluster == 0 {
        return Err("--chaos-kill-agent requires --local-cluster".to_string());
    }
    if let Some((idx, _)) = spec.chaos_kill {
        if idx >= spec.local_cluster {
            return Err(format!(
                "--chaos-kill-agent index {idx} out of range for --local-cluster {}",
                spec.local_cluster
            ));
        }
    }
    Ok(spec)
}

/// `shell`, `noop`, or `sleep:MICROS`.
fn parse_payload(s: &str) -> Result<Payload, String> {
    match s {
        "shell" => Ok(Payload::Shell),
        "noop" => Ok(Payload::Noop),
        _ => match s.strip_prefix("sleep:") {
            Some(us) => us
                .parse()
                .map(Payload::SleepUs)
                .map_err(|_| format!("bad sleep payload {s:?} (want sleep:MICROS)")),
            None => Err(format!(
                "unknown payload {s:?} (want shell, noop, or sleep:MICROS)"
            )),
        },
    }
}

/// `IDX@DONE` — kill agent IDX once DONE tasks have completed.
fn parse_chaos(s: &str) -> Result<(usize, u64), String> {
    let (idx, done) = s
        .split_once('@')
        .ok_or_else(|| format!("bad --chaos-kill-agent {s:?} (want IDX@DONE)"))?;
    let idx = idx
        .parse()
        .map_err(|_| format!("bad agent index in {s:?}"))?;
    let done = done
        .parse()
        .map_err(|_| format!("bad completion count in {s:?}"))?;
    Ok((idx, done))
}

fn run_drive(argv: &[String]) -> i32 {
    let spec = match parse_drive(argv) {
        Ok(spec) => spec,
        Err(msg) => return usage_error(&format!("drive: {msg}"), DRIVE_USAGE),
    };
    if spec.help {
        println!("{DRIVE_USAGE}");
        return 0;
    }
    // `--dag FILE`: the graph supplies the commands; the driver runs
    // the per-node command lines through a bare `{}` template and
    // withholds each task until its dependencies succeed.
    let dag = match &spec.dag {
        Some(path) => {
            let make = spec.make.then_some(spec.command.as_str());
            match load_dag(path, make) {
                Ok(dag) => Some(dag),
                Err(msg) => {
                    eprintln!("htpar drive: {msg}");
                    return 1;
                }
            }
        }
        None => None,
    };
    let inputs: Vec<Vec<String>> = match (&dag, &spec.values) {
        (Some(dag), _) => dag.inputs(),
        (None, Some(values)) => values.iter().map(|v| vec![v.clone()]).collect(),
        (None, None) => {
            use std::io::BufRead;
            let stdin = std::io::stdin();
            match stdin.lock().lines().collect::<std::io::Result<Vec<_>>>() {
                Ok(lines) => lines.into_iter().map(|l| vec![l]).collect(),
                Err(e) => {
                    eprintln!("htpar drive: reading stdin: {e}");
                    return 1;
                }
            }
        }
    };
    if inputs.is_empty() {
        if spec.dag.is_some() {
            eprintln!("htpar drive: the DAG has no tasks");
        } else {
            eprintln!("htpar drive: no input arguments");
        }
        return 1;
    }

    if let Some(core) = spec.core {
        // Local-cluster agents pick their core up from the environment,
        // so the flag must land before any children spawn.
        std::env::set_var(ENV_NET_CORE, core.as_str());
    }

    let mut cluster = if spec.local_cluster > 0 {
        match LocalCluster::spawn_self(spec.local_cluster) {
            Ok(cluster) => Some(cluster),
            Err(e) => {
                eprintln!("htpar drive: spawning local cluster: {e}");
                return 1;
            }
        }
    } else {
        None
    };
    let agents = match &cluster {
        Some(cluster) => cluster.specs.clone(),
        None => spec.agents.clone(),
    };

    let command = if dag.is_some() {
        "{}".to_string()
    } else {
        spec.command.clone()
    };
    let mut config = DriverConfig::new(agents, command);
    config.deps = dag.as_ref().map(Dag::dep_seqs);
    if let Some(core) = spec.core {
        config.core = core;
    }
    config.jobs_per_agent = spec.jobs_per_agent;
    config.payload = spec.payload;
    config.heartbeat_ms = spec.heartbeat_ms;
    config.lease_window_ms = spec.lease_window_ms;
    config.drain_timeout = Duration::from_secs(10);
    config.joblog = spec.joblog.clone();
    config.resume = spec.resume;
    config.bus = bus_from_env();

    // Chaos hook: SIGKILL one local agent at a deterministic point in
    // the completion sequence.
    let mut chaos_cb: Option<Box<dyn FnMut(u64) + '_>> = match (spec.chaos_kill, cluster.as_mut()) {
        (Some((idx, at)), Some(cluster)) => {
            let mut fired = false;
            // The closure holds the only &mut to the cluster while
            // run_driver is live; join/drop below run after it is gone.
            let cluster: &mut LocalCluster = cluster;
            Some(Box::new(move |done: u64| {
                if !fired && done >= at {
                    fired = true;
                    eprintln!("htpar drive: chaos: killing agent {idx} at done={done}");
                    cluster.kill(idx);
                }
            }))
        }
        _ => None,
    };

    let outcome = run_driver(
        &config,
        &inputs,
        chaos_cb.as_deref_mut().map(|f| f as &mut dyn FnMut(u64)),
    );
    drop(chaos_cb);
    let code = match outcome {
        Ok(outcome) => {
            print_summary(&outcome);
            // A dep-failed skip is a terminal outcome, not missing work.
            if outcome.completed + outcome.skipped + outcome.skipped_dep_failed == outcome.total {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("htpar drive: {e}");
            1
        }
    };
    if let Some(mut cluster) = cluster {
        // Drained agents exit on their own; reap them.
        cluster.join();
    }
    code
}

fn print_summary(outcome: &DriveOutcome) {
    let dep_failed = if outcome.skipped_dep_failed > 0 {
        format!(", {} skipped-dep-failed", outcome.skipped_dep_failed)
    } else {
        String::new()
    };
    eprintln!(
        "htpar drive: {}/{} task(s) in {:.2}s ({:.0} tasks/s), {} skipped{dep_failed}, {} duplicate completion(s) suppressed",
        outcome.completed,
        outcome.total,
        outcome.wall.as_secs_f64(),
        outcome.tasks_per_sec(),
        outcome.skipped,
        outcome.duplicates,
    );
    for (idx, agent) in outcome.agents.iter().enumerate() {
        let mut line = format!("  agent {idx} ({}): {} done", agent.name, agent.done);
        if agent.lost {
            line.push_str(" [lost]");
        }
        if let Some(error) = &agent.error {
            line.push_str(&format!(" [error: {error}]"));
        }
        eprintln!("{line}");
    }
}

// ------------------------------------------------------------------ dag

/// Parsed `htpar dag` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct DagCmdSpec {
    pub file: Option<PathBuf>,
    pub jobs: Option<usize>,
    pub joblog: Option<PathBuf>,
    pub resume: bool,
    /// `--make CMD`: make-style input rendered through CMD.
    pub make: Option<String>,
    pub shell: bool,
    pub dry_run: bool,
    pub help: bool,
}

impl Default for DagCmdSpec {
    fn default() -> Self {
        DagCmdSpec {
            file: None,
            jobs: None,
            joblog: None,
            resume: false,
            make: None,
            shell: true,
            dry_run: false,
            help: false,
        }
    }
}

/// Parse `htpar dag` arguments (everything after the subcommand).
pub fn parse_dag(argv: &[String]) -> Result<DagCmdSpec, String> {
    let mut spec = DagCmdSpec::default();
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "-j" | "--jobs" => {
                spec.jobs = Some(
                    value(argv, i, "-j")?
                        .parse()
                        .map_err(|_| "-j needs a number".to_string())?,
                );
                i += 2;
            }
            "--joblog" => {
                spec.joblog = Some(PathBuf::from(value(argv, i, "--joblog")?));
                i += 2;
            }
            "--resume" => {
                spec.resume = true;
                i += 1;
            }
            "--make" => {
                spec.make = Some(value(argv, i, "--make")?);
                i += 2;
            }
            "--no-shell" => {
                spec.shell = false;
                i += 1;
            }
            "--dry-run" => {
                spec.dry_run = true;
                i += 1;
            }
            "--help" | "-h" => {
                spec.help = true;
                return Ok(spec);
            }
            other => {
                if let Some(n) = other.strip_prefix("-j") {
                    if !n.is_empty() && n.bytes().all(|b| b.is_ascii_digit()) {
                        spec.jobs = Some(n.parse().map_err(|_| "-j needs a number".to_string())?);
                        i += 1;
                        continue;
                    }
                }
                if other.starts_with('-') && other.len() > 1 {
                    return Err(format!("unknown option {other}"));
                }
                if spec.file.is_some() {
                    return Err(format!("unexpected extra argument {other:?}"));
                }
                spec.file = Some(PathBuf::from(other));
                i += 1;
            }
        }
    }
    if spec.file.is_none() {
        return Err("a DAG file is required".to_string());
    }
    if spec.resume && spec.joblog.is_none() {
        return Err("--resume requires --joblog".to_string());
    }
    Ok(spec)
}

fn run_dag(argv: &[String]) -> i32 {
    let spec = match parse_dag(argv) {
        Ok(spec) => spec,
        Err(msg) => return usage_error(&format!("dag: {msg}"), DAG_USAGE),
    };
    if spec.help {
        println!("{DAG_USAGE}");
        return 0;
    }
    let file = spec.file.as_ref().expect("validated by parse_dag");
    let dag = match load_dag(file, spec.make.as_deref()) {
        Ok(dag) => dag,
        Err(msg) => {
            eprintln!("htpar dag: {msg}");
            return 1;
        }
    };
    if spec.dry_run {
        print_dag_plan(&dag);
        return 0;
    }

    use htpar_core::executor::ProcessExecutor;
    use htpar_core::options::{Options, ResumeMode};
    let mut options = Options::default();
    if let Some(jobs) = spec.jobs {
        options.jobs = jobs;
    }
    options.joblog = spec.joblog.clone();
    options.resume = if spec.resume {
        ResumeMode::Resume
    } else {
        ResumeMode::Off
    };
    options.shell = spec.shell;
    let executor: Arc<dyn htpar_core::executor::Executor> = if spec.shell {
        Arc::new(ProcessExecutor::shell())
    } else {
        Arc::new(ProcessExecutor::no_shell())
    };
    let runner = DagRunner {
        options,
        executor,
        bus: bus_from_env(),
    };
    let started = std::time::Instant::now();
    match runner.run(&dag) {
        Ok(report) => {
            let ok = report.total - report.failed - report.skipped_dep_failed - report.resumed;
            eprintln!(
                "htpar dag: {}/{} task(s) ok in {:.2}s ({} failed, {} skipped-dep-failed, \
                 {} kept from a previous run)",
                ok,
                report.total,
                started.elapsed().as_secs_f64(),
                report.failed,
                report.skipped_dep_failed,
                report.resumed,
            );
            for id in &report.failed_ids {
                eprintln!("  failed: {id}");
            }
            if report.all_succeeded() {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("htpar dag: {e}");
            1
        }
    }
}

/// `--dry-run`: one line per task in a valid topological order, in the
/// same grammar the parser accepts (round-trippable).
fn print_dag_plan(dag: &Dag) {
    let mut rs = ReadySet::new(dag);
    let mut order = rs.take_ready();
    let mut at = 0;
    while at < order.len() {
        let seq = order[at];
        at += 1;
        order.extend(rs.complete(seq, true).newly_ready);
    }
    for seq in order {
        let node = dag.node((seq - 1) as usize);
        let after: Vec<&str> = node
            .deps
            .iter()
            .map(|&d| dag.node(d as usize).id.as_str())
            .collect();
        if after.is_empty() {
            println!("{}: {}", node.id, node.command);
        } else {
            println!("{}: {} # after: {}", node.id, node.command, after.join(","));
        }
    }
}

// ---------------------------------------------------------------- serve

/// Parsed `htpar serve` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSpec {
    pub listen: String,
    pub agents: Vec<String>,
    pub local_cluster: usize,
    pub jobs_per_agent: u32,
    pub policy: SchedPolicy,
    pub max_queue: u64,
    pub oversub: u32,
    pub joblog_dir: Option<PathBuf>,
    pub state_dir: Option<PathBuf>,
    /// Detach TTL in seconds; 0 holds detached sessions forever.
    pub detach_ttl: u64,
    /// Compact the journal after this many closed sessions; 0 never.
    pub journal_compact_every: u64,
    pub max_sessions: Option<u64>,
    pub heartbeat_ms: u32,
    pub lease_window_ms: u64,
    pub core: Option<NetCore>,
    pub chaos_kill: Option<(usize, u64)>,
    pub announce: bool,
    pub help: bool,
}

impl Default for ServeSpec {
    fn default() -> Self {
        ServeSpec {
            listen: "127.0.0.1:0".to_string(),
            agents: Vec::new(),
            local_cluster: 0,
            jobs_per_agent: 2,
            policy: SchedPolicy::Fair,
            max_queue: 100_000,
            oversub: 4,
            joblog_dir: None,
            state_dir: None,
            detach_ttl: 3_600,
            journal_compact_every: 64,
            max_sessions: None,
            heartbeat_ms: 200,
            lease_window_ms: 2_000,
            core: None,
            chaos_kill: None,
            announce: true,
            help: false,
        }
    }
}

/// Parse `htpar serve` arguments (everything after the subcommand).
pub fn parse_serve(argv: &[String]) -> Result<ServeSpec, String> {
    let mut spec = ServeSpec::default();
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--listen" => {
                spec.listen = value(argv, i, "--listen")?;
                i += 2;
            }
            "--agents" => {
                spec.agents = value(argv, i, "--agents")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                i += 2;
            }
            "--local-cluster" => {
                spec.local_cluster = value(argv, i, "--local-cluster")?
                    .parse()
                    .map_err(|_| "--local-cluster needs a count".to_string())?;
                i += 2;
            }
            "-j" | "--jobs-per-agent" => {
                spec.jobs_per_agent = value(argv, i, "-j")?
                    .parse()
                    .map_err(|_| "-j needs a number".to_string())?;
                i += 2;
            }
            "--scheduler" => {
                let v = value(argv, i, "--scheduler")?;
                spec.policy = SchedPolicy::parse(&v).ok_or_else(|| {
                    format!("unknown scheduler {v:?} (want fifo, fair, or priority)")
                })?;
                i += 2;
            }
            "--max-queue" => {
                spec.max_queue = value(argv, i, "--max-queue")?
                    .parse()
                    .map_err(|_| "--max-queue needs a count".to_string())?;
                i += 2;
            }
            "--oversub" => {
                spec.oversub = value(argv, i, "--oversub")?
                    .parse()
                    .map_err(|_| "--oversub needs a number".to_string())?;
                i += 2;
            }
            "--joblog-dir" => {
                spec.joblog_dir = Some(PathBuf::from(value(argv, i, "--joblog-dir")?));
                i += 2;
            }
            "--state-dir" => {
                spec.state_dir = Some(PathBuf::from(value(argv, i, "--state-dir")?));
                i += 2;
            }
            "--detach-ttl" => {
                spec.detach_ttl = value(argv, i, "--detach-ttl")?
                    .parse()
                    .map_err(|_| "--detach-ttl needs seconds".to_string())?;
                i += 2;
            }
            "--journal-compact" => {
                spec.journal_compact_every = value(argv, i, "--journal-compact")?
                    .parse()
                    .map_err(|_| "--journal-compact needs a count".to_string())?;
                i += 2;
            }
            "--max-sessions" => {
                spec.max_sessions = Some(
                    value(argv, i, "--max-sessions")?
                        .parse()
                        .map_err(|_| "--max-sessions needs a count".to_string())?,
                );
                i += 2;
            }
            "--heartbeat-ms" => {
                spec.heartbeat_ms = value(argv, i, "--heartbeat-ms")?
                    .parse()
                    .map_err(|_| "--heartbeat-ms needs milliseconds".to_string())?;
                i += 2;
            }
            "--lease-ms" => {
                spec.lease_window_ms = value(argv, i, "--lease-ms")?
                    .parse()
                    .map_err(|_| "--lease-ms needs milliseconds".to_string())?;
                i += 2;
            }
            "--net-core" => {
                let v = value(argv, i, "--net-core")?;
                spec.core =
                    Some(NetCore::parse(&v).ok_or_else(|| {
                        format!("unknown net core {v:?} (want reactor or threaded)")
                    })?);
                i += 2;
            }
            "--chaos-kill-agent" => {
                spec.chaos_kill = Some(parse_chaos(&value(argv, i, "--chaos-kill-agent")?)?);
                i += 2;
            }
            "--quiet" => {
                spec.announce = false;
                i += 1;
            }
            "--help" | "-h" => {
                spec.help = true;
                return Ok(spec);
            }
            other => {
                if let Some(n) = other.strip_prefix("-j") {
                    if !n.is_empty() && n.bytes().all(|b| b.is_ascii_digit()) {
                        spec.jobs_per_agent =
                            n.parse().map_err(|_| "-j needs a number".to_string())?;
                        i += 1;
                        continue;
                    }
                }
                return Err(format!("unknown option {other}"));
            }
        }
    }
    if spec.agents.is_empty() && spec.local_cluster == 0 {
        return Err("one of --agents or --local-cluster is required".to_string());
    }
    if spec.chaos_kill.is_some() && spec.local_cluster == 0 {
        return Err("--chaos-kill-agent requires --local-cluster".to_string());
    }
    if let Some((idx, _)) = spec.chaos_kill {
        if idx >= spec.local_cluster && spec.local_cluster > 0 {
            return Err(format!(
                "--chaos-kill-agent index {idx} out of range for --local-cluster {}",
                spec.local_cluster
            ));
        }
    }
    if spec.oversub == 0 {
        return Err("--oversub must be at least 1".to_string());
    }
    Ok(spec)
}

fn run_serve(argv: &[String]) -> i32 {
    let spec = match parse_serve(argv) {
        Ok(spec) => spec,
        Err(msg) => return usage_error(&format!("serve: {msg}"), SERVE_USAGE),
    };
    if spec.help {
        println!("{SERVE_USAGE}");
        return 0;
    }
    if let Some(core) = spec.core {
        std::env::set_var(ENV_NET_CORE, core.as_str());
    }
    let mut cluster = if spec.local_cluster > 0 {
        match LocalCluster::spawn_self(spec.local_cluster) {
            Ok(cluster) => Some(cluster),
            Err(e) => {
                eprintln!("htpar serve: spawning local cluster: {e}");
                return 1;
            }
        }
    } else {
        None
    };
    let agents = match &cluster {
        Some(cluster) => cluster.specs.clone(),
        None => spec.agents.clone(),
    };

    let mut config = ServeConfig::new(agents, spec.listen.clone());
    config.jobs_per_agent = spec.jobs_per_agent;
    config.policy = spec.policy;
    config.max_queue_per_tenant = spec.max_queue;
    config.oversub = spec.oversub;
    config.joblog_dir = spec.joblog_dir.clone();
    config.state_dir = spec.state_dir.clone();
    config.detach_ttl = if spec.detach_ttl == 0 {
        None
    } else {
        Some(Duration::from_secs(spec.detach_ttl))
    };
    config.journal_compact_every = spec.journal_compact_every;
    config.max_sessions = spec.max_sessions;
    config.heartbeat_ms = spec.heartbeat_ms;
    config.lease_window_ms = spec.lease_window_ms;
    config.bus = bus_from_env();

    let server = match PilotServer::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("htpar serve: {e}");
            return 1;
        }
    };
    if spec.announce {
        match server.local_spec() {
            Ok(addr) => {
                println!("{SERVE_ANNOUNCE_PREFIX} {addr}");
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                eprintln!("htpar serve: {e}");
                return 1;
            }
        }
    }

    let mut chaos_cb: Option<Box<dyn FnMut(u64) + '_>> = match (spec.chaos_kill, cluster.as_mut()) {
        (Some((idx, at)), Some(cluster)) => {
            let mut fired = false;
            let cluster: &mut LocalCluster = cluster;
            Some(Box::new(move |done: u64| {
                if !fired && done >= at {
                    fired = true;
                    eprintln!("htpar serve: chaos: killing agent {idx} at done={done}");
                    cluster.kill(idx);
                }
            }))
        }
        _ => None,
    };
    let outcome = server.run(chaos_cb.as_deref_mut().map(|f| f as &mut dyn FnMut(u64)));
    drop(chaos_cb);
    let code = match outcome {
        Ok(outcome) => {
            print_serve_summary(&outcome);
            0
        }
        Err(e) => {
            eprintln!("htpar serve: {e}");
            1
        }
    };
    if let Some(mut cluster) = cluster {
        cluster.join();
    }
    code
}

fn print_serve_summary(outcome: &ServeOutcome) {
    eprintln!(
        "htpar serve: {} session(s), {} task(s) completed in {:.2}s, {} released, \
         {} duplicate(s), {} submit(s) rejected",
        outcome.sessions,
        outcome.completed,
        outcome.wall.as_secs_f64(),
        outcome.released,
        outcome.duplicates,
        outcome.rejected_submits,
    );
    for tenant in &outcome.tenants {
        eprintln!(
            "  tenant {}: {} done, {} rejected submit(s)",
            tenant.name, tenant.completed, tenant.rejected_submits
        );
    }
    for (idx, agent) in outcome.agents.iter().enumerate() {
        let mut line = format!("  agent {idx} ({}): {} done", agent.name, agent.done);
        if agent.lost {
            line.push_str(" [lost]");
        }
        if let Some(error) = &agent.error {
            line.push_str(&format!(" [error: {error}]"));
        }
        eprintln!("{line}");
    }
}

// --------------------------------------------------------------- submit

/// Parsed `htpar submit` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitSpec {
    pub connect: String,
    pub tenant: String,
    pub weight: u32,
    pub priority: u32,
    pub payload: Payload,
    pub batch: usize,
    pub retry_max: u32,
    pub detach: Option<u64>,
    pub reattach: Option<u64>,
    /// `--dag FILE`: client-side ready-set release over the session.
    pub dag: Option<PathBuf>,
    /// `--make`: the `--dag` file is make-style `target: deps` lines,
    /// rendered through the command template.
    pub make: bool,
    pub command: String,
    pub values: Option<Vec<String>>,
    pub help: bool,
}

impl Default for SubmitSpec {
    fn default() -> Self {
        SubmitSpec {
            connect: String::new(),
            tenant: "default".to_string(),
            weight: 1,
            priority: 0,
            payload: Payload::Shell,
            batch: 1_000,
            retry_max: 10,
            detach: None,
            reattach: None,
            dag: None,
            make: false,
            command: String::new(),
            values: None,
            help: false,
        }
    }
}

/// Parse `htpar submit` arguments (everything after the subcommand).
pub fn parse_submit(argv: &[String]) -> Result<SubmitSpec, String> {
    let mut spec = SubmitSpec::default();
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--connect" => {
                spec.connect = value(argv, i, "--connect")?;
                i += 2;
            }
            "--tenant" => {
                spec.tenant = value(argv, i, "--tenant")?;
                i += 2;
            }
            "--weight" => {
                spec.weight = value(argv, i, "--weight")?
                    .parse()
                    .map_err(|_| "--weight needs a number".to_string())?;
                i += 2;
            }
            "--priority" => {
                spec.priority = value(argv, i, "--priority")?
                    .parse()
                    .map_err(|_| "--priority needs a number".to_string())?;
                i += 2;
            }
            "--payload" => {
                spec.payload = parse_payload(&value(argv, i, "--payload")?)?;
                i += 2;
            }
            "--batch" => {
                spec.batch = value(argv, i, "--batch")?
                    .parse()
                    .map_err(|_| "--batch needs a count".to_string())?;
                i += 2;
            }
            "--retry-max" => {
                spec.retry_max = value(argv, i, "--retry-max")?
                    .parse()
                    .map_err(|_| "--retry-max needs a count".to_string())?;
                i += 2;
            }
            "--detach" => {
                spec.detach = Some(
                    value(argv, i, "--detach")?
                        .parse()
                        .map_err(|_| "--detach needs a numeric key".to_string())?,
                );
                i += 2;
            }
            "--reattach" => {
                spec.reattach = Some(
                    value(argv, i, "--reattach")?
                        .parse()
                        .map_err(|_| "--reattach needs a numeric key".to_string())?,
                );
                i += 2;
            }
            "--dag" => {
                spec.dag = Some(PathBuf::from(value(argv, i, "--dag")?));
                i += 2;
            }
            "--make" => {
                spec.make = true;
                i += 1;
            }
            "--help" | "-h" => {
                spec.help = true;
                return Ok(spec);
            }
            other => {
                if other.starts_with("--") {
                    return Err(format!("unknown option {other}"));
                }
                break;
            }
        }
    }
    let (command, values) = parse_command_tail(argv, i);
    spec.command = command;
    spec.values = values;
    if spec.detach.is_some() && spec.reattach.is_some() {
        return Err("--detach and --reattach are mutually exclusive".to_string());
    }
    if spec.make && spec.dag.is_none() {
        return Err("--make requires --dag FILE".to_string());
    }
    if spec.dag.is_some() {
        if spec.detach.is_some() || spec.reattach.is_some() {
            // The client *is* the scheduler for a DAG session; there is
            // nothing to hand to the pilot while detached.
            return Err("--dag needs a live session; it cannot --detach or --reattach".to_string());
        }
        if spec.values.is_some() {
            return Err("--dag and ::: are mutually exclusive".to_string());
        }
        if spec.make && spec.command.is_empty() {
            return Err("--dag --make needs a command template ({} = target)".to_string());
        }
        if !spec.make && !spec.command.is_empty() {
            return Err(
                "--dag FILE supplies the commands; drop the command words (or add --make)"
                    .to_string(),
            );
        }
    } else if spec.reattach.is_some() {
        if !spec.command.is_empty() || spec.values.is_some() {
            return Err("--reattach collects results; it takes no command or args".to_string());
        }
    } else if spec.command.is_empty() {
        return Err("a command template is required".to_string());
    }
    if spec.connect.is_empty() {
        return Err("--connect is required".to_string());
    }
    if spec.batch == 0 {
        return Err("--batch must be at least 1".to_string());
    }
    Ok(spec)
}

/// Backoff before the `attempt`-th backpressure resubmit: 10 ms base,
/// doubling per attempt, capped at the same `2^10` multiplier the
/// in-process retry path uses (`htpar_core::runner::retry_backoff`).
fn submit_backoff(attempt: u32) -> Duration {
    htpar_core::runner::retry_backoff(Duration::from_millis(10), attempt)
}

fn run_submit(argv: &[String]) -> i32 {
    let spec = match parse_submit(argv) {
        Ok(spec) => spec,
        Err(msg) => return usage_error(&format!("submit: {msg}"), SUBMIT_USAGE),
    };
    if spec.help {
        println!("{SUBMIT_USAGE}");
        return 0;
    }
    if let Some(key) = spec.reattach {
        return run_reattach(&spec, key);
    }
    if let Some(path) = &spec.dag {
        let make = spec.make.then_some(spec.command.as_str());
        let dag = match load_dag(path, make) {
            Ok(dag) => dag,
            Err(msg) => {
                eprintln!("htpar submit: {msg}");
                return 1;
            }
        };
        return run_submit_dag(&spec, &dag);
    }
    let inputs: Vec<Vec<String>> = match &spec.values {
        Some(values) => values.iter().map(|v| vec![v.clone()]).collect(),
        None => {
            use std::io::BufRead;
            let stdin = std::io::stdin();
            match stdin.lock().lines().collect::<std::io::Result<Vec<_>>>() {
                Ok(lines) => lines.into_iter().map(|l| vec![l]).collect(),
                Err(e) => {
                    eprintln!("htpar submit: reading stdin: {e}");
                    return 1;
                }
            }
        }
    };
    if inputs.is_empty() {
        eprintln!("htpar submit: no input arguments");
        return 1;
    }

    let mut config = SessionConfig::new(spec.connect.clone(), spec.tenant.clone());
    config.weight = spec.weight;
    config.priority = spec.priority;
    config.payload = spec.payload;
    config.command = spec.command.clone();
    let mut client = match SessionClient::connect(config) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("htpar submit: {e}");
            return 1;
        }
    };
    let started = std::time::Instant::now();
    for batch in inputs.chunks(spec.batch) {
        // Admission refusals are backpressure: back off with a capped
        // exponential schedule and resubmit the same batch. A bounded
        // retry count turns a wedged tenant queue into a typed error
        // instead of an infinite spin.
        let mut attempt = 0u32;
        loop {
            match client.submit(batch) {
                Ok(verdict) if verdict.accepted => break,
                Ok(verdict) => {
                    if attempt >= spec.retry_max {
                        eprintln!(
                            "htpar submit: tenant queue still full after {} \
                             backpressure retries (last refusal: {}); giving up",
                            spec.retry_max, verdict.reason
                        );
                        client.abort();
                        return 2;
                    }
                    std::thread::sleep(submit_backoff(attempt));
                    attempt += 1;
                }
                Err(e) => {
                    eprintln!("htpar submit: {e}");
                    return 1;
                }
            }
        }
    }
    let submitted = client.submitted();
    if let Some(key) = spec.detach {
        let queued = match client.detach(key) {
            Ok(queued) => queued,
            Err(e) => {
                eprintln!("htpar submit: {e}");
                return 1;
            }
        };
        eprintln!(
            "htpar submit: detached after {:.2}s: {submitted} task(s) accepted, \
             {queued} still pending; collect with --reattach {key}",
            started.elapsed().as_secs_f64()
        );
        return 0;
    }
    let mut failed = 0u64;
    let completed = match drain_to_done(&mut client, &mut failed) {
        Ok(completed) => completed,
        Err(e) => {
            eprintln!("htpar submit: {e}");
            return 1;
        }
    };
    eprintln!(
        "htpar submit: {completed}/{submitted} task(s) completed in {:.2}s ({failed} failed)",
        started.elapsed().as_secs_f64()
    );
    if completed == submitted {
        0
    } else {
        1
    }
}

/// `htpar submit --dag`: client-side ready-set release. The pilot sees
/// ordinary Submit batches over a bare `{}` template; the client
/// withholds each task until its dependencies' `DoneBatch` records
/// arrive, so running a graph needs no protocol change. Session seqs
/// are assigned in submission order, so `node_for[s - 1]` maps a
/// session seq back to the DAG node it carried.
fn run_submit_dag(spec: &SubmitSpec, dag: &Dag) -> i32 {
    let mut config = SessionConfig::new(spec.connect.clone(), spec.tenant.clone());
    config.weight = spec.weight;
    config.priority = spec.priority;
    config.payload = spec.payload;
    config.command = "{}".to_string();
    let mut client = match SessionClient::connect(config) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("htpar submit: {e}");
            return 1;
        }
    };
    let started = std::time::Instant::now();
    let mut ready = ReadySet::new(dag);
    let mut node_for: Vec<u64> = Vec::new();
    let mut to_submit: Vec<u64> = ready.take_ready();
    loop {
        let mut at = 0;
        while at < to_submit.len() {
            let end = (at + spec.batch).min(to_submit.len());
            let chunk = &to_submit[at..end];
            let batch: Vec<Vec<String>> = chunk
                .iter()
                .map(|&seq| vec![dag.node((seq - 1) as usize).command.clone()])
                .collect();
            // Same backpressure discipline as the flat path: capped
            // exponential backoff, bounded retries.
            let mut attempt = 0u32;
            loop {
                match client.submit(&batch) {
                    Ok(verdict) if verdict.accepted => break,
                    Ok(verdict) => {
                        if attempt >= spec.retry_max {
                            eprintln!(
                                "htpar submit: tenant queue still full after {} \
                                 backpressure retries (last refusal: {}); giving up",
                                spec.retry_max, verdict.reason
                            );
                            client.abort();
                            return 2;
                        }
                        std::thread::sleep(submit_backoff(attempt));
                        attempt += 1;
                    }
                    Err(e) => {
                        eprintln!("htpar submit: {e}");
                        return 1;
                    }
                }
            }
            node_for.extend_from_slice(chunk);
            at = end;
        }
        to_submit.clear();
        if ready.is_finished() {
            break;
        }
        let recs = match client.recv() {
            Ok(ClientEvent::Done(recs)) => recs,
            Ok(ClientEvent::SessionDone { .. }) => break,
            Err(e) => {
                eprintln!("htpar submit: {e}");
                return 1;
            }
        };
        for rec in &recs {
            let Some(&node_seq) = node_for.get((rec.seq - 1) as usize) else {
                continue;
            };
            let ok = rec.exitval == 0 && rec.signal == 0;
            to_submit.extend(ready.complete(node_seq, ok).newly_ready);
        }
    }
    let submitted = client.submitted();
    let mut late_failed = 0u64;
    let completed = match drain_to_done(&mut client, &mut late_failed) {
        Ok(completed) => completed,
        Err(e) => {
            eprintln!("htpar submit: {e}");
            return 1;
        }
    };
    let (_done, failed, skipped, _pre) = ready.counts();
    eprintln!(
        "htpar submit: dag: {completed}/{submitted} task(s) completed in {:.2}s \
         ({failed} failed, {skipped} skipped-dep-failed)",
        started.elapsed().as_secs_f64()
    );
    if failed == 0 && skipped == 0 && completed == submitted {
        0
    } else {
        1
    }
}

/// Send the client-side `SessionDone` and drain completions until the
/// pilot's final frame, counting nonzero exits into `failed`.
fn drain_to_done(client: &mut SessionClient, failed: &mut u64) -> htpar_net::Result<u64> {
    client.finish_async()?;
    loop {
        match client.recv()? {
            ClientEvent::Done(recs) => {
                *failed += recs.iter().filter(|r| r.exitval != 0).count() as u64;
            }
            ClientEvent::SessionDone { completed, .. } => return Ok(completed),
        }
    }
}

/// `htpar submit --reattach KEY`: adopt a detached session and collect
/// its results (replayed history first, then live completions).
fn run_reattach(spec: &SubmitSpec, key: u64) -> i32 {
    let mut config = SessionConfig::new(spec.connect.clone(), spec.tenant.clone());
    config.payload = spec.payload;
    let client = match SessionClient::reattach(config, key) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("htpar submit: {e}");
            return 1;
        }
    };
    let started = std::time::Instant::now();
    let submitted = client.submitted();
    let mut failed = 0u64;
    let completed = match client.collect(|recs| {
        failed += recs.iter().filter(|r| r.exitval != 0).count() as u64;
    }) {
        Ok(completed) => completed,
        Err(e) => {
            eprintln!("htpar submit: {e}");
            return 1;
        }
    };
    eprintln!(
        "htpar submit: reattached: {completed}/{submitted} task(s) collected in {:.2}s \
         ({failed} failed)",
        started.elapsed().as_secs_f64()
    );
    if completed == submitted {
        0
    } else {
        1
    }
}

fn usage_error(msg: &str, usage: &str) -> i32 {
    eprintln!("htpar: {msg}");
    eprintln!("{usage}");
    255
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn drive_grammar_parses() {
        let spec = parse_drive(&argv(
            "--local-cluster 4 -j 16 --joblog run.log --resume --payload noop \
             --chaos-kill-agent 2@500 task {} ::: a b c",
        ))
        .unwrap();
        assert_eq!(spec.local_cluster, 4);
        assert_eq!(spec.jobs_per_agent, 16);
        assert_eq!(spec.joblog, Some(PathBuf::from("run.log")));
        assert!(spec.resume);
        assert_eq!(spec.payload, Payload::Noop);
        assert_eq!(spec.chaos_kill, Some((2, 500)));
        assert_eq!(spec.command, "task {}");
        assert_eq!(
            spec.values,
            Some(vec!["a".to_string(), "b".to_string(), "c".to_string()])
        );
    }

    #[test]
    fn drive_attached_jobs_form_and_unknown_flags() {
        let spec = parse_drive(&argv("--local-cluster 2 -j16 --joblog run.log task {}")).unwrap();
        assert_eq!(spec.jobs_per_agent, 16);
        assert_eq!(spec.joblog, Some(PathBuf::from("run.log")));
        assert_eq!(spec.command, "task {}");
        let err = parse_drive(&argv("--local-cluster 2 --jobslog run.log task {}")).unwrap_err();
        assert!(err.contains("unknown option --jobslog"), "{err}");
    }

    #[test]
    fn drive_agents_list_splits_on_commas() {
        let spec = parse_drive(&argv("--agents n1:4511,n2:4511 task {}")).unwrap();
        assert_eq!(spec.agents, vec!["n1:4511", "n2:4511"]);
        assert_eq!(spec.values, None, "stdin is the input source");
    }

    #[test]
    fn drive_requires_agents_and_command() {
        assert!(parse_drive(&argv("task {}")).is_err());
        assert!(parse_drive(&argv("--local-cluster 2")).is_err());
    }

    #[test]
    fn chaos_requires_local_cluster_and_range() {
        assert!(parse_drive(&argv("--agents a --chaos-kill-agent 0@5 task {}")).is_err());
        assert!(parse_drive(&argv("--local-cluster 2 --chaos-kill-agent 2@5 task {}")).is_err());
        assert!(parse_drive(&argv("--local-cluster 2 --chaos-kill-agent 1@5 task {}")).is_ok());
    }

    #[test]
    fn serve_grammar_parses() {
        let spec = parse_serve(&argv(
            "--local-cluster 4 -j 8 --scheduler priority --max-queue 500 --oversub 2 \
             --joblog-dir logs --max-sessions 3 --heartbeat-ms 100 --lease-ms 900 \
             --net-core threaded --chaos-kill-agent 1@50 --quiet",
        ))
        .unwrap();
        assert_eq!(spec.local_cluster, 4);
        assert_eq!(spec.jobs_per_agent, 8);
        assert_eq!(spec.policy, SchedPolicy::Priority);
        assert_eq!(spec.max_queue, 500);
        assert_eq!(spec.oversub, 2);
        assert_eq!(spec.joblog_dir, Some(PathBuf::from("logs")));
        assert_eq!(spec.max_sessions, Some(3));
        assert_eq!(spec.heartbeat_ms, 100);
        assert_eq!(spec.lease_window_ms, 900);
        assert_eq!(spec.core, Some(NetCore::Threaded));
        assert_eq!(spec.chaos_kill, Some((1, 50)));
        assert!(!spec.announce);
    }

    #[test]
    fn serve_durability_flags_parse() {
        let spec =
            parse_serve(&argv("--local-cluster 2 --state-dir state --detach-ttl 30")).unwrap();
        assert_eq!(spec.state_dir, Some(PathBuf::from("state")));
        assert_eq!(spec.detach_ttl, 30);
        let spec = parse_serve(&argv("--local-cluster 2")).unwrap();
        assert_eq!(spec.state_dir, None, "journaling is opt-in");
        assert_eq!(spec.detach_ttl, 3_600, "default TTL is one hour");
        let spec = parse_serve(&argv("--local-cluster 2 --detach-ttl 0")).unwrap();
        assert_eq!(spec.detach_ttl, 0, "0 holds detached sessions forever");
        let spec = parse_serve(&argv("--local-cluster 2 --journal-compact 8")).unwrap();
        assert_eq!(spec.journal_compact_every, 8);
        let spec = parse_serve(&argv("--local-cluster 2")).unwrap();
        assert_eq!(spec.journal_compact_every, 64, "compaction defaults on");
        assert!(parse_serve(&argv("--local-cluster 2 --detach-ttl soon")).is_err());
        assert!(parse_serve(&argv("--local-cluster 2 --state-dir")).is_err());
    }

    #[test]
    fn serve_defaults_and_validation() {
        let spec = parse_serve(&argv("--agents n1:4511,n2:4511")).unwrap();
        assert_eq!(spec.agents, vec!["n1:4511", "n2:4511"]);
        assert_eq!(spec.listen, "127.0.0.1:0");
        assert_eq!(spec.policy, SchedPolicy::Fair);
        assert_eq!(spec.max_queue, 100_000);
        assert!(spec.announce);
        assert!(
            parse_serve(&argv("")).is_err(),
            "agents or cluster required"
        );
        assert!(parse_serve(&argv("--agents a --chaos-kill-agent 0@5")).is_err());
        assert!(parse_serve(&argv("--local-cluster 2 --chaos-kill-agent 2@5")).is_err());
        assert!(parse_serve(&argv("--local-cluster 2 --oversub 0")).is_err());
        let err = parse_serve(&argv("--local-cluster 2 --scheduler lifo")).unwrap_err();
        assert!(err.contains("unknown scheduler"), "{err}");
        let err = parse_serve(&argv("--local-cluster 2 extra")).unwrap_err();
        assert!(err.contains("unknown option"), "{err}");
    }

    #[test]
    fn submit_grammar_parses() {
        let spec = parse_submit(&argv(
            "--connect 127.0.0.1:4511 --tenant ml --weight 4 --priority 2 \
             --payload sleep:100 --batch 50 task {} ::: a b",
        ))
        .unwrap();
        assert_eq!(spec.connect, "127.0.0.1:4511");
        assert_eq!(spec.tenant, "ml");
        assert_eq!(spec.weight, 4);
        assert_eq!(spec.priority, 2);
        assert_eq!(spec.payload, Payload::SleepUs(100));
        assert_eq!(spec.batch, 50);
        assert_eq!(spec.command, "task {}");
        assert_eq!(spec.values, Some(vec!["a".to_string(), "b".to_string()]));
    }

    #[test]
    fn submit_requires_connect_and_command() {
        let spec = parse_submit(&argv("--connect unix:/tmp/p.sock task {}")).unwrap();
        assert_eq!(spec.tenant, "default");
        assert_eq!(spec.values, None, "stdin is the input source");
        assert!(parse_submit(&argv("task {}")).is_err(), "connect required");
        assert!(
            parse_submit(&argv("--connect a:1")).is_err(),
            "command required"
        );
        assert!(parse_submit(&argv("--connect a:1 --batch 0 task {}")).is_err());
        let err = parse_submit(&argv("--connect a:1 --wieght 2 task {}")).unwrap_err();
        assert!(err.contains("unknown option --wieght"), "{err}");
    }

    #[test]
    fn submit_detach_reattach_grammar() {
        let spec = parse_submit(&argv("--connect a:1 --detach 42 --retry-max 3 task {}")).unwrap();
        assert_eq!(spec.detach, Some(42));
        assert_eq!(spec.reattach, None);
        assert_eq!(spec.retry_max, 3);
        let spec = parse_submit(&argv("--connect a:1 --tenant ml --reattach 42")).unwrap();
        assert_eq!(spec.reattach, Some(42));
        assert!(spec.command.is_empty(), "reattach takes no command");
        let spec = parse_submit(&argv("--connect a:1 task {}")).unwrap();
        assert_eq!(spec.retry_max, 10, "default backpressure retry cap");
        let err = parse_submit(&argv("--connect a:1 --detach 1 --reattach 2 task {}")).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = parse_submit(&argv("--connect a:1 --reattach 2 task {}")).unwrap_err();
        assert!(err.contains("no command"), "{err}");
        assert!(parse_submit(&argv("--connect a:1 --detach soon task {}")).is_err());
        assert!(parse_submit(&argv("--connect a:1 --retry-max many task {}")).is_err());
    }

    #[test]
    fn submit_backoff_schedule_doubles_then_caps() {
        assert_eq!(submit_backoff(0), Duration::from_millis(10));
        assert_eq!(submit_backoff(1), Duration::from_millis(20));
        assert_eq!(submit_backoff(2), Duration::from_millis(40));
        assert_eq!(submit_backoff(10), Duration::from_millis(10 * 1024));
        assert_eq!(
            submit_backoff(11),
            Duration::from_millis(10 * 1024),
            "the exponent caps at 2^10"
        );
        assert_eq!(submit_backoff(u32::MAX), Duration::from_millis(10 * 1024));
    }

    #[test]
    fn net_core_grammar() {
        let spec = parse_drive(&argv("--local-cluster 2 --net-core threaded task {}")).unwrap();
        assert_eq!(spec.core, Some(NetCore::Threaded));
        let spec = parse_drive(&argv("--local-cluster 2 --net-core reactor task {}")).unwrap();
        assert_eq!(spec.core, Some(NetCore::Reactor));
        let spec = parse_drive(&argv("--local-cluster 2 task {}")).unwrap();
        assert_eq!(spec.core, None, "unset defers to HTPAR_NET_CORE");
        assert!(parse_drive(&argv("--local-cluster 2 --net-core epoll task {}")).is_err());
    }

    #[test]
    fn payload_grammar() {
        assert_eq!(parse_payload("shell").unwrap(), Payload::Shell);
        assert_eq!(parse_payload("noop").unwrap(), Payload::Noop);
        assert_eq!(parse_payload("sleep:250").unwrap(), Payload::SleepUs(250));
        assert!(parse_payload("sleep:x").is_err());
        assert!(parse_payload("exec").is_err());
    }

    #[test]
    fn command_tail_is_shared_between_drive_and_submit() {
        // The same tail must parse identically through both grammars.
        for tail in ["task {} ::: a b c", "task {}", "wc -l {} ::: x"] {
            let d = parse_drive(&argv(&format!("--local-cluster 1 {tail}"))).unwrap();
            let s = parse_submit(&argv(&format!("--connect a:1 {tail}"))).unwrap();
            assert_eq!(d.command, s.command, "{tail}");
            assert_eq!(d.values, s.values, "{tail}");
        }
        // `:::` with no values is an empty (not absent) source.
        let (cmd, values) = parse_command_tail(&argv("task {} :::"), 0);
        assert_eq!(cmd, "task {}");
        assert_eq!(values, Some(vec![]));
        let (cmd, values) = parse_command_tail(&argv(""), 0);
        assert!(cmd.is_empty());
        assert_eq!(values, None);
    }

    #[test]
    fn drive_dag_grammar() {
        let spec = parse_drive(&argv("--local-cluster 2 --dag graph.dag")).unwrap();
        assert_eq!(spec.dag, Some(PathBuf::from("graph.dag")));
        assert!(!spec.make);
        assert!(spec.command.is_empty());
        let spec = parse_drive(&argv("--local-cluster 2 --dag deps.mk --make render {}")).unwrap();
        assert!(spec.make);
        assert_eq!(spec.command, "render {}");
        let err = parse_drive(&argv("--local-cluster 2 --dag g.dag task {}")).unwrap_err();
        assert!(err.contains("supplies the commands"), "{err}");
        let err = parse_drive(&argv("--local-cluster 2 --dag g.dag ::: a b")).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = parse_drive(&argv("--local-cluster 2 --dag deps.mk --make")).unwrap_err();
        assert!(err.contains("command template"), "{err}");
        let err = parse_drive(&argv("--local-cluster 2 --make task {}")).unwrap_err();
        assert!(err.contains("requires --dag"), "{err}");
    }

    #[test]
    fn submit_dag_grammar() {
        let spec = parse_submit(&argv("--connect a:1 --dag graph.dag --batch 10")).unwrap();
        assert_eq!(spec.dag, Some(PathBuf::from("graph.dag")));
        assert_eq!(spec.batch, 10);
        let spec = parse_submit(&argv("--connect a:1 --dag deps.mk --make render {}")).unwrap();
        assert!(spec.make);
        assert_eq!(spec.command, "render {}");
        let err = parse_submit(&argv("--connect a:1 --dag g.dag task {}")).unwrap_err();
        assert!(err.contains("supplies the commands"), "{err}");
        let err = parse_submit(&argv("--connect a:1 --dag g.dag --detach 7")).unwrap_err();
        assert!(err.contains("live session"), "{err}");
        let err = parse_submit(&argv("--connect a:1 --dag g.dag --reattach 7")).unwrap_err();
        assert!(err.contains("live session"), "{err}");
        let err = parse_submit(&argv("--connect a:1 --make task {}")).unwrap_err();
        assert!(err.contains("requires --dag"), "{err}");
    }

    #[test]
    fn dag_cmd_grammar() {
        let spec = parse_dag(&argv("graph.dag -j 8 --joblog run.log --resume")).unwrap();
        assert_eq!(spec.file, Some(PathBuf::from("graph.dag")));
        assert_eq!(spec.jobs, Some(8));
        assert_eq!(spec.joblog, Some(PathBuf::from("run.log")));
        assert!(spec.resume);
        assert!(spec.shell);
        let spec = parse_dag(&argv("-j4 --no-shell --dry-run graph.dag")).unwrap();
        assert_eq!(spec.jobs, Some(4));
        assert!(!spec.shell);
        assert!(spec.dry_run);
        let spec = parse_dag(&argv("deps.mk --make render_{}")).unwrap();
        assert_eq!(spec.make, Some("render_{}".to_string()));
        assert!(parse_dag(&argv("")).is_err(), "file required");
        assert!(parse_dag(&argv("a.dag b.dag")).is_err(), "one file only");
        assert!(
            parse_dag(&argv("a.dag --resume")).is_err(),
            "resume needs a joblog"
        );
        let err = parse_dag(&argv("a.dag --jobslog x")).unwrap_err();
        assert!(err.contains("unknown option"), "{err}");
    }

    #[test]
    fn dispatch_ignores_classic_invocations() {
        assert_eq!(dispatch(&argv("-j8 echo {} ::: 1 2")), None);
        assert_eq!(dispatch(&[]), None);
    }
}
