//! The `htpar` binary.

use std::io::Write;

use htpar_cli::args::{parse_args, USAGE};
use htpar_cli::exec::{execute_observed, exit_code};
use htpar_telemetry::{EventBus, JsonlWriter};

/// `HTPAR_TELEMETRY_JSONL=PATH` attaches a bus + [`JsonlWriter`] so any
/// CLI run leaves a machine-readable event trajectory (same schema as
/// `fig3_launch_rate --jsonl`; see DESIGN.md §10). Unset, the engine
/// runs unobserved and the emit path costs nothing.
fn telemetry_from_env() -> Option<std::sync::Arc<EventBus>> {
    let path = std::env::var("HTPAR_TELEMETRY_JSONL").ok()?;
    match JsonlWriter::create(std::path::Path::new(&path)) {
        Ok(writer) => {
            let bus = EventBus::shared();
            bus.attach(writer);
            Some(bus)
        }
        Err(e) => {
            eprintln!("htpar: cannot open telemetry file {path}: {e}");
            None
        }
    }
}

fn main() {
    // Agent-mode re-exec hook: `--local-cluster` children become node
    // agents here and never reach the CLI parser.
    htpar_net::local::maybe_become_agent();

    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Some(code) = htpar_cli::netcmd::dispatch(&argv) {
        std::process::exit(code);
    }
    let spec = match parse_args(&argv) {
        Ok(spec) => spec,
        Err(msg) => {
            eprintln!("htpar: {msg}");
            std::process::exit(255);
        }
    };
    if spec.help {
        println!("{USAGE}");
        return;
    }
    if spec.version {
        println!("htpar {}", env!("CARGO_PKG_VERSION"));
        return;
    }

    let stdin = std::io::BufReader::new(std::io::stdin());
    let bus = telemetry_from_env();
    let result = execute_observed(
        spec,
        stdin,
        |out, err| {
            // Grouped per-job output, like GNU's default --group.
            if !out.is_empty() {
                let stdout = std::io::stdout();
                let mut lock = stdout.lock();
                let _ = lock.write_all(out.as_bytes());
            }
            if !err.is_empty() {
                let stderr = std::io::stderr();
                let mut lock = stderr.lock();
                let _ = lock.write_all(err.as_bytes());
            }
        },
        bus,
    );

    match result {
        Ok(report) => std::process::exit(exit_code(&report)),
        Err(e) => {
            eprintln!("htpar: {e}");
            std::process::exit(255);
        }
    }
}
