//! The `htpar` binary.

use std::io::Write;

use htpar_cli::args::{parse_args, USAGE};
use htpar_cli::exec::{execute, exit_code};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let spec = match parse_args(&argv) {
        Ok(spec) => spec,
        Err(msg) => {
            eprintln!("htpar: {msg}");
            std::process::exit(255);
        }
    };
    if spec.help {
        println!("{USAGE}");
        return;
    }
    if spec.version {
        println!("htpar {}", env!("CARGO_PKG_VERSION"));
        return;
    }

    let stdin = std::io::BufReader::new(std::io::stdin());
    let result = execute(spec, stdin, |out, err| {
        // Grouped per-job output, like GNU's default --group.
        if !out.is_empty() {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            let _ = lock.write_all(out.as_bytes());
        }
        if !err.is_empty() {
            let stderr = std::io::stderr();
            let mut lock = stderr.lock();
            let _ = lock.write_all(err.as_bytes());
        }
    });

    match result {
        Ok(report) => std::process::exit(exit_code(&report)),
        Err(e) => {
            eprintln!("htpar: {e}");
            std::process::exit(255);
        }
    }
}
