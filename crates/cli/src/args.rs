//! Command-line parsing for `htpar`.
//!
//! Grammar (a faithful subset of `parallel`'s):
//!
//! ```text
//! htpar [OPTIONS] COMMAND... [::: ARGS... [:::+ ARGS...]]...
//! ```
//!
//! Options come first; the first token that is not a recognized option
//! starts the command template; `:::` / `:::+` introduce input sources.
//! With no `:::` sources and no `-a` files, arguments are read from
//! stdin, one per line (pipe them in like `find ... | htpar ...`).

use std::path::PathBuf;
use std::time::Duration;

use htpar_core::halt::{HaltPolicy, HaltWhen};
use htpar_core::options::{BatchMode, Options, ResumeMode};

/// One input source given on the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceSpec {
    /// `::: v1 v2 ...`
    Values(Vec<String>),
    /// `:::+ v1 v2 ...` (linked to the previous source)
    LinkedValues(Vec<String>),
    /// `-a FILE` / `--arg-file FILE`
    File(PathBuf),
}

/// The fully parsed invocation.
#[derive(Debug, Clone)]
pub struct CliSpec {
    pub options: Options,
    /// The command template (words joined by single spaces).
    pub command: String,
    pub sources: Vec<SourceSpec>,
    /// `--colsep SEP` for stdin/file sources.
    pub colsep: Option<String>,
    /// `--shuf [SEED]`.
    pub shuffle: Option<u64>,
    /// `-I STR`.
    pub replacement: Option<String>,
    /// `--pipe` mode with `--block N` bytes.
    pub pipe: bool,
    pub block_size: usize,
    /// `--memfree BYTES`: hold launches while available memory is below
    /// this (accepts k/M/G suffixes).
    pub memfree_bytes: Option<u64>,
    /// `--sshlogin SPEC[,SPEC...]`: distribute jobs over remote hosts.
    pub sshlogins: Vec<String>,
    /// `--ssh-cmd PROG`: the ssh program to use (GNU's `--ssh`).
    pub ssh_cmd: String,
    /// `--tagstring TPL`: tag output lines with an expanded template
    /// (e.g. `--tagstring '{#}/{}'`) instead of the plain arguments.
    pub tagstring: Option<String>,
    /// `--line-buffer`: stream output lines as they appear instead of
    /// grouping per job (lines from concurrent jobs interleave).
    pub line_buffer: bool,
    /// `--progress`: print a live status line to stderr per completion.
    pub progress: bool,
    /// `--fault-rate P`: inject a seeded failure (exit 199) into each
    /// task attempt with probability `P ∈ [0, 1]` — the chaos knob for
    /// exercising `--retries`/`--resume-failed` recovery paths.
    pub fault_rate: Option<f64>,
    /// `--fault-seed N`: seed for `--fault-rate` injection (default 0,
    /// so campaigns are reproducible).
    pub fault_seed: u64,
    /// `--help` / `--version` short-circuits.
    pub help: bool,
    pub version: bool,
}

impl Default for CliSpec {
    fn default() -> Self {
        CliSpec {
            options: Options::default(),
            command: String::new(),
            sources: Vec::new(),
            colsep: None,
            shuffle: None,
            replacement: None,
            pipe: false,
            block_size: 1 << 20,
            memfree_bytes: None,
            line_buffer: false,
            sshlogins: Vec::new(),
            ssh_cmd: "ssh".to_string(),
            tagstring: None,
            progress: false,
            fault_rate: None,
            fault_seed: 0,
            help: false,
            version: false,
        }
    }
}

/// Usage text for `--help`.
pub const USAGE: &str = "\
usage: htpar [OPTIONS] COMMAND... [::: ARGS...]...
  -j, --jobs N          job slots (default: CPU count)
  -k, --keep-order      emit output in input order
      --tag             prefix output lines with the argument(s)
      --dry-run         print commands without running them
      --retries N       retry failing jobs N extra times
      --retry-delay DUR exponential backoff before retries
      --memfree SIZE    hold launches below this much free memory
      --timeout DUR     kill jobs after DUR (e.g. 30s, 5m, 500ms)
      --delay DUR       spacing between job launches
      --halt SPEC       now|soon,fail|success=N[%]
      --joblog FILE     record finished jobs
      --resume          skip jobs already in the joblog
      --resume-failed   re-run only failed jobs from the joblog
      --results DIR     write per-job stdout/stderr/exitval under DIR
  -a, --arg-file FILE   read arguments from FILE (repeatable)
      --colsep SEP      split input lines into {1} {2} ... columns
      --shuf[=SEED]     run jobs in random order
  -X                    context-replace batching (rsync idiom)
  -m                    xargs batching
  -n, --max-args N      max arguments per batch
  -s, --max-chars N     command length budget for batching
  -I STR                use STR instead of {} as the replacement string
      --pipe            split stdin into blocks fed to jobs' stdin
      --block N[kKmM]   block size for --pipe (default 1M)
      --no-shell        exec the argv directly instead of via sh -c
  -S, --sshlogin SPECS  distribute over hosts: [N/][user@]host, comma-separated
      --ssh-cmd PROG    ssh program to use (default: ssh)
      --tagstring TPL   tag output with an expanded template (implies --tag)
      --line-buffer     stream output lines as they appear (interleaved)
      --progress        print live progress to stderr
      --fault-rate P    inject seeded task failures with probability P (testing)
      --fault-seed N    seed for --fault-rate injection (default 0)
      --help, --version

subcommands (see `htpar SUBCOMMAND --help`):
  htpar agent --listen ADDR          run a node agent serving one driver
  htpar drive --agents SPECS CMD...  shard work across live agents
  htpar drive --local-cluster N ...  same, over N local agent processes";

/// Parse a duration: `10` (seconds), `500ms`, `30s`, `5m`, `2h`.
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let (num, unit) = match s.find(|c: char| c.is_ascii_alphabetic()) {
        Some(i) => s.split_at(i),
        None => (s, "s"),
    };
    let value: f64 = num
        .parse()
        .map_err(|_| format!("invalid duration number {num:?}"))?;
    if value < 0.0 {
        return Err("duration cannot be negative".into());
    }
    let secs = match unit {
        "ms" => value / 1e3,
        "s" | "" => value,
        "m" => value * 60.0,
        "h" => value * 3600.0,
        other => return Err(format!("unknown duration unit {other:?}")),
    };
    Ok(Duration::from_secs_f64(secs))
}

/// Parse `--block` sizes: `4096`, `64k`, `10M`.
pub fn parse_block_size(s: &str) -> Result<usize, String> {
    let (num, suffix) = match s.find(|c: char| c.is_ascii_alphabetic()) {
        Some(i) => s.split_at(i),
        None => (s, ""),
    };
    let value: usize = num
        .parse()
        .map_err(|_| format!("invalid block size {num:?}"))?;
    let mult = match suffix {
        "" => 1,
        "k" | "K" => 1 << 10,
        "m" | "M" => 1 << 20,
        "g" | "G" => 1 << 30,
        other => return Err(format!("unknown block suffix {other:?}")),
    };
    value
        .checked_mul(mult)
        .ok_or_else(|| "block size overflows".to_string())
}

/// Parse a `--halt` spec: `when,why=value` with when ∈ {now, soon},
/// why ∈ {fail, success}, value an integer or `N%`.
pub fn parse_halt(s: &str) -> Result<HaltPolicy, String> {
    if s == "never" {
        return Ok(HaltPolicy::never());
    }
    let (when_str, rest) = s
        .split_once(',')
        .ok_or_else(|| format!("halt spec {s:?} needs when,why=value"))?;
    let when = match when_str {
        "now" => HaltWhen::Now,
        "soon" => HaltWhen::Soon,
        other => return Err(format!("halt when must be now/soon, got {other:?}")),
    };
    let (why, value) = rest
        .split_once('=')
        .ok_or_else(|| format!("halt spec {rest:?} needs why=value"))?;
    let percent = value.ends_with('%');
    let number = value.trim_end_matches('%');
    match (why, percent) {
        ("fail", false) => Ok(HaltPolicy::fail_count(
            number.parse().map_err(|_| "bad halt count")?,
            when,
        )),
        ("fail", true) => Ok(HaltPolicy::fail_percent(
            number.parse().map_err(|_| "bad halt percent")?,
            when,
        )),
        ("success", false) => Ok(HaltPolicy::success_count(
            number.parse().map_err(|_| "bad halt count")?,
            when,
        )),
        ("success", true) => Ok(HaltPolicy::success_percent(
            number.parse().map_err(|_| "bad halt percent")?,
            when,
        )),
        (other, _) => Err(format!("halt why must be fail/success, got {other:?}")),
    }
}

/// Parse the full argument vector (everything after the program name).
pub fn parse_args(argv: &[String]) -> Result<CliSpec, String> {
    let mut spec = CliSpec::default();
    let mut it = argv.iter().peekable();

    // Phase 1: options.
    let next_value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                      flag: &str|
     -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };

    while let Some(&token) = it.peek() {
        let t = token.as_str();
        match t {
            "--help" => {
                spec.help = true;
                return Ok(spec);
            }
            "--version" => {
                spec.version = true;
                return Ok(spec);
            }
            "-j" | "--jobs" => {
                it.next();
                let v = next_value(&mut it, t)?;
                spec.options.jobs = v.parse().map_err(|_| format!("bad job count {v:?}"))?;
            }
            "-k" | "--keep-order" => {
                it.next();
                spec.options.keep_order = true;
            }
            "--tag" => {
                it.next();
                spec.options.tag = true;
            }
            "--dry-run" => {
                it.next();
                spec.options.dry_run = true;
            }
            "--retries" => {
                it.next();
                let v = next_value(&mut it, t)?;
                spec.options.retries = v.parse().map_err(|_| format!("bad retries {v:?}"))?;
            }
            "--retry-delay" => {
                it.next();
                spec.options.retry_delay = Some(parse_duration(&next_value(&mut it, t)?)?);
            }
            "--memfree" => {
                it.next();
                let v = next_value(&mut it, t)?;
                spec.memfree_bytes =
                    Some(parse_block_size(&v).map_err(|e| format!("bad --memfree: {e}"))? as u64);
            }
            "--timeout" => {
                it.next();
                spec.options.timeout = Some(parse_duration(&next_value(&mut it, t)?)?);
            }
            "--delay" => {
                it.next();
                spec.options.delay = Some(parse_duration(&next_value(&mut it, t)?)?);
            }
            "--halt" => {
                it.next();
                spec.options.halt = parse_halt(&next_value(&mut it, t)?)?;
            }
            "--joblog" => {
                it.next();
                spec.options.joblog = Some(PathBuf::from(next_value(&mut it, t)?));
            }
            "--resume" => {
                it.next();
                spec.options.resume = ResumeMode::Resume;
            }
            "--resume-failed" => {
                it.next();
                spec.options.resume = ResumeMode::ResumeFailed;
            }
            "--results" => {
                it.next();
                spec.options.results_dir = Some(PathBuf::from(next_value(&mut it, t)?));
            }
            "-a" | "--arg-file" => {
                it.next();
                spec.sources
                    .push(SourceSpec::File(PathBuf::from(next_value(&mut it, t)?)));
            }
            "--colsep" => {
                it.next();
                spec.colsep = Some(next_value(&mut it, t)?);
            }
            "--shuf" => {
                it.next();
                spec.shuffle = Some(0xD1CE);
            }
            "-X" => {
                it.next();
                spec.options.batch = BatchMode::ContextReplace;
            }
            "-m" => {
                it.next();
                spec.options.batch = BatchMode::Xargs;
            }
            "-n" | "--max-args" => {
                it.next();
                let v = next_value(&mut it, t)?;
                spec.options.max_args = Some(v.parse().map_err(|_| format!("bad max-args {v:?}"))?);
            }
            "-s" | "--max-chars" => {
                it.next();
                let v = next_value(&mut it, t)?;
                spec.options.max_chars = v.parse().map_err(|_| format!("bad max-chars {v:?}"))?;
            }
            "-I" => {
                it.next();
                spec.replacement = Some(next_value(&mut it, t)?);
            }
            "--pipe" => {
                it.next();
                spec.pipe = true;
            }
            "--block" => {
                it.next();
                spec.block_size = parse_block_size(&next_value(&mut it, t)?)?;
            }
            "--no-shell" => {
                it.next();
                spec.options.shell = false;
            }
            "--progress" => {
                it.next();
                spec.progress = true;
            }
            "--line-buffer" => {
                it.next();
                spec.line_buffer = true;
            }
            "--tagstring" => {
                it.next();
                spec.tagstring = Some(next_value(&mut it, t)?);
                spec.options.tag = true;
            }
            "-S" | "--sshlogin" => {
                it.next();
                let v = next_value(&mut it, t)?;
                spec.sshlogins
                    .extend(v.split(',').map(|s| s.trim().to_string()));
            }
            "--ssh-cmd" => {
                it.next();
                spec.ssh_cmd = next_value(&mut it, t)?;
            }
            "--fault-rate" => {
                it.next();
                let v = next_value(&mut it, t)?;
                let rate: f64 = v.parse().map_err(|_| format!("bad fault rate {v:?}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("fault rate must be in [0, 1], got {v}"));
                }
                spec.fault_rate = Some(rate);
            }
            "--fault-seed" => {
                it.next();
                let v = next_value(&mut it, t)?;
                spec.fault_seed = v.parse().map_err(|_| format!("bad fault seed {v:?}"))?;
            }
            _ if t.starts_with("--shuf=") => {
                let seed = t["--shuf=".len()..]
                    .parse()
                    .map_err(|_| format!("bad shuf seed in {t:?}"))?;
                spec.shuffle = Some(seed);
                it.next();
            }
            _ if t.starts_with("-j")
                && t.len() > 2
                && t[2..].chars().all(|c| c.is_ascii_digit()) =>
            {
                // GNU allows -j128 glued form.
                spec.options.jobs = t[2..].parse().map_err(|_| format!("bad jobs {t:?}"))?;
                it.next();
            }
            _ if t.starts_with("--") => return Err(format!("unknown option {t:?}\n{USAGE}")),
            _ => break, // command starts
        }
    }

    // Phase 2: command words until ::: / :::+ / end.
    let mut command_words = Vec::new();
    for token in it.by_ref() {
        if token == ":::" || token == ":::+" {
            // Re-handle this token in phase 3 by pushing a marker source.
            spec.sources.push(if token == ":::" {
                SourceSpec::Values(Vec::new())
            } else {
                SourceSpec::LinkedValues(Vec::new())
            });
            break;
        }
        command_words.push(token.clone());
    }
    spec.command = command_words.join(" ");
    if spec.command.is_empty() {
        return Err(format!("no command given\n{USAGE}"));
    }

    // Phase 3: source values.
    for token in it {
        if token == ":::" {
            spec.sources.push(SourceSpec::Values(Vec::new()));
        } else if token == ":::+" {
            spec.sources.push(SourceSpec::LinkedValues(Vec::new()));
        } else {
            match spec.sources.last_mut() {
                Some(SourceSpec::Values(v)) | Some(SourceSpec::LinkedValues(v)) => {
                    v.push(token.clone())
                }
                _ => return Err(format!("argument {token:?} outside any ::: source")),
            }
        }
    }

    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<CliSpec, String> {
        let v: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        parse_args(&v)
    }

    #[test]
    fn minimal_command() {
        let spec = parse(&["echo", "{}"]).unwrap();
        assert_eq!(spec.command, "echo {}");
        assert!(spec.sources.is_empty());
    }

    #[test]
    fn no_command_is_an_error() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["-j", "4"]).is_err());
    }

    #[test]
    fn flags_then_command_then_sources() {
        let spec = parse(&[
            "-j", "8", "-k", "--tag", "gzip", "-9", "{}", ":::", "a.log", "b.log",
        ])
        .unwrap();
        assert_eq!(spec.options.jobs, 8);
        assert!(spec.options.keep_order);
        assert!(spec.options.tag);
        assert_eq!(spec.command, "gzip -9 {}");
        assert_eq!(
            spec.sources,
            vec![SourceSpec::Values(vec!["a.log".into(), "b.log".into()])]
        );
    }

    #[test]
    fn glued_job_count() {
        let spec = parse(&["-j128", "true", "{}"]).unwrap();
        assert_eq!(spec.options.jobs, 128);
    }

    #[test]
    fn multiple_and_linked_sources() {
        let spec = parse(&[
            "run", "{1}", "{2}", "{3}", ":::", "a", "b", ":::+", "x", "y", ":::", "1", "2",
        ])
        .unwrap();
        assert_eq!(
            spec.sources,
            vec![
                SourceSpec::Values(vec!["a".into(), "b".into()]),
                SourceSpec::LinkedValues(vec!["x".into(), "y".into()]),
                SourceSpec::Values(vec!["1".into(), "2".into()]),
            ]
        );
    }

    #[test]
    fn command_words_may_start_with_dash_after_command_begins() {
        let spec = parse(&["rsync", "-R", "-Ha", "{}", "/dst/"]).unwrap();
        assert_eq!(spec.command, "rsync -R -Ha {} /dst/");
    }

    #[test]
    fn batching_flags() {
        let spec = parse(&["-X", "-n", "16", "-s", "4096", "rsync", "{}"]).unwrap();
        assert_eq!(spec.options.batch, BatchMode::ContextReplace);
        assert_eq!(spec.options.max_args, Some(16));
        assert_eq!(spec.options.max_chars, 4096);
        let spec = parse(&["-m", "echo", "{}"]).unwrap();
        assert_eq!(spec.options.batch, BatchMode::Xargs);
    }

    #[test]
    fn durations() {
        assert_eq!(parse_duration("10").unwrap(), Duration::from_secs(10));
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("1.5s").unwrap(), Duration::from_millis(1500));
        assert_eq!(parse_duration("2m").unwrap(), Duration::from_secs(120));
        assert_eq!(parse_duration("1h").unwrap(), Duration::from_secs(3600));
        assert!(parse_duration("abc").is_err());
        assert!(parse_duration("5d").is_err());
        assert!(parse_duration("-3").is_err());
    }

    #[test]
    fn block_sizes() {
        assert_eq!(parse_block_size("4096").unwrap(), 4096);
        assert_eq!(parse_block_size("64k").unwrap(), 64 << 10);
        assert_eq!(parse_block_size("10M").unwrap(), 10 << 20);
        assert_eq!(parse_block_size("1G").unwrap(), 1 << 30);
        assert!(parse_block_size("10x").is_err());
        assert!(parse_block_size("").is_err());
    }

    #[test]
    fn halt_specs() {
        assert_eq!(parse_halt("never").unwrap(), HaltPolicy::never());
        assert_eq!(
            parse_halt("now,fail=3").unwrap(),
            HaltPolicy::fail_count(3, HaltWhen::Now)
        );
        assert_eq!(
            parse_halt("soon,fail=10%").unwrap(),
            HaltPolicy::fail_percent(10.0, HaltWhen::Soon)
        );
        assert_eq!(
            parse_halt("soon,success=5").unwrap(),
            HaltPolicy::success_count(5, HaltWhen::Soon)
        );
        assert!(parse_halt("later,fail=1").is_err());
        assert!(parse_halt("now,crash=1").is_err());
        assert!(parse_halt("now").is_err());
    }

    #[test]
    fn joblog_resume_results() {
        let spec = parse(&[
            "--joblog",
            "run.log",
            "--resume-failed",
            "--results",
            "out/",
            "work",
            "{}",
        ])
        .unwrap();
        assert_eq!(spec.options.joblog, Some(PathBuf::from("run.log")));
        assert_eq!(spec.options.resume, ResumeMode::ResumeFailed);
        assert_eq!(spec.options.results_dir, Some(PathBuf::from("out/")));
    }

    #[test]
    fn pipe_and_block() {
        let spec = parse(&["--pipe", "--block", "64k", "wc", "-l"]).unwrap();
        assert!(spec.pipe);
        assert_eq!(spec.block_size, 64 << 10);
    }

    #[test]
    fn shuf_with_and_without_seed() {
        assert!(parse(&["--shuf", "cmd", "{}"]).unwrap().shuffle.is_some());
        assert_eq!(parse(&["--shuf=7", "cmd", "{}"]).unwrap().shuffle, Some(7));
    }

    #[test]
    fn arg_files_and_colsep() {
        let spec = parse(&["-a", "list.txt", "--colsep", ",", "go", "{1}", "{2}"]).unwrap();
        assert_eq!(
            spec.sources,
            vec![SourceSpec::File(PathBuf::from("list.txt"))]
        );
        assert_eq!(spec.colsep.as_deref(), Some(","));
    }

    #[test]
    fn unknown_long_flag_errors() {
        let err = parse(&["--frobnicate", "cmd"]).unwrap_err();
        assert!(err.contains("unknown option"));
    }

    #[test]
    fn value_missing_errors() {
        assert!(parse(&["-j"]).is_err());
        assert!(parse(&["--timeout"]).is_err());
    }

    #[test]
    fn help_and_version_short_circuit() {
        assert!(parse(&["--help"]).unwrap().help);
        assert!(parse(&["--version"]).unwrap().version);
    }

    #[test]
    fn line_buffer_flag() {
        assert!(parse(&["--line-buffer", "cmd", "{}"]).unwrap().line_buffer);
    }

    #[test]
    fn retry_delay_and_memfree() {
        let spec = parse(&["--retry-delay", "500ms", "--memfree", "2G", "cmd", "{}"]).unwrap();
        assert_eq!(spec.options.retry_delay, Some(Duration::from_millis(500)));
        assert_eq!(spec.memfree_bytes, Some(2 << 30));
    }

    #[test]
    fn sshlogin_specs_accumulate_and_split() {
        let spec = parse(&["-S", "8/n01,n02", "--sshlogin", "u@n03", "cmd", "{}"]).unwrap();
        assert_eq!(spec.sshlogins, vec!["8/n01", "n02", "u@n03"]);
        assert_eq!(spec.ssh_cmd, "ssh");
        let spec = parse(&["--ssh-cmd", "/opt/fake-ssh", "-S", ":", "c", "{}"]).unwrap();
        assert_eq!(spec.ssh_cmd, "/opt/fake-ssh");
    }

    #[test]
    fn tagstring_implies_tag() {
        let spec = parse(&["--tagstring", "{#}:", "cmd", "{}"]).unwrap();
        assert_eq!(spec.tagstring.as_deref(), Some("{#}:"));
        assert!(spec.options.tag);
    }

    #[test]
    fn progress_flag() {
        assert!(parse(&["--progress", "cmd", "{}"]).unwrap().progress);
        assert!(!parse(&["cmd", "{}"]).unwrap().progress);
    }

    #[test]
    fn fault_injection_knobs() {
        let spec = parse(&["--fault-rate", "0.25", "--fault-seed", "42", "cmd", "{}"]).unwrap();
        assert_eq!(spec.fault_rate, Some(0.25));
        assert_eq!(spec.fault_seed, 42);
        // Defaults: no injection, seed 0.
        let spec = parse(&["cmd", "{}"]).unwrap();
        assert_eq!(spec.fault_rate, None);
        assert_eq!(spec.fault_seed, 0);
        // Out-of-range and garbage rates are rejected.
        assert!(parse(&["--fault-rate", "1.5", "cmd"]).is_err());
        assert!(parse(&["--fault-rate", "-0.1", "cmd"]).is_err());
        assert!(parse(&["--fault-rate", "x", "cmd"]).is_err());
        assert!(parse(&["--fault-seed", "x", "cmd"]).is_err());
    }

    #[test]
    fn custom_replacement_flag() {
        let spec = parse(&["-I", "FILE", "cp", "FILE", "FILE.bak"]).unwrap();
        assert_eq!(spec.replacement.as_deref(), Some("FILE"));
        assert_eq!(spec.command, "cp FILE FILE.bak");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn parser_never_panics(tokens in proptest::collection::vec("[ -~]{0,12}", 0..12)) {
                let _ = parse_args(&tokens);
            }

            #[test]
            fn source_values_round_trip(vals in proptest::collection::vec("[a-z0-9]{1,8}", 1..10)) {
                let mut tokens = vec!["cmd".to_string(), "{}".to_string(), ":::".to_string()];
                tokens.extend(vals.clone());
                let spec = parse_args(&tokens).unwrap();
                prop_assert_eq!(spec.sources, vec![SourceSpec::Values(vals)]);
            }
        }
    }
}
