//! Mapping a parsed [`CliSpec`] onto the engine and GNU-compatible exit
//! codes.

use std::io::BufRead;

use std::sync::Arc;

use htpar_core::input::InputSource;
use htpar_core::output::tag_lines;
use htpar_core::prelude::*;
use htpar_core::progress::Progress;
use htpar_core::template::{ExpandContext, Template};
use htpar_telemetry::EventBus;

use crate::args::{CliSpec, SourceSpec};

/// GNU Parallel's exit-code convention: 0 when everything succeeded,
/// 1–100 = number of failed jobs, 101 when more than 100 failed.
pub fn exit_code(report: &RunReport) -> i32 {
    match report.failed {
        0 => 0,
        n if n <= 100 => n as i32,
        _ => 101,
    }
}

/// Execute a spec. `stdin` supplies input lines (or `--pipe` bytes) when
/// no `:::`/`-a` sources were given; `emit` receives each finished job's
/// (stdout, stderr) pair, already tagged if `--tag` is on, in the right
/// order.
pub fn execute<R, F>(spec: CliSpec, stdin: R, emit: F) -> Result<RunReport>
where
    R: BufRead + Send + 'static,
    F: Fn(&str, &str) + Send + Sync + Clone + 'static,
{
    execute_observed(spec, stdin, emit, None)
}

/// [`execute`] with an optional telemetry bus attached to the engine:
/// every job's lifecycle ([`htpar_telemetry::Event`]) reaches the bus's
/// sinks, so a `Recorder` or `MetricsRegistry` can observe a CLI-shaped
/// run in-process.
pub fn execute_observed<R, F>(
    spec: CliSpec,
    stdin: R,
    emit: F,
    bus: Option<Arc<EventBus>>,
) -> Result<RunReport>
where
    R: BufRead + Send + 'static,
    F: Fn(&str, &str) + Send + Sync + Clone + 'static,
{
    let emit_line = emit.clone();
    let tag = spec.options.tag;
    let use_shell = spec.options.shell;
    let tag_template = match &spec.tagstring {
        Some(tpl) => Some(Template::parse(tpl)?),
        None => None,
    };
    let progress = if spec.progress {
        Some(Arc::new(Progress::streaming()))
    } else {
        None
    };
    let mut builder = Parallel::new(&spec.command).options(spec.options);
    if let Some(bus) = bus.clone() {
        builder = builder.telemetry(bus);
    }
    if let Some(min_free) = spec.memfree_bytes {
        builder = builder.gate(htpar_core::gate::MemFreeGate::new(min_free));
    }
    // `--fault-rate`: wrap whichever executor the spec selects in a
    // seeded chaos layer. Draws are keyed per (seq, attempt), so a
    // given seed fails the same seqs regardless of worker interleaving
    // — which is what makes `--joblog` + `--resume-failed` campaigns
    // reproducible.
    let chaos = spec.fault_rate.filter(|rate| *rate > 0.0);
    let fault_seed = spec.fault_seed;
    let line_buffer = spec.line_buffer && spec.sshlogins.is_empty() && !spec.pipe;
    if line_buffer {
        // Stream lines straight through `emit2`; the per-job grouped
        // emission below is suppressed (stderr keeps flowing grouped).
        use htpar_core::executor::{ProcessExecutor, StreamKind};
        let e = Arc::new(emit_line.clone());
        let exec_base = if use_shell {
            ProcessExecutor::shell()
        } else {
            ProcessExecutor::no_shell()
        };
        let lb = exec_base.line_buffered(move |ev| match ev.kind {
            StreamKind::Stdout => e(&format!("{}\n", ev.line), ""),
            StreamKind::Stderr => e("", &format!("{}\n", ev.line)),
        });
        builder = match chaos {
            Some(rate) => builder.executor(htpar_core::chaos::ChaosExecutor::seeded_per_seq(
                lb, rate, fault_seed,
            )),
            None => builder.executor(lb),
        };
    }
    if !spec.sshlogins.is_empty() {
        let specs: Vec<&str> = spec.sshlogins.iter().map(String::as_str).collect();
        let multi = htpar_core::sshexec::multi_host_from_specs(&specs, 1, &spec.ssh_cmd)?;
        // Size the slot pool to the hosts unless -j was explicit... the
        // pool itself caps per-host concurrency either way.
        builder = builder.jobs(multi.pool().total_slots());
        builder = match chaos {
            Some(rate) => builder.executor(htpar_core::chaos::ChaosExecutor::seeded_per_seq(
                multi, rate, fault_seed,
            )),
            None => builder.executor(multi),
        };
    }
    if chaos.is_some() && !line_buffer && spec.sshlogins.is_empty() {
        // No other branch picked an executor: wrap the default process
        // executor the builder would otherwise construct.
        use htpar_core::executor::ProcessExecutor;
        let base = if use_shell {
            ProcessExecutor::shell()
        } else {
            ProcessExecutor::no_shell()
        };
        // Keep launch-path telemetry flowing even under chaos wrapping.
        let base = match &bus {
            Some(b) => base.observed(Arc::clone(b)),
            None => base,
        };
        builder = builder.executor(htpar_core::chaos::ChaosExecutor::seeded_per_seq(
            base,
            chaos.unwrap_or_default(),
            fault_seed,
        ));
    }
    if let Some(repl) = &spec.replacement {
        builder = builder.replacement(repl.clone());
    }
    if let Some(seed) = spec.shuffle {
        builder = builder.shuffle(seed);
    }
    let progress2 = progress.clone();
    let line_buffer_for_results = line_buffer;
    builder = builder.on_result(move |result| {
        let line_buffer = line_buffer_for_results;
        if let Some(p) = &progress2 {
            p.record(result);
            eprintln!("{}", p.snapshot().render());
        }
        // --tagstring renders a custom per-job tag; --tag uses the args.
        let custom_tag = tag_template.as_ref().map(|tpl| {
            tpl.expand(&ExpandContext {
                args: &result.args,
                seq: result.seq,
                slot: result.slot,
            })
        });
        let apply = |text: &str| -> String {
            match (&custom_tag, tag) {
                (Some(t), _) => tag_lines(std::slice::from_ref(t), text),
                (None, true) => tag_lines(&result.args, text),
                (None, false) => text.to_string(),
            }
        };
        if line_buffer {
            // Lines already streamed via the executor callback.
            return;
        }
        emit(&apply(&result.stdout), &apply(&result.stderr));
    });

    if spec.pipe {
        return builder.run_pipe(stdin, spec.block_size);
    }

    if spec.sources.is_empty() {
        // Arguments come from stdin.
        match &spec.colsep {
            Some(sep) => {
                for source in InputSource::columns_from_lines(stdin, sep)? {
                    builder = push(builder, source);
                }
            }
            None => {
                builder = builder.input_lines(stdin);
            }
        }
        return builder.run();
    }

    for source in &spec.sources {
        match source {
            SourceSpec::Values(values) => {
                builder = builder.args(values.clone());
            }
            SourceSpec::LinkedValues(values) => {
                builder = builder.args_linked(values.clone());
            }
            SourceSpec::File(path) => {
                let file = std::fs::File::open(path)?;
                let reader = std::io::BufReader::new(file);
                match &spec.colsep {
                    Some(sep) => {
                        for source in InputSource::columns_from_lines(reader, sep)? {
                            builder = push(builder, source);
                        }
                    }
                    None => builder = builder.input_lines(reader),
                }
            }
        }
    }
    builder.run()
}

fn push(builder: Parallel, source: InputSource) -> Parallel {
    use htpar_core::input::LinkMode;
    match source.mode {
        LinkMode::Product => builder.args(source.values),
        LinkMode::Linked => builder.args_linked(source.values),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;
    use std::sync::{Arc, Mutex};

    fn run(tokens: &[&str], stdin: &str) -> (RunReport, Vec<String>) {
        let argv: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let spec = parse_args(&argv).unwrap();
        let emitted = Arc::new(Mutex::new(Vec::new()));
        let e2 = Arc::clone(&emitted);
        let stdin_owned = std::io::Cursor::new(stdin.as_bytes().to_vec());
        let report = execute(spec, stdin_owned, move |out, _err| {
            e2.lock().unwrap().push(out.to_string());
        })
        .unwrap();
        let out = emitted.lock().unwrap().clone();
        (report, out)
    }

    #[test]
    fn source_args_run_real_commands() {
        let (report, out) = run(&["-j2", "-k", "echo", "hi-{}", ":::", "a", "b"], "");
        assert!(report.all_succeeded());
        assert_eq!(out, vec!["hi-a\n", "hi-b\n"]);
    }

    #[test]
    fn stdin_lines_feed_jobs() {
        let (report, out) = run(&["-k", "echo", "got-{}"], "x\ny\n");
        assert_eq!(report.jobs_total, 2);
        assert_eq!(out, vec!["got-x\n", "got-y\n"]);
    }

    #[test]
    fn colsep_splits_stdin_columns() {
        let (report, out) = run(&["-k", "--colsep", ",", "echo", "{2}-{1}"], "a,1\nb,2\n");
        assert!(report.all_succeeded());
        assert_eq!(out, vec!["1-a\n", "2-b\n"]);
    }

    #[test]
    fn tag_prefixes_output() {
        let (_, out) = run(&["-k", "--tag", "echo", "v"], "x\n");
        assert_eq!(out, vec!["x\tv x\n"]);
    }

    #[test]
    fn line_buffer_streams_everything_once() {
        let (report, out) = run(
            &["--line-buffer", "printf 'x-%s\\n' {}", ":::", "1", "2", "3"],
            "",
        );
        assert!(report.all_succeeded());
        let mut lines: Vec<&str> = out
            .iter()
            .map(|s| s.trim_end())
            .filter(|s| !s.is_empty())
            .collect();
        lines.sort();
        assert_eq!(lines, vec!["x-1", "x-2", "x-3"]);
    }

    #[test]
    fn sshlogin_through_fake_ssh_shim() {
        let dir = std::env::temp_dir().join(format!("htpar-clissh-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let shim = dir.join("fake-ssh");
        std::fs::write(
            &shim,
            "#!/bin/sh\nhost=$3\nshift 6\nout=$(sh -c \"$1\")\necho \"$host=$out\"\n",
        )
        .unwrap();
        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            std::fs::set_permissions(&shim, std::fs::Permissions::from_mode(0o755)).unwrap();
        }
        let (report, out) = run(
            &[
                "-k",
                "-S",
                "1/alpha,1/beta",
                "--ssh-cmd",
                shim.to_str().unwrap(),
                "echo",
                "r{}",
                ":::",
                "1",
                "2",
                "3",
                "4",
            ],
            "",
        );
        assert!(report.all_succeeded());
        assert_eq!(out.len(), 4);
        assert!(out[0].ends_with("=r1\n"), "{out:?}");
        let hosts: std::collections::HashSet<&str> =
            out.iter().map(|l| l.split('=').next().unwrap()).collect();
        assert_eq!(hosts.len(), 2, "both hosts used: {out:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tagstring_renders_custom_tags() {
        let (_, out) = run(
            &[
                "-k",
                "--tagstring",
                "{#}|{}",
                "echo",
                "x",
                "#",
                "{}",
                ":::",
                "a",
                "b",
            ],
            "",
        );
        assert_eq!(out, vec!["1|a\tx\n", "2|b\tx\n"]);
    }

    #[test]
    fn pipe_mode_counts_lines() {
        let stdin: String = (0..100).map(|i| format!("{i}\n")).collect();
        let (report, out) = run(&["--pipe", "--block", "64", "-k", "wc", "-l"], &stdin);
        assert!(report.jobs_total > 1);
        let total: u64 = out.iter().map(|o| o.trim().parse::<u64>().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn exit_codes_follow_gnu_convention() {
        let (report, _) = run(&["-k", "true", "{}", ":::", "1", "2"], "");
        assert_eq!(exit_code(&report), 0);
        let (report, _) = run(&["-k", "false", "#", "{}", ":::", "1", "2", "3"], "");
        assert_eq!(exit_code(&report), 3);
    }

    #[test]
    fn exit_code_caps_at_101() {
        use htpar_core::runner::RunReport;
        let report = RunReport {
            results: vec![],
            jobs_total: 500,
            succeeded: 0,
            failed: 500,
            skipped: 0,
            wall: std::time::Duration::ZERO,
            launch_rate: 0.0,
            halted: None,
        };
        assert_eq!(exit_code(&report), 101);
    }

    #[test]
    fn arg_file_source() {
        let dir = std::env::temp_dir().join(format!("htpar-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let list = dir.join("list.txt");
        std::fs::write(&list, "one\ntwo\n").unwrap();
        let (report, out) = run(&["-k", "-a", list.to_str().unwrap(), "echo", "f:{}"], "");
        assert_eq!(report.jobs_total, 2);
        assert_eq!(out, vec!["f:one\n", "f:two\n"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dry_run_prints_commands() {
        let (report, out) = run(&["--dry-run", "-k", "gzip", "{}", ":::", "f1"], "");
        assert!(report.all_succeeded());
        assert_eq!(out, vec!["gzip f1\n"]);
    }

    #[test]
    fn fault_rate_one_fails_every_job_with_exit_199() {
        let (report, _) = run(
            &[
                "--fault-rate",
                "1.0",
                "-k",
                "true",
                "{}",
                ":::",
                "1",
                "2",
                "3",
            ],
            "",
        );
        assert_eq!(report.failed, 3);
        assert!(
            report.results.iter().all(|r| r.status.exitval() == 199),
            "all injected"
        );
    }

    #[test]
    fn fault_rate_zero_is_a_no_op() {
        let (report, _) = run(
            &["--fault-rate", "0.0", "-k", "echo", "{}", ":::", "1", "2"],
            "",
        );
        assert!(report.all_succeeded());
    }

    #[test]
    fn seeded_faults_recover_via_joblog_resume_failed() {
        let dir = std::env::temp_dir().join(format!("htpar-cli-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("joblog.tsv");
        let _ = std::fs::remove_file(&log);
        let log_s = log.to_str().unwrap();

        // Run 1: the same seed+rate must fail the same seqs every time.
        let args = |extra: &[&str]| -> Vec<String> {
            let mut v: Vec<String> = vec![
                "--fault-rate".into(),
                "0.5".into(),
                "--fault-seed".into(),
                "7".into(),
                "--joblog".into(),
                log_s.into(),
            ];
            v.extend(extra.iter().map(|s| s.to_string()));
            v.extend(
                [
                    "-k", "true", "{}", ":::", "1", "2", "3", "4", "5", "6", "7", "8",
                ]
                .iter()
                .map(|s| s.to_string()),
            );
            v
        };
        let run_argv = |argv: Vec<String>| -> RunReport {
            let spec = parse_args(&argv).unwrap();
            execute(spec, std::io::Cursor::new(Vec::new()), |_, _| {}).unwrap()
        };
        let first = run_argv(args(&[]));
        let again = run_argv(args(&[]));
        // Determinism across whole runs (ignoring the joblog side effect).
        assert_eq!(first.failed, again.failed);
        assert!(
            first.failed > 0 && first.failed < 8,
            "rate 0.5 mixes outcomes"
        );

        // Run 2 with --resume-failed and injection off: only the failed
        // seqs re-run, and everything ends up succeeded.
        let mut argv = args(&["--resume-failed"]);
        // Drop the chaos knobs (first four tokens) for the repair run.
        argv.drain(0..4);
        let repair = run_argv(argv);
        assert_eq!(repair.skipped, 8 - first.failed);
        assert_eq!(repair.succeeded, first.failed);
        assert_eq!(repair.failed, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn linked_sources_via_cli() {
        let (report, out) = run(
            &["-k", "echo", "{1}={2}", ":::", "a", "b", ":::+", "1", "2"],
            "",
        );
        assert_eq!(report.jobs_total, 2);
        assert_eq!(out, vec!["a=1\n", "b=2\n"]);
    }
}
