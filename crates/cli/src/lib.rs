//! # htpar-cli — the `htpar` command-line tool
//!
//! A GNU Parallel-compatible front end over `htpar-core`:
//!
//! ```text
//! htpar -j8 -k 'gzip -9 {}' ::: *.log
//! find . -type f | htpar -j32 -X 'rsync -R -Ha {} /dst/'
//! htpar --pipe --block 1M 'wc -l' < bigfile
//! htpar -j36 --joblog run.log --resume-failed 'python3 arch.py {1} {2}' \
//!       ::: 1 2 3 4 5 6 7 8 9 10 11 12 ::: 0 1 2
//! ```
//!
//! [`args`] parses the command line into a [`args::CliSpec`]; [`exec`]
//! maps the spec onto [`htpar_core::Parallel`], streams output, and
//! computes the GNU-compatible exit code.

pub mod args;
pub mod exec;
pub mod netcmd;

pub use args::{parse_args, CliSpec};
pub use exec::{execute, exit_code};
