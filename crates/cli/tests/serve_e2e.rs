//! End-to-end chaos test of `htpar serve`: a real pilot process with a
//! real `--local-cluster` fleet, three concurrent tenant sessions, one
//! agent SIGKILLed mid-run and one client disconnecting mid-session.
//! The surviving sessions must complete exactly-once (client-side
//! counts and per-tenant joblogs), the dead session's work must be
//! released rather than leak slots (final occupancy telemetry reads
//! zero busy), and the pilot must exit cleanly.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use htpar_core::joblog;
use htpar_net::client::{ClientEvent, SessionClient, SessionConfig};
use htpar_net::driver::verify_exactly_once;
use htpar_net::frame::Payload;
use htpar_net::serve::SERVE_ANNOUNCE_PREFIX;

const SURVIVOR_TASKS: u64 = 2_000;
const ABORTER_TASKS: u64 = 1_000;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("htpar-serve-e2e-{tag}-{}", std::process::id()))
}

/// Drive a full session: submit `total` tasks in batches, finish, and
/// assert client-side exactly-once (every seq seen exactly once).
fn run_survivor(spec: String, tenant: &str, weight: u32, total: u64) -> u64 {
    let mut config = SessionConfig::new(spec, tenant);
    config.payload = Payload::Noop;
    config.weight = weight;
    let mut client = SessionClient::connect(config).expect("session connects");
    let inputs: Vec<Vec<String>> = (1..=total).map(|i| vec![i.to_string()]).collect();
    for batch in inputs.chunks(500) {
        let verdict = client.submit(batch).expect("submit");
        assert!(verdict.accepted, "admission refused: {}", verdict.reason);
    }
    // Collect every completion seq; duplicates or gaps here mean the
    // pilot broke exactly-once across the chaos.
    let mut seen = vec![false; total as usize + 1];
    while client.completed() < total {
        match client.recv().expect("recv") {
            ClientEvent::Done(recs) => {
                for rec in recs {
                    let seq = rec.seq as usize;
                    assert!(seq >= 1 && seq <= total as usize, "seq {seq} out of range");
                    assert!(!seen[seq], "seq {seq} delivered twice to {tenant}");
                    seen[seq] = true;
                }
            }
            other => panic!("{tenant}: unexpected event {other:?}"),
        }
    }
    assert!(
        seen[1..].iter().all(|&s| s),
        "{tenant}: not every seq delivered"
    );
    let completed = client.finish().expect("finish");
    assert_eq!(completed, total, "{tenant}: completion total");
    total
}

/// Submit a batch, take one completion event, then vanish.
fn run_aborter(spec: String, tenant: &str) {
    let mut config = SessionConfig::new(spec, tenant);
    config.payload = Payload::SleepUs(2_000);
    let mut client = SessionClient::connect(config).expect("aborter connects");
    let inputs: Vec<Vec<String>> = (1..=ABORTER_TASKS).map(|i| vec![i.to_string()]).collect();
    let verdict = client.submit(&inputs).expect("aborter submit");
    assert!(verdict.accepted, "aborter refused: {}", verdict.reason);
    match client.recv().expect("aborter recv") {
        ClientEvent::Done(_) => {}
        other => panic!("aborter expected completions, got {other:?}"),
    }
    client.abort();
}

#[test]
fn chaos_survivors_complete_exactly_once_and_slots_drain() {
    let joblog_dir = temp_path("logs");
    let telemetry = temp_path("events.jsonl");
    let _ = std::fs::remove_dir_all(&joblog_dir);
    let _ = std::fs::remove_file(&telemetry);

    let mut serve = Command::new(env!("CARGO_BIN_EXE_htpar"))
        .args([
            "serve",
            "--local-cluster",
            "4",
            "-j",
            "2",
            "--max-sessions",
            "3",
            "--scheduler",
            "fair",
            "--chaos-kill-agent",
            "1@300",
            "--joblog-dir",
        ])
        .arg(&joblog_dir)
        .env("HTPAR_TELEMETRY_JSONL", &telemetry)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn htpar serve");

    // The pilot announces its bound address on stdout once ready.
    let stdout = serve.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let spec = loop {
        let line = lines
            .next()
            .expect("serve announced before exiting")
            .expect("readable stdout");
        if let Some(rest) = line.strip_prefix(SERVE_ANNOUNCE_PREFIX) {
            break rest.trim().to_string();
        }
    };

    let survivors: Vec<_> = [("tenant-a", 1u32), ("tenant-b", 2u32)]
        .into_iter()
        .map(|(tenant, weight)| {
            let spec = spec.clone();
            std::thread::spawn(move || run_survivor(spec, tenant, weight, SURVIVOR_TASKS))
        })
        .collect();
    let aborter = {
        let spec = spec.clone();
        std::thread::spawn(move || run_aborter(spec, "tenant-c"))
    };

    for handle in survivors {
        assert_eq!(handle.join().expect("survivor thread"), SURVIVOR_TASKS);
    }
    aborter.join().expect("aborter thread");

    // All three sessions closed → the pilot drains its fleet and exits.
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        if let Some(status) = serve.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "serve did not exit");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(status.code(), Some(0), "serve exits cleanly");

    // Per-tenant joblogs: survivors exactly-once on disk too.
    for tenant in ["tenant-a", "tenant-b"] {
        let entries =
            joblog::read_log(joblog_dir.join(format!("{tenant}.joblog"))).expect("tenant joblog");
        verify_exactly_once(&entries, SURVIVOR_TASKS)
            .unwrap_or_else(|e| panic!("{tenant} joblog not exactly-once: {e}"));
    }

    // Telemetry: the SIGKILLed agent was detected, the aborter's close
    // is attributed as a disconnect, and the final occupancy sample
    // shows every slot released (no leak from the dead session).
    let events = std::fs::read_to_string(&telemetry).expect("telemetry jsonl");
    assert!(
        events
            .lines()
            .any(|l| l.contains("\"type\":\"agent_lost\"")),
        "agent_lost event recorded"
    );
    assert!(
        events
            .lines()
            .any(|l| l.contains("\"type\":\"session_closed\"")
                && l.contains("tenant-c")
                && l.contains("disconnect")),
        "aborted session closed as disconnect"
    );
    let last_occupancy = events
        .lines()
        .rfind(|l| l.contains("\"type\":\"slot_occupancy\""))
        .expect("occupancy samples present");
    assert!(
        last_occupancy.contains("\"busy\":0"),
        "slots fully released at shutdown: {last_occupancy}"
    );
}
