//! End-to-end tests of the `htpar` binary as a subprocess: the full
//! user-facing path including argument parsing, stdin plumbing, grouped
//! output, and exit codes.

use std::io::Write;
use std::process::{Command, Stdio};

fn htpar() -> Command {
    Command::new(env!("CARGO_BIN_EXE_htpar"))
}

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut child = htpar()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn htpar");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn source_args_echo() {
    let (out, _, code) = run_with_stdin(&["-j2", "-k", "echo", "v-{}", ":::", "a", "b"], "");
    assert_eq!(out, "v-a\nv-b\n");
    assert_eq!(code, 0);
}

#[test]
fn stdin_drives_jobs() {
    let (out, _, code) = run_with_stdin(&["-k", "echo", "line:{}"], "1\n2\n3\n");
    assert_eq!(out, "line:1\nline:2\nline:3\n");
    assert_eq!(code, 0);
}

#[test]
fn replacement_strings_work_through_the_shell() {
    let (out, _, _) = run_with_stdin(
        &["-k", "echo", "{/.}", "in", "{//}", ":::", "/data/x.txt"],
        "",
    );
    assert_eq!(out, "x in /data\n");
}

#[test]
fn exit_code_counts_failures() {
    let (_, _, code) = run_with_stdin(&["sh -c 'exit 1' #", ":::", "1", "2"], "");
    assert_eq!(code, 2);
    let (_, _, code) = run_with_stdin(&["true", "{}", ":::", "1", "2"], "");
    assert_eq!(code, 0);
}

#[test]
fn bad_usage_exits_255() {
    let (_, err, code) = run_with_stdin(&["--frobnicate"], "");
    assert_eq!(code, 255);
    assert!(err.contains("unknown option"));
    let (_, err, code) = run_with_stdin(&[], "");
    assert_eq!(code, 255);
    assert!(err.contains("no command"));
}

#[test]
fn help_and_version() {
    let (out, _, code) = run_with_stdin(&["--help"], "");
    assert!(out.contains("usage: htpar"));
    assert_eq!(code, 0);
    let (out, _, code) = run_with_stdin(&["--version"], "");
    assert!(out.starts_with("htpar "));
    assert_eq!(code, 0);
}

#[test]
fn pipe_mode_end_to_end() {
    let stdin: String = (0..40).map(|i| format!("{i}\n")).collect();
    let (out, _, code) = run_with_stdin(&["--pipe", "--block", "32", "-k", "wc", "-l"], &stdin);
    assert_eq!(code, 0);
    let total: u64 = out
        .split_whitespace()
        .map(|n| n.parse::<u64>().unwrap())
        .sum();
    assert_eq!(total, 40);
}

#[test]
fn tag_marks_output_lines() {
    let (out, _, _) = run_with_stdin(&["-k", "--tag", "echo", "hi", "#", "{}", ":::", "a"], "");
    assert_eq!(out, "a\thi\n");
}

#[test]
fn progress_goes_to_stderr() {
    let (_, err, _) = run_with_stdin(&["--progress", "-k", "true", "{}", ":::", "1", "2"], "");
    assert!(err.contains("done"), "{err}");
}

#[test]
fn stderr_of_jobs_reaches_stderr() {
    let (out, err, code) =
        run_with_stdin(&["-k", "echo oops >&2; echo ok #", "{}", ":::", "1"], "");
    assert_eq!(out, "ok\n");
    assert!(err.contains("oops"));
    assert_eq!(code, 0);
}

#[test]
fn joblog_resume_via_cli() {
    let dir = std::env::temp_dir().join(format!("htpar-cli-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("cli.joblog");
    let _ = std::fs::remove_file(&log);

    let (_, _, code) = run_with_stdin(
        &["-k", "--joblog", log.to_str().unwrap(), "true", "{}", ":::", "a", "b"],
        "",
    );
    assert_eq!(code, 0);
    // Resume run: everything skips, output empty, still success.
    let (out, _, code) = run_with_stdin(
        &[
            "-k",
            "--joblog",
            log.to_str().unwrap(),
            "--resume",
            "echo",
            "ran-{}",
            ":::",
            "a",
            "b",
        ],
        "",
    );
    assert_eq!(code, 0);
    assert_eq!(out, "", "all jobs skipped on resume");
    std::fs::remove_dir_all(&dir).unwrap();
}
