//! End-to-end tests of the `htpar` binary as a subprocess: the full
//! user-facing path including argument parsing, stdin plumbing, grouped
//! output, and exit codes.

use std::io::Write;
use std::process::{Command, Stdio};

fn htpar() -> Command {
    Command::new(env!("CARGO_BIN_EXE_htpar"))
}

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut child = htpar()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn htpar");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn source_args_echo() {
    let (out, _, code) = run_with_stdin(&["-j2", "-k", "echo", "v-{}", ":::", "a", "b"], "");
    assert_eq!(out, "v-a\nv-b\n");
    assert_eq!(code, 0);
}

#[test]
fn stdin_drives_jobs() {
    let (out, _, code) = run_with_stdin(&["-k", "echo", "line:{}"], "1\n2\n3\n");
    assert_eq!(out, "line:1\nline:2\nline:3\n");
    assert_eq!(code, 0);
}

#[test]
fn replacement_strings_work_through_the_shell() {
    let (out, _, _) = run_with_stdin(
        &["-k", "echo", "{/.}", "in", "{//}", ":::", "/data/x.txt"],
        "",
    );
    assert_eq!(out, "x in /data\n");
}

#[test]
fn exit_code_counts_failures() {
    let (_, _, code) = run_with_stdin(&["sh -c 'exit 1' #", ":::", "1", "2"], "");
    assert_eq!(code, 2);
    let (_, _, code) = run_with_stdin(&["true", "{}", ":::", "1", "2"], "");
    assert_eq!(code, 0);
}

#[test]
fn bad_usage_exits_255() {
    let (_, err, code) = run_with_stdin(&["--frobnicate"], "");
    assert_eq!(code, 255);
    assert!(err.contains("unknown option"));
    let (_, err, code) = run_with_stdin(&[], "");
    assert_eq!(code, 255);
    assert!(err.contains("no command"));
}

#[test]
fn help_and_version() {
    let (out, _, code) = run_with_stdin(&["--help"], "");
    assert!(out.contains("usage: htpar"));
    assert_eq!(code, 0);
    let (out, _, code) = run_with_stdin(&["--version"], "");
    assert!(out.starts_with("htpar "));
    assert_eq!(code, 0);
}

#[test]
fn pipe_mode_end_to_end() {
    let stdin: String = (0..40).map(|i| format!("{i}\n")).collect();
    let (out, _, code) = run_with_stdin(&["--pipe", "--block", "32", "-k", "wc", "-l"], &stdin);
    assert_eq!(code, 0);
    let total: u64 = out
        .split_whitespace()
        .map(|n| n.parse::<u64>().unwrap())
        .sum();
    assert_eq!(total, 40);
}

#[test]
fn tag_marks_output_lines() {
    let (out, _, _) = run_with_stdin(&["-k", "--tag", "echo", "hi", "#", "{}", ":::", "a"], "");
    assert_eq!(out, "a\thi\n");
}

#[test]
fn progress_goes_to_stderr() {
    let (_, err, _) = run_with_stdin(&["--progress", "-k", "true", "{}", ":::", "1", "2"], "");
    assert!(err.contains("done"), "{err}");
}

#[test]
fn stderr_of_jobs_reaches_stderr() {
    let (out, err, code) =
        run_with_stdin(&["-k", "echo oops >&2; echo ok #", "{}", ":::", "1"], "");
    assert_eq!(out, "ok\n");
    assert!(err.contains("oops"));
    assert_eq!(code, 0);
}

/// Golden-format check of `--progress` output: one line per completed
/// job, each matching the documented render
/// `"{done} done ({ok} ok, {failed} failed, {skipped} skipped), {rate} jobs/s"`.
#[test]
fn progress_lines_match_golden_format() {
    let (_, err, code) = run_with_stdin(
        &[
            "--progress",
            "-j1",
            "-k",
            "true",
            "{}",
            ":::",
            "1",
            "2",
            "3",
        ],
        "",
    );
    assert_eq!(code, 0);
    let lines: Vec<&str> = err.lines().filter(|l| l.contains(" done (")).collect();
    assert_eq!(lines.len(), 3, "one progress line per completed job: {err}");
    for (i, line) in lines.iter().enumerate() {
        let want = format!("{} done ({} ok, 0 failed, 0 skipped), ", i + 1, i + 1);
        assert!(
            line.starts_with(&want),
            "line {i} diverged from golden prefix: {line}"
        );
        let rate = line[want.len()..]
            .strip_suffix(" jobs/s")
            .unwrap_or_else(|| panic!("missing rate suffix: {line}"));
        assert!(rate.parse::<f64>().is_ok(), "non-numeric rate in: {line}");
    }
}

/// Golden-structure check of the joblog file: GNU-compatible header, one
/// TSV row per job with numeric time columns and the expanded command.
#[test]
fn joblog_file_matches_golden_structure() {
    let dir = std::env::temp_dir().join(format!("htpar-joblog-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("golden.joblog");
    let _ = std::fs::remove_file(&log);

    let (_, _, code) = run_with_stdin(
        &[
            "-j1",
            "-k",
            "--joblog",
            log.to_str().unwrap(),
            "true",
            "{}",
            ":::",
            "a",
            "b",
        ],
        "",
    );
    assert_eq!(code, 0);

    let text = std::fs::read_to_string(&log).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines[0],
        "Seq\tHost\tStarttime\tJobRuntime\tSend\tReceive\tExitval\tSignal\tCommand"
    );
    assert_eq!(lines.len(), 3, "header + one row per job: {text}");
    for (i, row) in lines[1..].iter().enumerate() {
        let cols: Vec<&str> = row.split('\t').collect();
        assert_eq!(cols.len(), 9, "nine TSV columns: {row}");
        assert_eq!(cols[0], (i + 1).to_string(), "seq column");
        assert!(cols[2].parse::<f64>().is_ok(), "numeric Starttime: {row}");
        assert!(cols[3].parse::<f64>().is_ok(), "numeric JobRuntime: {row}");
        assert_eq!(cols[6], "0", "Exitval of a successful job");
        assert_eq!(cols[7], "0", "Signal of a successful job");
        assert_eq!(
            cols[8],
            format!("true {}", ["a", "b"][i]),
            "expanded command"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kill a run mid-flight after the first job is logged, then `--resume`:
/// only the job missing from the joblog may execute.
#[test]
fn kill_and_resume_runs_only_unlogged_jobs() {
    use std::time::{Duration, Instant};

    let dir = std::env::temp_dir().join(format!("htpar-kill-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("kill.joblog");
    let _ = std::fs::remove_file(&log);

    // Job 1 (`sleep 0`) finishes and is logged; job 2 (`sleep 600`)
    // hangs, so the kill lands while the run is genuinely mid-flight.
    let mut child = htpar()
        .args([
            "-j1",
            "--joblog",
            log.to_str().unwrap(),
            "sleep",
            "{}",
            ":::",
            "0",
            "600",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn htpar");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let logged = std::fs::read_to_string(&log)
            .map(|s| s.lines().any(|l| l.starts_with("1\t")))
            .unwrap_or(false);
        if logged {
            break;
        }
        assert!(Instant::now() < deadline, "seq 1 was never logged");
        std::thread::sleep(Duration::from_millis(25));
    }
    child.kill().unwrap();
    child.wait().unwrap();

    let (out, _, code) = run_with_stdin(
        &[
            "-k",
            "--joblog",
            log.to_str().unwrap(),
            "--resume",
            "echo",
            "ran-{}",
            ":::",
            "0",
            "600",
        ],
        "",
    );
    assert_eq!(code, 0);
    assert_eq!(out, "ran-600\n", "only the unlogged job may run");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Resume observed through the telemetry `Recorder`: skipped jobs emit
/// only `Queued`, the one genuinely executed job a full lifecycle.
#[test]
fn recorder_distinguishes_skipped_from_executed_on_resume() {
    use std::sync::Arc;

    use htpar_cli::exec::execute_observed;
    use htpar_cli::parse_args;
    use htpar_telemetry::{EventBus, Recorder};

    let dir = std::env::temp_dir().join(format!("htpar-recorder-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("recorder.joblog");
    let _ = std::fs::remove_file(&log);
    let spec = |tokens: &[&str]| {
        let argv: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        parse_args(&argv).unwrap()
    };
    let emit = |_: &str, _: &str| {};

    // Seed the joblog with jobs 1 and 2 complete.
    let report = htpar_cli::execute(
        spec(&[
            "--joblog",
            log.to_str().unwrap(),
            "true",
            "{}",
            ":::",
            "a",
            "b",
        ]),
        std::io::empty(),
        emit,
    )
    .unwrap();
    assert_eq!(report.succeeded, 2);

    // Resume with a third arg: 1 and 2 skip, 3 executes.
    let bus = EventBus::shared();
    let rec = Recorder::shared();
    bus.attach(rec.clone());
    let report = execute_observed(
        spec(&[
            "-k",
            "--joblog",
            log.to_str().unwrap(),
            "--resume",
            "true",
            "{}",
            ":::",
            "a",
            "b",
            "c",
        ]),
        std::io::empty(),
        emit,
        Some(Arc::clone(&bus)),
    )
    .unwrap();
    assert_eq!(report.skipped, 2);
    assert_eq!(report.succeeded, 1);

    let kinds = |seq: u64| -> Vec<&'static str> {
        rec.lifecycle_of(seq).iter().map(|e| e.kind()).collect()
    };
    assert_eq!(kinds(1), vec!["queued"], "skipped job emits only Queued");
    assert_eq!(kinds(2), vec!["queued"], "skipped job emits only Queued");
    // `true c` renders metachar-free but `true` is a shell builtin, so
    // the launch path reports the sh -c fallback between spawn and
    // completion.
    assert_eq!(
        kinds(3),
        vec![
            "queued",
            "slot_acquired",
            "spawned",
            "sh_fallback",
            "completed"
        ],
        "executed job emits the full lifecycle"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn joblog_resume_via_cli() {
    let dir = std::env::temp_dir().join(format!("htpar-cli-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("cli.joblog");
    let _ = std::fs::remove_file(&log);

    let (_, _, code) = run_with_stdin(
        &[
            "-k",
            "--joblog",
            log.to_str().unwrap(),
            "true",
            "{}",
            ":::",
            "a",
            "b",
        ],
        "",
    );
    assert_eq!(code, 0);
    // Resume run: everything skips, output empty, still success.
    let (out, _, code) = run_with_stdin(
        &[
            "-k",
            "--joblog",
            log.to_str().unwrap(),
            "--resume",
            "echo",
            "ran-{}",
            ":::",
            "a",
            "b",
        ],
        "",
    );
    assert_eq!(code, 0);
    assert_eq!(out, "", "all jobs skipped on resume");
    std::fs::remove_dir_all(&dir).unwrap();
}
