//! End-to-end tests of `htpar drive --local-cluster`: real OS processes
//! (the driver spawns agent subprocesses by re-exec'ing the `htpar`
//! binary), real sockets, real SIGKILL. This is the acceptance surface
//! for the network subsystem: completion must be exactly-once in the
//! aggregated joblog even when an agent is killed mid-run, and
//! `--resume` after the *driver* is killed must run exactly the
//! unlogged seqs.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use htpar_core::joblog;
use htpar_net::driver::verify_exactly_once;

fn htpar() -> Command {
    Command::new(env!("CARGO_BIN_EXE_htpar"))
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("htpar-net-e2e-{tag}-{}", std::process::id()))
}

fn seq_stdin(n: u64) -> String {
    let mut s = String::new();
    for i in 1..=n {
        s.push_str(&i.to_string());
        s.push('\n');
    }
    s
}

/// Run `htpar drive` with the given args and stdin, capturing stderr.
fn drive(args: &[&str], stdin: &str) -> (String, i32) {
    let mut child = htpar()
        .arg("drive")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn htpar drive");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

/// Pull `(completed, total, skipped)` out of the drive summary line.
fn summary(stderr: &str) -> (u64, u64, u64) {
    for line in stderr.lines() {
        if let Some(rest) = line.strip_prefix("htpar drive: ") {
            if rest.contains("task(s) in") {
                let tokens: Vec<&str> = rest.split_whitespace().collect();
                let (completed, total) = tokens[0].split_once('/').expect("completed/total");
                let skipped_at = tokens
                    .iter()
                    .position(|t| *t == "skipped,")
                    .expect("skipped field");
                return (
                    completed.parse().unwrap(),
                    total.parse().unwrap(),
                    tokens[skipped_at - 1].parse().unwrap(),
                );
            }
        }
    }
    panic!("no drive summary in stderr:\n{stderr}");
}

fn assert_exactly_once(log: &Path, total: u64) {
    let entries = joblog::read_log(log).expect("readable joblog");
    verify_exactly_once(&entries, total).unwrap_or_else(|e| panic!("joblog not exactly-once: {e}"));
}

/// A 10k-task mini-cluster run with one agent SIGKILLed mid-flight:
/// the run completes, and the merged joblog holds exactly one row per
/// seq — the killed agent's unfinished work re-ran on survivors, its
/// finished work did not. Parameterized over the net core so the chaos
/// matrix covers both the epoll reactor and the threaded reference.
fn run_chaos_sigkill(core: &str) {
    let log = temp_path(&format!("chaos-{core}.joblog"));
    let _ = std::fs::remove_file(&log);
    let total = 10_000u64;
    let (stderr, code) = drive(
        &[
            "--local-cluster",
            "4",
            "-j",
            "4",
            "--net-core",
            core,
            "--payload",
            "sleep:200",
            "--chaos-kill-agent",
            "2@1000",
            "--joblog",
            log.to_str().unwrap(),
            "task",
            "{}",
        ],
        &seq_stdin(total),
    );
    assert_eq!(code, 0, "drive failed:\n{stderr}");
    assert!(
        stderr.contains("chaos: killing agent 2"),
        "chaos hook never fired:\n{stderr}"
    );
    assert!(
        stderr.contains("[lost]"),
        "agent 2 not reported lost:\n{stderr}"
    );
    let (completed, reported_total, skipped) = summary(&stderr);
    assert_eq!((completed, reported_total, skipped), (total, total, 0));
    assert_exactly_once(&log, total);
    let _ = std::fs::remove_file(&log);
}

#[test]
fn chaos_sigkill_agent_mid_run_completes_exactly_once() {
    run_chaos_sigkill("reactor");
}

#[test]
fn chaos_sigkill_on_threaded_core_completes_exactly_once() {
    run_chaos_sigkill("threaded");
}

/// Kill the *driver* mid-run, then `--resume`: the second run skips
/// every seq the first run logged and runs exactly the rest.
#[test]
fn driver_kill_then_resume_runs_exactly_the_unlogged_seqs() {
    let log = temp_path("resume.joblog");
    let _ = std::fs::remove_file(&log);
    let total = 400u64;

    let mut child = htpar()
        .args([
            "drive",
            "--local-cluster",
            "2",
            "-j",
            "2",
            "--payload",
            "sleep:20000",
            "--joblog",
            log.to_str().unwrap(),
            "task",
            "{}",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn htpar drive");
    {
        // Write and close stdin: the driver reads the whole task list
        // (to EOF) before dialing agents.
        let mut stdin = child.stdin.take().unwrap();
        stdin.write_all(seq_stdin(total).as_bytes()).unwrap();
    }

    // Per-row flushing means complete joblog lines appear while the run
    // is live; kill the driver once a real prefix is on disk.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let rows = std::fs::read_to_string(&log)
            .map(|s| s.lines().count().saturating_sub(1))
            .unwrap_or(0);
        if rows >= 50 {
            break;
        }
        assert!(Instant::now() < deadline, "first run never logged 50 rows");
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().unwrap();
    child.wait().unwrap();
    let first_run = joblog::completed_seqs(&joblog::read_log(&log).expect("readable joblog"));
    assert!(!first_run.is_empty() && (first_run.len() as u64) < total);

    let (stderr, code) = drive(
        &[
            "--local-cluster",
            "2",
            "-j",
            "2",
            "--payload",
            "sleep:1000",
            "--resume",
            "--joblog",
            log.to_str().unwrap(),
            "task",
            "{}",
        ],
        &seq_stdin(total),
    );
    assert_eq!(code, 0, "resume drive failed:\n{stderr}");
    let (completed, reported_total, skipped) = summary(&stderr);
    assert_eq!(reported_total, total);
    assert_eq!(
        skipped,
        first_run.len() as u64,
        "resume must skip exactly the logged seqs"
    );
    assert_eq!(
        completed,
        total - first_run.len() as u64,
        "resume must run exactly the unlogged seqs"
    );
    assert_exactly_once(&log, total);
    let _ = std::fs::remove_file(&log);
}

/// Shell payload over a mini-cluster: real `sh -c` on the agent side,
/// output bytes accounted in the joblog `Receive` column.
#[test]
fn shell_payload_runs_real_commands_on_agents() {
    let log = temp_path("shell.joblog");
    let _ = std::fs::remove_file(&log);
    let (stderr, code) = drive(
        &[
            "--local-cluster",
            "2",
            "--joblog",
            log.to_str().unwrap(),
            "echo",
            "out-{}",
            ":::",
            "a",
            "bb",
            "ccc",
            "dddd",
        ],
        "",
    );
    assert_eq!(code, 0, "drive failed:\n{stderr}");
    let entries = joblog::read_log(&log).expect("readable joblog");
    verify_exactly_once(&entries, 4).unwrap();
    for entry in &entries {
        assert_eq!(entry.exitval, 0);
        // "out-a\n" = 6 bytes, etc.
        let arg_len = entry.command.len() - "echo out-".len();
        assert_eq!(entry.receive as usize, "out-\n".len() + arg_len);
    }
    let _ = std::fs::remove_file(&log);
}
