//! End-to-end durability test of `htpar serve --state-dir`: a real
//! pilot process is SIGKILLed mid-campaign with one attached session
//! and one detached session in flight, then restarted against the same
//! journal, listen path, and joblog directory. The restarted pilot
//! must recover both sessions from the write-ahead journal, re-run
//! exactly the unfinished seqs (per-tenant joblogs end up exactly-once
//! at the full campaign size), serve a `--reattach` client the complete
//! result set (replayed history plus live completions, no duplicates),
//! and release the orphaned attached session via `--detach-ttl`.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use htpar_core::joblog;
use htpar_net::client::{ClientEvent, SessionClient, SessionConfig};
use htpar_net::driver::verify_exactly_once;
use htpar_net::frame::Payload;
use htpar_net::serve::SERVE_ANNOUNCE_PREFIX;

const TASKS: u64 = 300;
const DETACH_KEY: u64 = 42;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("htpar-restart-e2e-{tag}-{}", std::process::id()))
}

fn spawn_pilot(listen: &str, state: &PathBuf, logs: &PathBuf, ttl: &str, tel: &PathBuf) -> Child {
    spawn_pilot_sessions(listen, state, logs, ttl, tel, "2")
}

fn spawn_pilot_sessions(
    listen: &str,
    state: &PathBuf,
    logs: &PathBuf,
    ttl: &str,
    tel: &PathBuf,
    max_sessions: &str,
) -> Child {
    Command::new(env!("CARGO_BIN_EXE_htpar"))
        .args([
            "serve",
            "--local-cluster",
            "2",
            "-j",
            "2",
            "--max-sessions",
            max_sessions,
            "--listen",
            listen,
            "--detach-ttl",
            ttl,
            "--state-dir",
        ])
        .arg(state)
        .arg("--joblog-dir")
        .arg(logs)
        .env("HTPAR_TELEMETRY_JSONL", tel)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn htpar serve")
}

/// Read the pilot's stdout until its announce line.
fn await_announce(pilot: &mut Child) -> String {
    let stdout = pilot.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    loop {
        let line = lines
            .next()
            .expect("serve announced before exiting")
            .expect("readable stdout");
        if let Some(rest) = line.strip_prefix(SERVE_ANNOUNCE_PREFIX) {
            return rest.trim().to_string();
        }
    }
}

/// Submit the full campaign for one tenant in several batches. The
/// journal is fsynced before each `SessionAck`, so once this returns
/// the pilot may be SIGKILLed without losing any accepted task.
fn submit_all(client: &mut SessionClient) {
    let inputs: Vec<Vec<String>> = (1..=TASKS).map(|i| vec![i.to_string()]).collect();
    for batch in inputs.chunks(100) {
        let verdict = client.submit(batch).expect("submit");
        assert!(verdict.accepted, "admission refused: {}", verdict.reason);
    }
}

fn joblog_rows(path: &PathBuf) -> usize {
    joblog::read_log_tolerant(path).map_or(0, |e| e.len())
}

/// Regression: completions replayed from a *previous pilot life* must
/// carry the tasks' real stdout, not zeros. Every task finishes and is
/// recorded before the SIGKILL, so everything the reattach client sees
/// is synthesized from the `<tenant>.outlog` sidecar next to the
/// joblog — any record with empty output means the retention path broke.
#[test]
fn reattach_replays_retained_stdout_after_restart() {
    const OUT_TASKS: u64 = 60;
    let sock = temp_path("outlog.sock");
    let listen = format!("unix:{}", sock.display());
    let state = temp_path("outlog-state");
    let logs = temp_path("outlog-logs");
    let tel = temp_path("outlog-events.jsonl");
    for dir in [&state, &logs] {
        let _ = std::fs::remove_dir_all(dir);
    }
    for f in [&sock, &tel] {
        let _ = std::fs::remove_file(f);
    }

    // ---- first life: run the whole campaign to completion, detach.
    let mut pilot = spawn_pilot_sessions(&listen, &state, &logs, "60", &tel, "1");
    let spec = await_announce(&mut pilot);
    let mut config = SessionConfig::new(spec, "out");
    config.payload = Payload::Shell;
    config.command = "echo out-{}".to_string();
    let mut session = SessionClient::connect(config).expect("out connects");
    let inputs: Vec<Vec<String>> = (1..=OUT_TASKS).map(|i| vec![i.to_string()]).collect();
    let verdict = session.submit(&inputs).expect("submit");
    assert!(verdict.accepted, "admission refused: {}", verdict.reason);
    session.detach(DETACH_KEY).expect("detach acked");

    let out_log = logs.join("out.joblog");
    let deadline = Instant::now() + Duration::from_secs(30);
    while joblog_rows(&out_log) < OUT_TASKS as usize {
        assert!(Instant::now() < deadline, "campaign did not finish");
        std::thread::sleep(Duration::from_millis(20));
    }
    pilot.kill().expect("kill pilot");
    pilot.wait().expect("reap pilot");

    // ---- second life: everything the client collects is replay.
    let mut pilot2 = spawn_pilot_sessions(&listen, &state, &logs, "8", &tel, "1");
    let spec2 = await_announce(&mut pilot2);
    let reattached =
        SessionClient::reattach(SessionConfig::new(spec2, "out"), DETACH_KEY).expect("reattach");
    let mut seen = vec![false; OUT_TASKS as usize + 1];
    let completed = reattached
        .collect(|recs| {
            for rec in recs {
                let seq = rec.seq as usize;
                assert!(
                    seq >= 1 && seq <= OUT_TASKS as usize,
                    "seq {seq} out of range"
                );
                assert!(!seen[seq], "seq {seq} delivered twice");
                seen[seq] = true;
                assert_eq!(rec.exitval, 0, "seq {seq} replayed a failure");
                assert_eq!(
                    rec.stdout.trim(),
                    format!("out-{seq}"),
                    "seq {seq} replayed without its retained stdout"
                );
            }
        })
        .expect("collect");
    assert_eq!(completed, OUT_TASKS);
    assert!(seen[1..].iter().all(|&s| s), "not every seq replayed");
    assert!(
        logs.join("out.outlog").exists(),
        "outlog sidecar persisted next to the joblog"
    );

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(status) = pilot2.try_wait().expect("try_wait") {
            assert_eq!(status.code(), Some(0), "restarted pilot exits cleanly");
            break;
        }
        if Instant::now() >= deadline {
            // Reap before panicking: a leaked pilot holds the test
            // harness's inherited stderr pipe open forever.
            let _ = pilot2.kill();
            let _ = pilot2.wait();
            panic!("restarted pilot did not exit");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn killed_pilot_recovers_sessions_and_reattach_collects_everything() {
    let sock = temp_path("pilot.sock");
    let listen = format!("unix:{}", sock.display());
    let state = temp_path("state");
    let logs = temp_path("logs");
    let tel1 = temp_path("events-1.jsonl");
    let tel2 = temp_path("events-2.jsonl");
    for dir in [&state, &logs] {
        let _ = std::fs::remove_dir_all(dir);
    }
    for f in [&sock, &tel1, &tel2] {
        let _ = std::fs::remove_file(f);
    }

    // ---- first life: admit two campaigns, then die mid-flight.
    let mut pilot = spawn_pilot(&listen, &state, &logs, "60", &tel1);
    let spec = await_announce(&mut pilot);

    // Attached session: submits everything and keeps collecting until
    // the kill severs the socket.
    let mut att_config = SessionConfig::new(spec.clone(), "att");
    att_config.payload = Payload::SleepUs(20_000);
    let mut att = SessionClient::connect(att_config).expect("att connects");
    submit_all(&mut att);
    let att_thread = std::thread::spawn(move || {
        let mut seen = 0u64;
        loop {
            match att.recv() {
                Ok(ClientEvent::Done(recs)) => seen += recs.len() as u64,
                Ok(other) => panic!("att: unexpected event {other:?}"),
                Err(_) => return seen, // pilot died under us
            }
        }
    });

    // Detached session: submits everything, detaches durably, hangs up.
    let mut det_config = SessionConfig::new(spec.clone(), "det");
    det_config.payload = Payload::SleepUs(20_000);
    let mut det = SessionClient::connect(det_config).expect("det connects");
    submit_all(&mut det);
    let pending = det.detach(DETACH_KEY).expect("detach acked");
    assert!(pending > 0, "detached with work still pending");

    // Let both campaigns make real progress, then SIGKILL the pilot
    // with work queued, in flight, and partially recorded.
    let att_log = logs.join("att.joblog");
    let det_log = logs.join("det.joblog");
    let deadline = Instant::now() + Duration::from_secs(30);
    while joblog_rows(&att_log) < 20 || joblog_rows(&det_log) < 20 {
        assert!(Instant::now() < deadline, "campaigns made no progress");
        std::thread::sleep(Duration::from_millis(20));
    }
    pilot.kill().expect("kill pilot");
    pilot.wait().expect("reap pilot");
    let att_seen_before_kill = att_thread.join().expect("att thread");
    assert!(
        att_seen_before_kill < TASKS,
        "kill arrived before the attached campaign finished"
    );

    // ---- second life: same state dir, journal replay, short TTL so
    // the orphaned attached session is released once its work drains.
    let mut pilot2 = spawn_pilot(&listen, &state, &logs, "8", &tel2);
    let spec2 = await_announce(&mut pilot2);

    // Reattach to the detached campaign and collect everything:
    // replayed pre-kill history first, live completions after.
    let reattached =
        SessionClient::reattach(SessionConfig::new(spec2, "det"), DETACH_KEY).expect("reattach");
    assert_eq!(reattached.submitted(), TASKS, "recovered accepted total");
    let mut seen = vec![false; TASKS as usize + 1];
    let completed = reattached
        .collect(|recs| {
            for rec in recs {
                let seq = rec.seq as usize;
                assert!(seq >= 1 && seq <= TASKS as usize, "seq {seq} out of range");
                assert!(!seen[seq], "seq {seq} delivered twice across lives");
                seen[seq] = true;
            }
        })
        .expect("collect");
    assert_eq!(completed, TASKS, "pilot's completion total");
    assert!(seen[1..].iter().all(|&s| s), "not every seq collected");

    // The recovered attached session has no client to return to; it
    // finishes its residual work and is swept by the detach TTL, which
    // lets `--max-sessions 2` drain the pilot to a clean exit.
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        if let Some(status) = pilot2.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "restarted pilot did not exit");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(status.code(), Some(0), "restarted pilot exits cleanly");

    // Exactly-once on disk across both lives: every seq has exactly
    // one row, none lost to the kill, none re-run after being recorded.
    for path in [&att_log, &det_log] {
        let entries = joblog::read_log(path).expect("tenant joblog");
        verify_exactly_once(&entries, TASKS)
            .unwrap_or_else(|e| panic!("{} not exactly-once: {e}", path.display()));
    }

    // Telemetry: life 1 recorded the durable detach; life 2 recorded
    // the journal replay and the reattach.
    let events1 = std::fs::read_to_string(&tel1).expect("life-1 telemetry");
    assert!(
        events1
            .lines()
            .any(|l| l.contains("\"type\":\"session_detached\"")),
        "session_detached recorded in life 1"
    );
    let events2 = std::fs::read_to_string(&tel2).expect("life-2 telemetry");
    assert!(
        events2
            .lines()
            .any(|l| l.contains("\"type\":\"pilot_recovered\"")),
        "pilot_recovered recorded in life 2"
    );
    assert!(
        events2
            .lines()
            .any(|l| l.contains("\"type\":\"session_reattached\"")),
        "session_reattached recorded in life 2"
    );
    assert!(
        state.join("pilot.journal").exists(),
        "journal persisted under --state-dir"
    );
}
