//! End-to-end acceptance tests for `htpar drive --dag`: a 10k-task
//! diamond graph over a real local cluster with a chaos-SIGKILLed
//! agent, and driver-SIGKILL + `--resume` replaying exactly the
//! unfinished subgraph. Both runs must leave an exactly-once joblog in
//! which every task's dependencies are logged before it.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use htpar_core::joblog;
use htpar_net::driver::verify_exactly_once;

fn htpar() -> Command {
    Command::new(env!("CARGO_BIN_EXE_htpar"))
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("htpar-dag-e2e-{tag}-{}", std::process::id()))
}

/// Write a diamond-chain DAG of `tasks` nodes (a multiple of 4): blocks
/// of head → two arms → join, each head depending on the previous join.
/// Returns the 1-based dependency list per seq (seq = line order + 1),
/// mirroring `Dag::dep_seqs` for the generated file.
fn write_diamond(path: &Path, tasks: u64) -> Vec<Vec<u64>> {
    assert_eq!(tasks % 4, 0, "diamond blocks are 4 tasks");
    let mut spec = String::new();
    let mut deps: Vec<Vec<u64>> = Vec::with_capacity(tasks as usize);
    for b in 0..tasks / 4 {
        let head = 4 * b + 1;
        let (a1, a2, join) = (head + 1, head + 2, head + 3);
        if b == 0 {
            spec.push_str(&format!("t{head}: task {head}\n"));
            deps.push(vec![]);
        } else {
            spec.push_str(&format!("t{head}: task {head} # after: t{}\n", head - 1));
            deps.push(vec![head - 1]);
        }
        spec.push_str(&format!("t{a1}: task {a1} # after: t{head}\n"));
        deps.push(vec![head]);
        spec.push_str(&format!("t{a2}: task {a2} # after: t{head}\n"));
        deps.push(vec![head]);
        spec.push_str(&format!("t{join}: task {join} # after: t{a1},t{a2}\n"));
        deps.push(vec![a1, a2]);
    }
    std::fs::write(path, spec).expect("write dag file");
    deps
}

/// Every row's dependencies must appear earlier in the joblog than the
/// row itself — the scheduler never dispatched a task before its
/// dependencies completed, and the log preserves that order.
fn assert_deps_logged_first(log: &Path, deps: &[Vec<u64>]) {
    let entries = joblog::read_log(log).expect("readable joblog");
    let mut seen = vec![false; deps.len() + 1];
    for entry in &entries {
        for &dep in &deps[(entry.seq - 1) as usize] {
            assert!(
                seen[dep as usize],
                "seq {} logged before its dependency {dep}",
                entry.seq
            );
        }
        seen[entry.seq as usize] = true;
    }
}

/// Pull `(completed, total, skipped)` out of the drive summary line.
fn summary(stderr: &str) -> (u64, u64, u64) {
    for line in stderr.lines() {
        if let Some(rest) = line.strip_prefix("htpar drive: ") {
            if rest.contains("task(s) in") {
                let tokens: Vec<&str> = rest.split_whitespace().collect();
                let (completed, total) = tokens[0].split_once('/').expect("completed/total");
                let skipped_at = tokens
                    .iter()
                    .position(|t| *t == "skipped," || *t == "skipped")
                    .expect("skipped field");
                return (
                    completed.parse().unwrap(),
                    total.parse().unwrap(),
                    tokens[skipped_at - 1].parse().unwrap(),
                );
            }
        }
    }
    panic!("no drive summary in stderr:\n{stderr}");
}

/// The issue's acceptance scenario: a 10k-task diamond DAG under
/// `htpar drive --local-cluster 4` with one agent chaos-SIGKILLed
/// mid-graph. The run completes every task exactly once, and no row
/// precedes a row for one of its dependencies.
#[test]
fn diamond_dag_with_chaos_killed_agent_completes_exactly_once_in_dep_order() {
    let dag_file = temp_path("diamond.dag");
    let log = temp_path("diamond.joblog");
    let _ = std::fs::remove_file(&log);
    let total = 10_000u64;
    let deps = write_diamond(&dag_file, total);

    let out = htpar()
        .args([
            "drive",
            "--local-cluster",
            "4",
            "-j",
            "4",
            "--payload",
            "sleep:200",
            "--chaos-kill-agent",
            "2@1000",
            "--dag",
            dag_file.to_str().unwrap(),
            "--joblog",
            log.to_str().unwrap(),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("run htpar drive --dag");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "drive failed:\n{stderr}");
    assert!(
        stderr.contains("chaos: killing agent 2"),
        "chaos hook never fired:\n{stderr}"
    );
    assert!(
        stderr.contains("[lost]"),
        "agent 2 not reported lost:\n{stderr}"
    );
    let (completed, reported_total, skipped) = summary(&stderr);
    assert_eq!((completed, reported_total, skipped), (total, total, 0));

    let entries = joblog::read_log(&log).expect("readable joblog");
    verify_exactly_once(&entries, total).unwrap_or_else(|e| panic!("joblog not exactly-once: {e}"));
    assert_deps_logged_first(&log, &deps);
    let _ = std::fs::remove_file(&dag_file);
    let _ = std::fs::remove_file(&log);
}

/// SIGKILL the *driver* mid-graph, then `--dag --resume`: the second
/// run keeps every successfully logged task and replays exactly the
/// unfinished subgraph, and the merged joblog is exactly-once with
/// dependencies still ahead of their dependents.
#[test]
fn driver_sigkill_then_dag_resume_replays_exactly_the_unfinished_subgraph() {
    let dag_file = temp_path("resume.dag");
    let log = temp_path("resume.joblog");
    let _ = std::fs::remove_file(&log);
    let total = 400u64;
    let deps = write_diamond(&dag_file, total);

    let mut child = htpar()
        .args([
            "drive",
            "--local-cluster",
            "2",
            "-j",
            "2",
            "--payload",
            "sleep:20000",
            "--dag",
            dag_file.to_str().unwrap(),
            "--joblog",
            log.to_str().unwrap(),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn htpar drive --dag");

    // Per-row flushing means complete joblog lines appear while the run
    // is live; kill the driver once a real prefix is on disk.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let rows = std::fs::read_to_string(&log)
            .map(|s| s.lines().count().saturating_sub(1))
            .unwrap_or(0);
        if rows >= 50 {
            break;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("first run never logged 50 rows");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().unwrap();
    child.wait().unwrap();
    let first_run = joblog::completed_seqs(&joblog::read_log(&log).expect("readable joblog"));
    assert!(!first_run.is_empty() && (first_run.len() as u64) < total);

    let out = htpar()
        .args([
            "drive",
            "--local-cluster",
            "2",
            "-j",
            "2",
            "--payload",
            "sleep:1000",
            "--resume",
            "--dag",
            dag_file.to_str().unwrap(),
            "--joblog",
            log.to_str().unwrap(),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("run resume drive");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "resume drive failed:\n{stderr}");
    let (completed, reported_total, skipped) = summary(&stderr);
    assert_eq!(reported_total, total);
    assert_eq!(
        skipped,
        first_run.len() as u64,
        "resume must keep exactly the logged subgraph"
    );
    assert_eq!(
        completed,
        total - first_run.len() as u64,
        "resume must replay exactly the unfinished subgraph"
    );

    let entries = joblog::read_log(&log).expect("readable joblog");
    verify_exactly_once(&entries, total).unwrap_or_else(|e| panic!("joblog not exactly-once: {e}"));
    assert_deps_logged_first(&log, &deps);
    let _ = std::fs::remove_file(&dag_file);
    let _ = std::fs::remove_file(&log);
}
