//! The simulation engine: a world state, a clock, an event queue, and a
//! deterministic RNG.

use std::sync::Arc;

use htpar_telemetry::{Event, EventBus};

use crate::event::{EventKey, EventQueue};
use crate::handler::InlineHandler;
use crate::rng::{stream_rng, SimRng};
use crate::time::SimTime;

/// Handle to a scheduled event; pass to [`Simulation::cancel`].
pub type EventId = EventKey;

/// Handlers are stored inline in the event slot when their captures fit
/// (see [`crate::handler`]) — no per-event heap allocation on the hot
/// path.
type Handler<W> = InlineHandler<W>;

/// A discrete-event simulation over a world state `W`.
///
/// Handlers are `FnOnce(&mut Simulation<W>)` closures; they may freely
/// read and mutate the world, schedule further events, cancel events, and
/// draw randomness. The engine guarantees:
///
/// - events fire in nondecreasing time order;
/// - events scheduled for the same instant fire in scheduling order;
/// - the clock never goes backwards (scheduling in the past fires "now");
/// - two runs with the same seed and same scheduling sequence are
///   identical.
pub struct Simulation<W> {
    now: SimTime,
    queue: EventQueue<Handler<W>>,
    world: W,
    rng: SimRng,
    fired: u64,
    bus: Option<Arc<EventBus>>,
}

impl<W> Simulation<W> {
    /// A simulation seeded with a fixed default seed. Prefer
    /// [`Simulation::with_seed`] in experiments so the seed is explicit.
    pub fn new(world: W) -> Self {
        Simulation::with_seed(world, 0x5EED)
    }

    /// A simulation with an explicit RNG seed.
    pub fn with_seed(world: W, seed: u64) -> Self {
        Simulation::with_capacity(world, seed, 0)
    }

    /// A simulation whose event queue has room for `events` concurrently
    /// pending events up front. Large models (the 9,408-node weak-scaling
    /// run keeps >1M watchdogs and completions in flight) should size
    /// this to avoid rehoming the event slab mid-run.
    pub fn with_capacity(world: W, seed: u64, events: usize) -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity(events),
            world,
            rng: stream_rng(seed, 0),
            fired: 0,
            bus: None,
        }
    }

    /// Make room for `additional` more pending events without
    /// reallocating mid-run.
    pub fn reserve_events(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// Attach a telemetry bus: each fired event emits
    /// [`Event::SimEventFired`] (sim-time + running count) and each
    /// successful [`Simulation::cancel`] emits
    /// [`Event::SimEventCancelled`]. Telemetry is observation only — it
    /// never perturbs the RNG stream or event order, so instrumented and
    /// uninstrumented runs of the same seed stay identical.
    pub fn set_telemetry(&mut self, bus: Arc<EventBus>) {
        self.bus = Some(bus);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events that have fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Shared access to the world state.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world state.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// The simulation's RNG. All model randomness must come from here (or
    /// from streams derived via [`stream_rng`]) for determinism.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedule `handler` at absolute time `at`. Scheduling in the past is
    /// clamped to "now" — the handler fires at the current time, after any
    /// already-queued handlers for that time.
    pub fn schedule_at<F>(&mut self, at: SimTime, handler: F) -> EventId
    where
        F: FnOnce(&mut Simulation<W>) + 'static,
    {
        let at = at.max(self.now);
        self.queue.push(at, InlineHandler::new(handler))
    }

    /// Schedule `handler` at `now + delay`.
    pub fn schedule_in<F>(&mut self, delay: SimTime, handler: F) -> EventId
    where
        F: FnOnce(&mut Simulation<W>) + 'static,
    {
        let at = self.now + delay;
        self.queue.push(at, InlineHandler::new(handler))
    }

    /// Schedule a batch of same-shaped events (absolute times, clamped to
    /// now like [`Simulation::schedule_at`]), reserving queue capacity
    /// once up front. Returns the ids in input order — the hot producers
    /// (per-node start/crash/completion loops) keep them for later
    /// [`Simulation::cancel_many`].
    pub fn schedule_batch<F, I>(&mut self, events: I) -> Vec<EventId>
    where
        F: FnOnce(&mut Simulation<W>) + 'static,
        I: IntoIterator<Item = (SimTime, F)>,
    {
        let events = events.into_iter();
        self.queue.reserve(events.size_hint().0);
        events
            .map(|(at, handler)| {
                let at = at.max(self.now);
                self.queue.push(at, InlineHandler::new(handler))
            })
            .collect()
    }

    /// Cancel a pending event. Returns `true` if it had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let cancelled = self.queue.cancel(id);
        if cancelled {
            if let Some(bus) = &self.bus {
                bus.emit(Event::SimEventCancelled {
                    sim_time: self.now.as_secs_f64(),
                    count: 1,
                });
            }
        }
        cancelled
    }

    /// Cancel a batch of pending events (e.g. everything in flight on a
    /// crashed node). Returns how many had not yet fired. Telemetry is
    /// batched: one aggregate [`Event::SimEventCancelled`] carrying the
    /// whole count, not one bus publish per event.
    pub fn cancel_many<I>(&mut self, ids: I) -> usize
    where
        I: IntoIterator<Item = EventId>,
    {
        let count = ids.into_iter().filter(|&id| self.queue.cancel(id)).count();
        if count > 0 {
            if let Some(bus) = &self.bus {
                bus.emit(Event::SimEventCancelled {
                    sim_time: self.now.as_secs_f64(),
                    count: count as u64,
                });
            }
        }
        count
    }

    /// Schedule `handler` every `period`, starting one period from now,
    /// until it returns `false`. Useful for monitors and samplers.
    pub fn schedule_every<F>(&mut self, period: SimTime, handler: F)
    where
        F: FnMut(&mut Simulation<W>) -> bool + 'static,
    {
        fn tick<W, F>(sim: &mut Simulation<W>, period: SimTime, mut handler: F)
        where
            F: FnMut(&mut Simulation<W>) -> bool + 'static,
        {
            if handler(sim) {
                sim.schedule_in(period, move |sim| tick(sim, period, handler));
            }
        }
        self.schedule_in(period, move |sim| tick(sim, period, handler));
    }

    /// Time of the next pending event.
    pub fn peek_next(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Fire the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((at, handler)) => {
                debug_assert!(at >= self.now, "event queue must be time-ordered");
                self.now = at;
                self.fired += 1;
                if let Some(bus) = &self.bus {
                    bus.emit(Event::SimEventFired {
                        sim_time: at.as_secs_f64(),
                        count: self.fired,
                    });
                }
                handler.invoke(self);
                true
            }
            None => false,
        }
    }

    /// Run until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the queue is empty or the next event is strictly after
    /// `horizon`. The clock is left at the last fired event (or advanced to
    /// `horizon` if nothing fired at or before it).
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some(next) = self.peek_next() {
            if next > horizon {
                break;
            }
            self.step();
        }
        if self.now < horizon {
            self.now = horizon;
        }
    }

    /// Consume the simulation and return the world.
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_order_and_advances_clock() {
        let mut sim = Simulation::new(Vec::new());
        sim.schedule_at(SimTime::from_secs(2), |s| s.world_mut().push(2));
        sim.schedule_at(SimTime::from_secs(1), |s| s.world_mut().push(1));
        sim.schedule_at(SimTime::from_secs(3), |s| s.world_mut().push(3));
        sim.run();
        assert_eq!(sim.world(), &vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_secs(3));
        assert_eq!(sim.events_fired(), 3);
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut sim = Simulation::new(0u32);
        fn tick(sim: &mut Simulation<u32>) {
            *sim.world_mut() += 1;
            if *sim.world() < 5 {
                sim.schedule_in(SimTime::from_secs(1), tick);
            }
        }
        sim.schedule_at(SimTime::ZERO, tick);
        sim.run();
        assert_eq!(*sim.world(), 5);
        assert_eq!(sim.now(), SimTime::from_secs(4));
    }

    #[test]
    fn scheduling_in_the_past_fires_now() {
        let mut sim = Simulation::new(Vec::new());
        sim.schedule_at(SimTime::from_secs(10), |s| {
            s.schedule_at(SimTime::from_secs(1), |s2| {
                let now = s2.now();
                s2.world_mut().push(now);
            });
        });
        sim.run();
        assert_eq!(sim.world(), &vec![SimTime::from_secs(10)]);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulation::new(0u32);
        for i in 1..=10 {
            sim.schedule_at(SimTime::from_secs(i), |s| *s.world_mut() += 1);
        }
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(*sim.world(), 4);
        assert_eq!(sim.now(), SimTime::from_secs(4));
        assert_eq!(sim.events_pending(), 6);
        sim.run();
        assert_eq!(*sim.world(), 10);
    }

    #[test]
    fn run_until_advances_clock_through_idle_time() {
        let mut sim: Simulation<()> = Simulation::new(());
        sim.run_until(SimTime::from_secs(100));
        assert_eq!(sim.now(), SimTime::from_secs(100));
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim = Simulation::new(0u32);
        let id = sim.schedule_at(SimTime::from_secs(1), |s| *s.world_mut() += 1);
        sim.schedule_at(SimTime::from_secs(2), |s| *s.world_mut() += 10);
        assert!(sim.cancel(id));
        sim.run();
        assert_eq!(*sim.world(), 10);
    }

    #[test]
    fn cancel_many_counts_only_pending() {
        let mut sim = Simulation::new(0u32);
        let a = sim.schedule_at(SimTime::from_secs(1), |s| *s.world_mut() += 1);
        let b = sim.schedule_at(SimTime::from_secs(2), |s| *s.world_mut() += 10);
        let c = sim.schedule_at(SimTime::from_secs(3), |s| *s.world_mut() += 100);
        assert!(sim.step()); // fire `a`
        assert_eq!(sim.cancel_many([a, b, c]), 2, "a already fired");
        sim.run();
        assert_eq!(*sim.world(), 1);
    }

    #[test]
    fn schedule_every_repeats_until_false() {
        let mut sim = Simulation::new(Vec::new());
        sim.schedule_every(SimTime::from_secs(10), |s| {
            let now = s.now();
            s.world_mut().push(now.as_secs_f64());
            s.world().len() < 4
        });
        sim.run();
        assert_eq!(sim.world(), &vec![10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn telemetry_reports_fired_and_cancelled_milestones() {
        use htpar_telemetry::Recorder;
        let bus = EventBus::shared();
        let rec = Recorder::shared();
        bus.attach(rec.clone());
        let mut sim = Simulation::new(0u32);
        sim.set_telemetry(bus);
        sim.schedule_at(SimTime::from_secs(1), |s| *s.world_mut() += 1);
        let id = sim.schedule_at(SimTime::from_secs(2), |s| *s.world_mut() += 10);
        sim.schedule_at(SimTime::from_secs(3), |s| *s.world_mut() += 100);
        assert!(sim.cancel(id));
        sim.run();
        assert_eq!(*sim.world(), 101);
        let mut fired = Vec::new();
        let mut cancelled = 0;
        for e in rec.events() {
            match e {
                Event::SimEventFired { sim_time, count } => fired.push((sim_time, count)),
                Event::SimEventCancelled { count, .. } => cancelled += count,
                _ => panic!("unexpected event kind {}", e.kind()),
            }
        }
        assert_eq!(fired, vec![(1.0, 1), (3.0, 2)]);
        assert_eq!(cancelled, 1);
        // Cancelling an already-fired event emits nothing further.
        assert!(!sim.cancel(id));
        assert_eq!(rec.count_matching(|e| e.kind() == "sim_event_cancelled"), 1);
    }

    #[test]
    fn cancel_many_emits_one_aggregate_telemetry_event() {
        use htpar_telemetry::Recorder;
        let bus = EventBus::shared();
        let rec = Recorder::shared();
        bus.attach(rec.clone());
        let mut sim = Simulation::new(0u32);
        sim.set_telemetry(bus);
        let mut ids = Vec::new();
        for i in 0..128u64 {
            ids.push(sim.schedule_at(SimTime::from_secs(i + 1), |s| *s.world_mut() += 1));
        }
        assert_eq!(sim.cancel_many(ids), 128);
        let counts: Vec<u64> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::SimEventCancelled { count, .. } => Some(*count),
                _ => None,
            })
            .collect();
        assert_eq!(counts, vec![128], "one aggregate publish, not 128");
        // A batch that cancels nothing publishes nothing.
        assert_eq!(sim.cancel_many(Vec::new()), 0);
        assert_eq!(rec.count_matching(|e| e.kind() == "sim_event_cancelled"), 1);
    }

    #[test]
    fn mass_cancel_updates_pending_count_and_peek_immediately() {
        // The cancel_many-then-peek latency cliff: the old heap left a
        // tombstone per cancelled event for one giant drain at the next
        // peek/pop. The slab frees slots directly, so pending-count and
        // next-event time are exact right after the mass cancel.
        let mut sim = Simulation::new(0u32);
        let mut ids = Vec::new();
        for i in 0..10_000u64 {
            ids.push(sim.schedule_at(SimTime::from_micros(100 + i), |s| *s.world_mut() += 1));
        }
        let far = SimTime::from_secs(600);
        sim.schedule_at(far, |s| *s.world_mut() += 1);
        assert_eq!(sim.cancel_many(ids), 10_000);
        assert_eq!(sim.events_pending(), 1);
        assert_eq!(sim.peek_next(), Some(far));
        sim.run();
        assert_eq!(*sim.world(), 1);
        assert_eq!(sim.now(), far);
    }

    #[test]
    fn schedule_batch_matches_individual_schedules() {
        let mut sim = Simulation::new(Vec::new());
        let ids = sim.schedule_batch((0..10u64).map(|i| {
            let at = SimTime::from_secs(10 - i); // reversed times
            (at, move |s: &mut Simulation<Vec<u64>>| {
                s.world_mut().push(i)
            })
        }));
        assert_eq!(ids.len(), 10);
        // Cancel one mid-batch via its returned id.
        assert!(sim.cancel(ids[3]));
        sim.run();
        // Times were 10-i, so firing order is reversed input order, minus
        // the cancelled i=3.
        let want: Vec<u64> = (0..10).rev().filter(|&i| i != 3).collect();
        assert_eq!(sim.world(), &want);
    }

    #[test]
    fn same_seed_same_trace() {
        fn trace(seed: u64) -> Vec<u64> {
            use rand::Rng;
            let mut sim = Simulation::with_seed(Vec::new(), seed);
            for _ in 0..100 {
                let dt = SimTime::from_micros(1);
                sim.schedule_in(dt, |s| {
                    let v = s.rng().gen::<u64>();
                    s.world_mut().push(v);
                });
            }
            sim.run();
            sim.into_world()
        }
        assert_eq!(trace(7), trace(7));
        assert_ne!(trace(7), trace(8));
    }
}
