//! Deterministic random-number streams.
//!
//! Every stochastic model in the workspace draws from a ChaCha8 stream
//! derived from `(experiment seed, stream id)`. Distinct stream ids give
//! statistically independent streams, so e.g. each simulated node can own
//! its own stream and per-node results do not depend on global event
//! interleaving.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG type used throughout the simulations.
///
/// ChaCha8 rather than the `StdRng` default because its seeding behaviour
/// is stable across `rand` versions — reproducibility of published
/// experiment tables must not silently change on a dependency bump.
pub type SimRng = ChaCha8Rng;

/// Derive an independent RNG stream from an experiment seed and a stream
/// id. Uses SplitMix64 finalization to decorrelate nearby `(seed, id)`
/// pairs before seeding ChaCha.
pub fn stream_rng(seed: u64, stream: u64) -> SimRng {
    let mixed = splitmix64(seed ^ splitmix64(stream.wrapping_add(0x9E37_79B9_7F4A_7C15)));
    let mut key = [0u8; 32];
    let mut x = mixed;
    for chunk in key.chunks_exact_mut(8) {
        x = splitmix64(x);
        chunk.copy_from_slice(&x.to_le_bytes());
    }
    SimRng::from_seed(key)
}

/// SplitMix64 finalizer — a cheap, well-distributed 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = stream_rng(1, 2);
        let mut b = stream_rng(1, 2);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_stream_ids_diverge() {
        let mut a = stream_rng(1, 2);
        let mut b = stream_rng(1, 3);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = stream_rng(1, 0);
        let mut b = stream_rng(2, 0);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn adjacent_pairs_are_decorrelated() {
        // (seed, stream) and (seed+1, stream-1) must not collide; a naive
        // `seed ^ stream` construction would make them identical.
        let mut a = stream_rng(5, 5);
        let mut b = stream_rng(6, 4);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniform_draws_cover_unit_interval() {
        let mut rng = stream_rng(42, 0);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
