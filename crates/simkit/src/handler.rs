//! Inline event handlers: the small-closure optimization for the event
//! hot path.
//!
//! The old queue boxed every handler (`Box<dyn FnOnce>`), paying an
//! allocation and a pointer chase per scheduled event. Nearly every
//! closure the models schedule captures a handful of words (a node
//! index, a seq, an `Rc` or two), so [`InlineHandler`] stores closures
//! up to [`INLINE_SIZE`] bytes directly in the event slot — the slab is
//! the handler arena — and falls back to a `Box` only for oversized
//! captures. Semantically it is exactly `Box<dyn FnOnce(&mut
//! Simulation<W>)>`: call once, drop if never called.
//!
//! This module is the crate's only `unsafe` code; the wheel and slab
//! stay entirely safe.

use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};

use crate::engine::Simulation;

/// Closures whose captures fit in this many bytes are stored inline in
/// the event slot; larger ones cost one Box. Sized for the models' hot
/// closures (an `Rc<Ctx>` + a few indices) with room to spare.
pub(crate) const INLINE_SIZE: usize = 64;

/// Payload buffer. The 16-byte alignment accommodates any capture the
/// models use (u128/SIMD captures beyond that take the Box path).
#[repr(C, align(16))]
struct Buf([MaybeUninit<u8>; INLINE_SIZE]);

/// A type-erased `FnOnce(&mut Simulation<W>)` stored without a heap
/// allocation whenever it fits.
pub(crate) struct InlineHandler<W> {
    buf: Buf,
    /// Moves the closure out of `buf` and calls it (consuming `buf`).
    call: unsafe fn(*mut u8, &mut Simulation<W>),
    /// Drops the closure in `buf` without calling it.
    drop_fn: unsafe fn(*mut u8),
}

impl<W> InlineHandler<W> {
    pub fn new<F>(f: F) -> Self
    where
        F: FnOnce(&mut Simulation<W>) + 'static,
    {
        /// SAFETY contract (both variants): `p` points to a valid,
        /// initialized `F` (resp. `Box<F>`) which is read out exactly
        /// once — the caller must not touch the buffer afterwards.
        unsafe fn call_inline<W, F: FnOnce(&mut Simulation<W>)>(p: *mut u8, s: &mut Simulation<W>) {
            p.cast::<F>().read()(s)
        }
        unsafe fn drop_inline<F>(p: *mut u8) {
            std::ptr::drop_in_place(p.cast::<F>())
        }
        unsafe fn call_boxed<W, F: FnOnce(&mut Simulation<W>)>(p: *mut u8, s: &mut Simulation<W>) {
            p.cast::<Box<F>>().read()(s)
        }
        unsafe fn drop_boxed<F>(p: *mut u8) {
            drop(p.cast::<Box<F>>().read())
        }

        let mut buf = Buf([MaybeUninit::uninit(); INLINE_SIZE]);
        let p = buf.0.as_mut_ptr().cast::<u8>();
        if size_of::<F>() <= INLINE_SIZE && align_of::<F>() <= align_of::<Buf>() {
            // SAFETY: `F` fits the buffer in size and alignment; the
            // bytes move with the struct and `F` has no address
            // identity, so a later `read` from the moved buffer is the
            // same value.
            unsafe { p.cast::<F>().write(f) };
            InlineHandler {
                buf,
                call: call_inline::<W, F>,
                drop_fn: drop_inline::<F>,
            }
        } else {
            // SAFETY: a `Box<F>` is one pointer — always fits.
            unsafe { p.cast::<Box<F>>().write(Box::new(f)) };
            InlineHandler {
                buf,
                call: call_boxed::<W, F>,
                drop_fn: drop_boxed::<F>,
            }
        }
    }

    /// Call the stored closure, consuming it.
    pub fn invoke(self, sim: &mut Simulation<W>) {
        let mut this = ManuallyDrop::new(self);
        let p = this.buf.0.as_mut_ptr().cast::<u8>();
        // SAFETY: `this` is never dropped (ManuallyDrop), so the closure
        // is read out exactly once, here.
        unsafe { (this.call)(p, sim) }
    }
}

impl<W> Drop for InlineHandler<W> {
    fn drop(&mut self) {
        let p = self.buf.0.as_mut_ptr().cast::<u8>();
        // SAFETY: `invoke` consumes `self` via ManuallyDrop, so a drop
        // here means the closure was never read out and is still live.
        unsafe { (self.drop_fn)(p) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn run_one(h: InlineHandler<u32>) -> u32 {
        let mut sim = Simulation::new(0u32);
        h.invoke(&mut sim);
        *sim.world()
    }

    #[test]
    fn small_closures_run_inline() {
        let x = 41u32;
        let h = InlineHandler::new(move |s: &mut Simulation<u32>| *s.world_mut() = x + 1);
        assert!(size_of::<u32>() <= INLINE_SIZE);
        assert_eq!(run_one(h), 42);
    }

    #[test]
    fn oversized_closures_fall_back_to_a_box() {
        let big = [7u64; 32]; // 256 bytes of captures
        assert!(size_of::<[u64; 32]>() > INLINE_SIZE);
        let h = InlineHandler::new(move |s: &mut Simulation<u32>| {
            *s.world_mut() = big.iter().sum::<u64>() as u32
        });
        assert_eq!(run_one(h), 224);
    }

    #[test]
    fn never_invoked_handlers_drop_their_captures() {
        struct Probe(Rc<RefCell<u32>>);
        impl Drop for Probe {
            fn drop(&mut self) {
                *self.0.borrow_mut() += 1;
            }
        }
        let drops = Rc::new(RefCell::new(0));
        // One inline, one boxed; neither is invoked.
        let small = InlineHandler::<u32>::new({
            let probe = Probe(Rc::clone(&drops));
            move |_| drop(probe)
        });
        let large = InlineHandler::<u32>::new({
            let probe = Probe(Rc::clone(&drops));
            let pad = [0u8; 128];
            move |_| {
                drop(probe);
                let _ = pad;
            }
        });
        drop(small);
        drop(large);
        assert_eq!(*drops.borrow(), 2);
    }

    #[test]
    fn invoked_handlers_drop_their_captures_exactly_once() {
        let drops = Rc::new(RefCell::new(0u32));
        struct Probe(Rc<RefCell<u32>>);
        impl Drop for Probe {
            fn drop(&mut self) {
                *self.0.borrow_mut() += 1;
            }
        }
        let probe = Probe(Rc::clone(&drops));
        let h = InlineHandler::new(move |_s: &mut Simulation<u32>| {
            let _ = &probe;
        });
        let mut sim = Simulation::new(0u32);
        h.invoke(&mut sim);
        assert_eq!(*drops.borrow(), 1);
    }
}
