//! # htpar-simkit — deterministic discrete-event simulation engine
//!
//! The extreme-scale experiments in the paper ran on machines we do not
//! have (Frontier, Perlmutter, a Slurm DTN cluster). Every substrate model
//! in this workspace — cluster, storage, containers, transfer, WMS — is a
//! discrete-event simulation built on this crate.
//!
//! Design goals, in order:
//!
//! 1. **Determinism.** A simulation seeded with the same seed produces the
//!    same event trace, bit for bit. All randomness flows through seeded
//!    [`rand_chacha::ChaCha8Rng`] streams (see [`rng`]); event ties at equal
//!    timestamps break on a monotone sequence number.
//! 2. **Scale.** Fig. 1 of the paper simulates 9,408 nodes × 128 tasks =
//!    1.152 M task completions; the event queue is a hierarchical
//!    calendar (timing-wheel) queue over a generational slab — O(1)
//!    schedule and cancel, no per-event heap allocation for small
//!    handler captures — which sustains millions of events per second in
//!    release builds (guarded by the `sim_rate_gate` bench). The
//!    original binary-heap queue survives as [`reference::HeapQueue`],
//!    the reference model the calendar queue is differentially tested
//!    against.
//! 3. **Ergonomics.** A simulation is a world type `W` plus closures; no
//!    trait dance is needed for simple models.
//!
//! ```
//! use htpar_simkit::{Simulation, SimTime};
//!
//! let mut sim = Simulation::new(0u64); // world = a counter
//! for i in 0..10 {
//!     sim.schedule_in(SimTime::from_secs_f64(i as f64), move |sim| {
//!         *sim.world_mut() += 1;
//!     });
//! }
//! sim.run();
//! assert_eq!(*sim.world(), 10);
//! assert_eq!(sim.now(), SimTime::from_secs_f64(9.0));
//! ```

pub mod dist;
pub mod engine;
pub mod event;
mod handler;
pub mod reference;
pub mod resource;
pub mod rng;
mod slab;
pub mod stats;
pub mod time;
mod wheel;

pub use dist::Dist;
pub use engine::{EventId, Simulation};
pub use event::{EventKey, EventQueue};
pub use resource::Tokens;
pub use rng::{stream_rng, SimRng};
pub use stats::{Histogram, OnlineStats, Summary};
pub use time::SimTime;
