//! Result summarization: the five-number summaries and tails the paper's
//! figures report (Fig. 1 is a box plot per node count; Fig. 3–5 are rate
//! curves; §IV quotes medians and maxima).

use serde::{Deserialize, Serialize};

/// Order statistics and moments of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub n: usize,
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
    pub mean: f64,
    pub std: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty sample. NaNs are
    /// rejected by `total_cmp` ordering (they sort last and poison max);
    /// callers are expected to feed finite data.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(f64::total_cmp);
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        Some(Summary {
            n,
            min: v[0],
            q1: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            q3: quantile_sorted(&v, 0.75),
            p95: quantile_sorted(&v, 0.95),
            p99: quantile_sorted(&v, 0.99),
            max: v[n - 1],
            mean,
            std: var.sqrt(),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Render as a fixed-width table row (used by the figure regenerators).
    pub fn row(&self) -> String {
        format!(
            "n={:<9} min={:<10.3} q1={:<10.3} med={:<10.3} q3={:<10.3} p95={:<10.3} max={:<10.3}",
            self.n, self.min, self.q1, self.median, self.q3, self.p95, self.max
        )
    }
}

/// Linear-interpolated quantile of a pre-sorted slice (type-7, the R/numpy
/// default), clamped to `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Streaming mean/variance via Welford's algorithm — summary statistics
/// for samples too large to buffer (e.g. per-task times of a 9,000-node
/// simulation when only moments are needed).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 with <2 samples).
    pub fn std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Minimum seen (NaN-free contract: 0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum seen (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator (parallel reduction).
    pub fn merge(&self, other: &OnlineStats) -> OnlineStats {
        if self.n == 0 {
            return *other;
        }
        if other.n == 0 {
            return *self;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        OnlineStats {
            n,
            mean,
            m2,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }
}

/// A fixed-range linear histogram.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// A histogram over `[lo, hi)` with `nbins` equal bins.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Histogram {
        assert!(hi > lo && nbins > 0, "invalid histogram range");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((v - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below range / above range.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin center, count)` pairs.
    pub fn centers(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + (i as f64 + 0.5) * width, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let v: Vec<f64> = (1..=5).map(|i| i as f64).collect();
        let s = Summary::of(&v).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
        assert!((s.std - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_of_singleton() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(
            (s.min, s.median, s.max, s.mean, s.std),
            (7.0, 7.0, 7.0, 7.0, 0.0)
        );
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(quantile_sorted(&v, 0.5), 5.0);
        assert_eq!(quantile_sorted(&v, 0.0), 0.0);
        assert_eq!(quantile_sorted(&v, 1.0), 10.0);
        assert_eq!(quantile_sorted(&v, 2.0), 10.0, "clamped above");
        assert_eq!(quantile_sorted(&v, -1.0), 0.0, "clamped below");
    }

    #[test]
    fn summary_is_order_invariant() {
        let a = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        let b = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn online_stats_match_batch_summary() {
        let values: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 50.0)
            .collect();
        let batch = Summary::of(&values).unwrap();
        let mut online = OnlineStats::new();
        for &v in &values {
            online.record(v);
        }
        assert_eq!(online.count(), 1000);
        assert!((online.mean() - batch.mean).abs() < 1e-9);
        assert!((online.std() - batch.std).abs() < 1e-9);
        assert_eq!(online.min(), batch.min);
        assert_eq!(online.max(), batch.max);
    }

    #[test]
    fn online_stats_merge_equals_whole() {
        let values: Vec<f64> = (0..500).map(|i| i as f64 * 0.7).collect();
        let mut whole = OnlineStats::new();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        let merged = a.merge(&b);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.std() - whole.std()).abs() < 1e-9);
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
    }

    #[test]
    fn online_stats_empty_and_singleton() {
        let empty = OnlineStats::new();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.std(), 0.0);
        assert_eq!(empty.min(), 0.0);
        let mut one = OnlineStats::new();
        one.record(5.0);
        assert_eq!(one.mean(), 5.0);
        assert_eq!(one.std(), 0.0);
        let merged = empty.merge(&one);
        assert_eq!(merged.mean(), 5.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        h.record(-1.0);
        h.record(10.0);
        h.record(99.0);
        assert_eq!(h.count(), 13);
        assert!(h.bins().iter().all(|&c| c == 1));
        assert_eq!(h.out_of_range(), (1, 2));
    }

    #[test]
    fn histogram_centers() {
        let h = Histogram::new(0.0, 4.0, 4);
        let centers: Vec<f64> = h.centers().map(|(c, _)| c).collect();
        assert_eq!(centers, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn histogram_rejects_bad_range() {
        let _ = Histogram::new(5.0, 5.0, 4);
    }
}
