//! Capacity-limited resources with FIFO wait queues.
//!
//! A [`Tokens`] models anything that admits `capacity` concurrent users:
//! CPU slots on a node, rsync streams on a DTN, metadata-server service
//! slots on Lustre. Continuations are scheduled "at now" when granted,
//! which keeps grant order deterministic and avoids reentrant borrows.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::engine::Simulation;

type Cont<W> = Box<dyn FnOnce(&mut Simulation<W>)>;

/// A counting resource shared between simulation handlers.
///
/// Stored behind `Rc<RefCell<..>>` so event closures can capture it;
/// simulations are single-threaded, so `Rc` is the right tool.
pub struct Tokens<W> {
    capacity: u64,
    available: u64,
    waiters: VecDeque<(u64, Cont<W>)>,
    peak_in_use: u64,
}

impl<W: 'static> Tokens<W> {
    /// A resource with the given capacity, fully available.
    pub fn new(capacity: u64) -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(Tokens {
            capacity,
            available: capacity,
            waiters: VecDeque::new(),
            peak_in_use: 0,
        }))
    }

    /// Units currently free.
    pub fn available(&self) -> u64 {
        self.available
    }

    /// Units currently held.
    pub fn in_use(&self) -> u64 {
        self.capacity - self.available
    }

    /// High-water mark of concurrently held units.
    pub fn peak_in_use(&self) -> u64 {
        self.peak_in_use
    }

    /// Number of queued acquisitions.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Acquire `n` units, running `cont` (at the current simulation time)
    /// once they are granted. Requests larger than the total capacity are
    /// clamped to it — they acquire the whole resource rather than
    /// deadlocking forever.
    pub fn acquire<F>(this: &Rc<RefCell<Self>>, sim: &mut Simulation<W>, n: u64, cont: F)
    where
        F: FnOnce(&mut Simulation<W>) + 'static,
    {
        let n = n.min(this.borrow().capacity).max(1);
        let mut me = this.borrow_mut();
        if me.waiters.is_empty() && me.available >= n {
            me.available -= n;
            me.peak_in_use = me.peak_in_use.max(me.capacity - me.available);
            drop(me);
            sim.schedule_in(crate::time::SimTime::ZERO, cont);
        } else {
            me.waiters.push_back((n, Box::new(cont)));
        }
    }

    /// Return `n` units and wake as many FIFO waiters as now fit.
    pub fn release(this: &Rc<RefCell<Self>>, sim: &mut Simulation<W>, n: u64) {
        let mut ready: Vec<Cont<W>> = Vec::new();
        {
            let mut me = this.borrow_mut();
            me.available = (me.available + n).min(me.capacity);
            while let Some((want, _)) = me.waiters.front() {
                if *want <= me.available {
                    let (want, cont) = me.waiters.pop_front().expect("front exists");
                    me.available -= want;
                    me.peak_in_use = me.peak_in_use.max(me.capacity - me.available);
                    ready.push(cont);
                } else {
                    break;
                }
            }
        }
        for cont in ready {
            sim.schedule_in(crate::time::SimTime::ZERO, cont);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[derive(Default)]
    struct World {
        running: u64,
        max_running: u64,
        done: Vec<usize>,
    }

    #[test]
    fn caps_concurrency_and_preserves_fifo_order() {
        let mut sim = Simulation::new(World::default());
        let slots = Tokens::new(3);
        for i in 0..10usize {
            let slots2 = Rc::clone(&slots);
            Tokens::acquire(&slots, &mut sim, 1, move |sim| {
                sim.world_mut().running += 1;
                let r = sim.world().running;
                sim.world_mut().max_running = sim.world().max_running.max(r);
                let slots3 = Rc::clone(&slots2);
                sim.schedule_in(SimTime::from_secs(5), move |sim| {
                    sim.world_mut().running -= 1;
                    sim.world_mut().done.push(i);
                    Tokens::release(&slots3, sim, 1);
                });
            });
        }
        sim.run();
        assert_eq!(sim.world().max_running, 3);
        assert_eq!(sim.world().done.len(), 10);
        // Equal service times + FIFO grants => completion order = submit order.
        assert_eq!(sim.world().done, (0..10).collect::<Vec<_>>());
        // 10 jobs, 3 at a time, 5 s each => ceil(10/3)*5 = 20 s.
        assert_eq!(sim.now(), SimTime::from_secs(20));
    }

    #[test]
    fn oversized_request_clamps_to_capacity() {
        let mut sim: Simulation<World> = Simulation::new(World::default());
        let slots = Tokens::new(2);
        let slots2 = Rc::clone(&slots);
        Tokens::acquire(&slots, &mut sim, 100, move |sim| {
            sim.world_mut().done.push(0);
            Tokens::release(&slots2, sim, 100);
        });
        sim.run();
        assert_eq!(sim.world().done, vec![0]);
        assert_eq!(slots.borrow().available(), 2);
    }

    #[test]
    fn release_never_exceeds_capacity() {
        let mut sim: Simulation<World> = Simulation::new(World::default());
        let slots: Rc<RefCell<Tokens<World>>> = Tokens::new(4);
        Tokens::release(&slots, &mut sim, 10);
        sim.run();
        assert_eq!(slots.borrow().available(), 4);
    }

    #[test]
    fn large_request_blocks_later_small_ones_fifo() {
        // A 2-unit request at the head of the queue must not be starved by
        // later 1-unit requests (no "sneak past the head" unfairness).
        let mut sim = Simulation::new(World::default());
        let slots = Tokens::new(2);
        let s1 = Rc::clone(&slots);
        Tokens::acquire(&slots, &mut sim, 2, move |sim| {
            sim.world_mut().done.push(1);
            let s = Rc::clone(&s1);
            sim.schedule_in(SimTime::from_secs(1), move |sim| {
                Tokens::release(&s, sim, 2)
            });
        });
        let s2 = Rc::clone(&slots);
        Tokens::acquire(&slots, &mut sim, 2, move |sim| {
            sim.world_mut().done.push(2);
            let s = Rc::clone(&s2);
            sim.schedule_in(SimTime::from_secs(1), move |sim| {
                Tokens::release(&s, sim, 2)
            });
        });
        let s3 = Rc::clone(&slots);
        Tokens::acquire(&slots, &mut sim, 1, move |sim| {
            sim.world_mut().done.push(3);
            let s = Rc::clone(&s3);
            sim.schedule_in(SimTime::from_secs(1), move |sim| {
                Tokens::release(&s, sim, 1)
            });
        });
        sim.run();
        assert_eq!(sim.world().done, vec![1, 2, 3]);
    }

    #[test]
    fn peak_in_use_tracks_high_water_mark() {
        let mut sim: Simulation<World> = Simulation::new(World::default());
        let slots = Tokens::new(8);
        for _ in 0..5 {
            let s = Rc::clone(&slots);
            Tokens::acquire(&slots, &mut sim, 1, move |sim| {
                let s2 = Rc::clone(&s);
                sim.schedule_in(SimTime::from_secs(1), move |sim| {
                    Tokens::release(&s2, sim, 1)
                });
            });
        }
        sim.run();
        assert_eq!(slots.borrow().peak_in_use(), 5);
        assert_eq!(slots.borrow().in_use(), 0);
    }
}
