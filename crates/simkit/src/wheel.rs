//! Hierarchical timing wheel over the event slab.
//!
//! Eleven levels of 64 slots each index the full `u64` microsecond range
//! (level *k* slots are 64<sup>k</sup> µs wide; 64<sup>11</sup> ≥
//! 2<sup>64</sup>, so there is no separate far-future overflow list —
//! the coarsest level *is* the overflow). Each slot heads an intrusive
//! doubly-linked list of slab entries, and a 64-bit occupancy bitmap per
//! level makes "find the next nonempty slot" one masked
//! `trailing_zeros`. Insert and remove are O(1); pop advances the clock
//! to the next occupied slot, cascading coarse-level slots down to finer
//! levels as they are reached (each entry cascades at most `LEVELS - 1`
//! times over its whole lifetime, so pops are amortized O(1) too).
//!
//! # Determinism
//!
//! Same-timestamp events must fire in scheduling order. The wheel gets
//! this structurally, with no per-bucket sort:
//!
//! - Two entries with the same timestamp always land in the same slot at
//!   every level (the slot index is a function of the timestamp and the
//!   current window), so they are always in one list.
//! - Direct inserts append at the tail in globally increasing `seq`
//!   order, and cascades reinsert a slot's list in list order — so every
//!   list stays seq-sorted within each timestamp.
//! - A level-0 slot is exactly one microsecond wide: every entry in it
//!   shares a timestamp, so popping from the head is FIFO = `seq` order.

use crate::slab::{Slab, HOME_NONE, NIL};

/// Levels in the hierarchy. 64^11 = 2^66 covers all of `u64`.
pub(crate) const LEVELS: usize = 11;
/// Slots per level.
pub(crate) const SLOTS: usize = 64;
const SLOT_BITS: u32 = 6;
const SLOT_MASK: u64 = (SLOTS as u64) - 1;

/// The wheel: bucket lists + occupancy bitmaps + the simulation clock's
/// low-water mark. Entry storage lives in the [`Slab`]; the wheel only
/// wires slots together, so every method takes the slab explicitly.
pub(crate) struct Wheel {
    /// Time at or before every pending entry (advances on pop).
    elapsed: u64,
    /// One occupancy bit per slot, per level.
    occupied: [u64; LEVELS],
    /// List heads/tails, indexed by `level * SLOTS + slot` (= `home`).
    head: [u32; LEVELS * SLOTS],
    tail: [u32; LEVELS * SLOTS],
    /// Memoized next-event time: `Some(t)` is authoritative, `None`
    /// means "recompute". Insert folds new times in cheaply; pop and
    /// cancel-at-the-cached-time invalidate.
    peek: Option<u64>,
}

impl Wheel {
    pub fn new() -> Self {
        Wheel {
            elapsed: 0,
            occupied: [0; LEVELS],
            head: [NIL; LEVELS * SLOTS],
            tail: [NIL; LEVELS * SLOTS],
            peek: None,
        }
    }

    /// The level whose slot width matches the highest bit in which `at`
    /// differs from the current position (level 0 if within 64 µs).
    fn level_of(&self, at: u64) -> usize {
        let masked = (self.elapsed ^ at) | SLOT_MASK;
        let significant = 63 - masked.leading_zeros() as usize;
        significant / SLOT_BITS as usize
    }

    fn home_of(&self, at: u64) -> usize {
        let level = self.level_of(at);
        let slot = ((at >> (SLOT_BITS as usize * level)) & SLOT_MASK) as usize;
        level * SLOTS + slot
    }

    /// Link a slab entry (its `at`/`seq` already set) into its bucket.
    /// Times in the past are clamped to the current position, matching
    /// the engine's "scheduling in the past fires now" contract.
    pub fn insert<H>(&mut self, slab: &mut Slab<H>, idx: u32) {
        let at = slab.get(idx).at.max(self.elapsed);
        let home = self.home_of(at);
        let tail = self.tail[home];
        {
            let slot = slab.get_mut(idx);
            slot.at = at;
            slot.prev = tail;
            slot.next = NIL;
            slot.home = home as u16;
        }
        if tail == NIL {
            self.head[home] = idx;
        } else {
            slab.get_mut(tail).next = idx;
        }
        self.tail[home] = idx;
        self.occupied[home / SLOTS] |= 1 << (home % SLOTS);
        if let Some(p) = self.peek {
            self.peek = Some(p.min(at));
        }
    }

    /// Unlink a slab entry from its bucket. O(1): no drains, no
    /// tombstones — the caller can free the slot immediately.
    pub fn remove<H>(&mut self, slab: &mut Slab<H>, idx: u32) {
        let (prev, next, home, at) = {
            let slot = slab.get(idx);
            (slot.prev, slot.next, slot.home as usize, slot.at)
        };
        debug_assert_ne!(home, HOME_NONE as usize, "entry must be linked");
        if prev == NIL {
            self.head[home] = next;
        } else {
            slab.get_mut(prev).next = next;
        }
        if next == NIL {
            self.tail[home] = prev;
        } else {
            slab.get_mut(next).prev = prev;
        }
        if self.head[home] == NIL {
            self.occupied[home / SLOTS] &= !(1 << (home % SLOTS));
        }
        slab.get_mut(idx).home = HOME_NONE;
        if self.peek == Some(at) {
            self.peek = None;
        }
    }

    /// The earliest occupied `(level, slot)` at or after the current
    /// position, finest level first. Finer levels always hold earlier
    /// events: an entry at level k+1 lies beyond the current level-k
    /// window entirely.
    fn next_occupied(&self) -> Option<(usize, usize)> {
        for level in 0..LEVELS {
            let cur = (self.elapsed >> (SLOT_BITS as usize * level)) & SLOT_MASK;
            let mask = self.occupied[level] & (!0u64 << cur);
            if mask != 0 {
                return Some((level, mask.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Start time of `slot` at `level` within the current window.
    fn slot_base(&self, level: usize, slot: usize) -> u64 {
        let level_bits = SLOT_BITS * level as u32;
        let above = level_bits + SLOT_BITS;
        let high = if above >= 64 {
            0
        } else {
            (self.elapsed >> above) << above
        };
        high | ((slot as u64) << level_bits)
    }

    /// Pop the earliest entry: advance the clock to the next occupied
    /// slot, cascading coarse slots down until a level-0 slot is reached,
    /// then unlink its head (FIFO within the 1 µs bucket). Returns the
    /// slab index; the caller frees it.
    pub fn pop<H>(&mut self, slab: &mut Slab<H>) -> Option<u32> {
        loop {
            let (level, slot) = self.next_occupied()?;
            let home = level * SLOTS + slot;
            let base = self.slot_base(level, slot);
            debug_assert!(base >= self.elapsed, "clock never goes backwards");
            self.elapsed = base;
            if level == 0 {
                let idx = self.head[home];
                let next = slab.get(idx).next;
                self.head[home] = next;
                if next == NIL {
                    self.tail[home] = NIL;
                    self.occupied[0] &= !(1 << slot);
                } else {
                    slab.get_mut(next).prev = NIL;
                }
                slab.get_mut(idx).home = HOME_NONE;
                self.peek = None;
                debug_assert_eq!(slab.get(idx).at, base, "level-0 slots are 1 us wide");
                return Some(idx);
            }
            // Cascade: take the whole list and reinsert each entry. With
            // the clock now inside this slot's window, every entry lands
            // at a strictly finer level, in list order — which preserves
            // seq order per timestamp (see module docs).
            let mut idx = self.head[home];
            self.head[home] = NIL;
            self.tail[home] = NIL;
            self.occupied[level] &= !(1 << slot);
            while idx != NIL {
                let next = slab.get(idx).next;
                self.insert(slab, idx);
                idx = next;
            }
        }
    }

    /// Time of the earliest pending entry, without advancing the clock
    /// or cascading (a peek between pops must not disturb where
    /// subsequent "schedule now" events land). Memoized: the scan is
    /// O(levels) when the next slot is level 0 and O(list) only when the
    /// next event sits in a coarse far-future bucket.
    pub fn peek_time<H>(&mut self, slab: &Slab<H>) -> Option<u64> {
        if self.peek.is_some() {
            return self.peek;
        }
        let (level, slot) = self.next_occupied()?;
        let home = level * SLOTS + slot;
        let t = if level == 0 {
            self.slot_base(0, slot)
        } else {
            let mut min = u64::MAX;
            let mut idx = self.head[home];
            while idx != NIL {
                let s = slab.get(idx);
                min = min.min(s.at);
                idx = s.next;
            }
            min
        };
        self.peek = Some(t);
        self.peek
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue_from(times: &[u64]) -> (Wheel, Slab<usize>) {
        let mut wheel = Wheel::new();
        let mut slab = Slab::with_capacity(times.len());
        for (i, &t) in times.iter().enumerate() {
            let (idx, _) = slab.alloc(t, i as u64, i);
            wheel.insert(&mut slab, idx);
        }
        (wheel, slab)
    }

    fn drain(wheel: &mut Wheel, slab: &mut Slab<usize>) -> Vec<(u64, usize)> {
        std::iter::from_fn(|| {
            wheel.pop(slab).map(|idx| {
                let at = slab.get(idx).at;
                (at, slab.free(idx))
            })
        })
        .collect()
    }

    #[test]
    fn pops_in_time_order_across_levels() {
        // Times spanning level 0 (near), mid levels, and the far future.
        let times = [
            5u64,
            63,
            64,
            65,
            4_096,
            600_000_000,
            600_000_001,
            u64::MAX,
            1,
        ];
        let (mut wheel, mut slab) = queue_from(&times);
        let popped = drain(&mut wheel, &mut slab);
        let mut want: Vec<u64> = times.to_vec();
        want.sort_unstable();
        assert_eq!(popped.iter().map(|&(t, _)| t).collect::<Vec<_>>(), want);
    }

    #[test]
    fn same_time_pops_in_insert_order_even_after_cascades() {
        // All at the same far-future instant: they ride one coarse bucket
        // down through multiple cascades and must stay FIFO.
        let times = [7_777_777u64; 50];
        let (mut wheel, mut slab) = queue_from(&times);
        let popped = drain(&mut wheel, &mut slab);
        assert_eq!(
            popped.iter().map(|&(_, v)| v).collect::<Vec<_>>(),
            (0..50).collect::<Vec<_>>()
        );
    }

    #[test]
    fn peek_does_not_advance_the_clock() {
        let (mut wheel, mut slab) = queue_from(&[1_000_000]);
        assert_eq!(wheel.peek_time(&slab), Some(1_000_000));
        // A later insert at a nearer time must still land before it.
        let (idx, _) = slab.alloc(10, 99, 99);
        wheel.insert(&mut slab, idx);
        assert_eq!(wheel.peek_time(&slab), Some(10));
        let popped = drain(&mut wheel, &mut slab);
        assert_eq!(
            popped.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![10, 1_000_000]
        );
    }

    #[test]
    fn peek_finds_the_min_inside_a_coarse_bucket() {
        // Two entries share a coarse bucket; the earlier one defines the
        // next-event time even though it is not at the list head.
        let (mut wheel, slab) = queue_from(&[900_000, 800_000]);
        assert_eq!(wheel.peek_time(&slab), Some(800_000));
    }

    #[test]
    fn remove_unlinks_in_any_position() {
        let mut wheel = Wheel::new();
        let mut slab = Slab::with_capacity(3);
        let t = 1234;
        let keys: Vec<u32> = (0..3)
            .map(|i| {
                let (idx, _) = slab.alloc(t, i, i as usize);
                wheel.insert(&mut slab, idx);
                idx
            })
            .collect();
        // Remove the middle entry, then head, then tail.
        wheel.remove(&mut slab, keys[1]);
        slab.free(keys[1]);
        let popped = drain(&mut wheel, &mut slab);
        assert_eq!(popped, vec![(t, 0), (t, 2)]);
    }

    #[test]
    fn empty_bucket_clears_its_occupancy_bit() {
        let mut wheel = Wheel::new();
        let mut slab: Slab<usize> = Slab::with_capacity(1);
        let (idx, _) = slab.alloc(77, 0, 0);
        wheel.insert(&mut slab, idx);
        wheel.remove(&mut slab, idx);
        slab.free(idx);
        assert_eq!(wheel.peek_time(&slab), None);
        assert_eq!(wheel.pop(&mut slab), None);
    }

    #[test]
    fn past_inserts_clamp_to_the_current_position() {
        let (mut wheel, mut slab) = queue_from(&[100]);
        let idx = wheel.pop(&mut slab).unwrap();
        slab.free(idx);
        // The clock sits at 100 now; an insert at 5 fires "now", not in
        // the (unreachable) past.
        let (idx, _) = slab.alloc(5, 1, 1);
        wheel.insert(&mut slab, idx);
        assert_eq!(wheel.peek_time(&slab), Some(100));
        let popped = drain(&mut wheel, &mut slab);
        assert_eq!(popped, vec![(100, 1)]);
    }
}
