//! Parametric delay/duration distributions.
//!
//! Calibrated model parameters (allocation stagger, NVMe availability
//! delay, straggler tails, task runtimes) are expressed as [`Dist`] values
//! so experiment configurations can be serialized, logged, and swept.
//! Normal and lognormal sampling use Box–Muller directly — `rand_distr` is
//! not on the approved dependency list and two transcendental calls per
//! sample are irrelevant at simulation scale.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A non-negative random variable, in seconds (or any unit the caller
/// chooses — the engine converts with `SimTime::from_secs_f64`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always the same value.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Normal with mean and standard deviation, truncated below at `min`.
    Normal { mean: f64, sd: f64, min: f64 },
    /// Lognormal: `exp(N(mu, sigma))`. Heavy right tail — the paper's
    /// straggler model of choice ("outlier nodes, possibly caused by
    /// allocation delays, NVMe availability delays, and I/O delays").
    LogNormal { mu: f64, sigma: f64 },
    /// Exponential with the given rate (mean `1/rate`).
    Exp { rate: f64 },
    /// Mixture of two distributions: with probability `p` draw from `a`,
    /// else from `b`. Used for "mostly fine, occasionally pathological"
    /// node behaviour.
    Mix { p: f64, a: Box<Dist>, b: Box<Dist> },
    /// Constant plus a distributed excess: `base + excess`.
    Shifted { base: f64, excess: Box<Dist> },
    /// Weibull with scale λ and shape k — the classic model for
    /// time-to-failure and straggler tails (k < 1: heavy tail).
    Weibull { scale: f64, shape: f64 },
    /// Pareto (Lomax-style, minimum `xm`, tail index α) — file-size and
    /// burst-length tails.
    Pareto { xm: f64, alpha: f64 },
}

impl Dist {
    /// A degenerate distribution at `v`.
    pub fn constant(v: f64) -> Dist {
        Dist::Constant(v)
    }

    /// Convenience constructor for a truncated normal with `min = 0`.
    pub fn normal(mean: f64, sd: f64) -> Dist {
        Dist::Normal { mean, sd, min: 0.0 }
    }

    /// Lognormal parameterized by its *median* and a shape factor sigma
    /// (the distribution of `exp(N(ln median, sigma))`).
    pub fn lognormal_median(median: f64, sigma: f64) -> Dist {
        Dist::LogNormal {
            mu: median.max(f64::MIN_POSITIVE).ln(),
            sigma,
        }
    }

    /// Draw one sample. Always finite and non-negative.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let v = match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => {
                if hi <= lo {
                    *lo
                } else {
                    rng.gen_range(*lo..*hi)
                }
            }
            Dist::Normal { mean, sd, min } => (mean + sd * std_normal(rng)).max(*min),
            Dist::LogNormal { mu, sigma } => (mu + sigma * std_normal(rng)).exp(),
            Dist::Exp { rate } => {
                if *rate <= 0.0 {
                    0.0
                } else {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    -u.ln() / rate
                }
            }
            Dist::Mix { p, a, b } => {
                if rng.gen::<f64>() < *p {
                    a.sample(rng)
                } else {
                    b.sample(rng)
                }
            }
            Dist::Shifted { base, excess } => base + excess.sample(rng),
            Dist::Weibull { scale, shape } => {
                if *scale <= 0.0 || *shape <= 0.0 {
                    0.0
                } else {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    scale * (-u.ln()).powf(1.0 / shape)
                }
            }
            Dist::Pareto { xm, alpha } => {
                if *xm <= 0.0 || *alpha <= 0.0 {
                    0.0
                } else {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    xm / u.powf(1.0 / alpha)
                }
            }
        };
        if v.is_finite() {
            v.max(0.0)
        } else {
            0.0
        }
    }

    /// The distribution's mean, where analytically available. `Mix` and
    /// `Shifted` compose; used by tests and sanity checks, not by models.
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            // Truncation shifts the mean upward slightly; ignore for the
            // sanity-check purpose of this method.
            Dist::Normal { mean, .. } => *mean,
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Dist::Exp { rate } => {
                if *rate <= 0.0 {
                    0.0
                } else {
                    1.0 / rate
                }
            }
            Dist::Mix { p, a, b } => p * a.mean() + (1.0 - p) * b.mean(),
            Dist::Shifted { base, excess } => base + excess.mean(),
            Dist::Weibull { scale, shape } => {
                if *scale <= 0.0 || *shape <= 0.0 {
                    0.0
                } else {
                    // λ Γ(1 + 1/k) via Lanczos-free Stirling approximation
                    // is overkill for a sanity method; use the exact value
                    // for k = 1 and a numeric estimate otherwise.
                    scale * gamma_1p(1.0 / shape)
                }
            }
            Dist::Pareto { xm, alpha } => {
                if *alpha <= 1.0 {
                    f64::INFINITY
                } else {
                    alpha * xm / (alpha - 1.0)
                }
            }
        }
    }
}

/// Γ(1 + x) for x > 0, via the Lanczos (g = 5, n = 6) log-gamma
/// approximation — accurate to ~1e-10, used only by `mean()` sanity
/// checks.
fn gamma_1p(x: f64) -> f64 {
    ln_gamma(x + 1.0).exp()
}

/// ln Γ(z) for z > 0 (Numerical Recipes `gammln`).
fn ln_gamma(z: f64) -> f64 {
    const LANCZOS: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let x = z;
    let mut y = z;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for c in LANCZOS {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// One standard-normal sample via Box–Muller.
fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;

    fn samples(d: &Dist, n: usize) -> Vec<f64> {
        let mut rng = stream_rng(99, 0);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn constant_is_constant() {
        assert!(samples(&Dist::constant(3.5), 100).iter().all(|&v| v == 3.5));
    }

    #[test]
    fn uniform_stays_in_range() {
        let d = Dist::Uniform { lo: 1.0, hi: 2.0 };
        for v in samples(&d, 1000) {
            assert!((1.0..2.0).contains(&v));
        }
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let d = Dist::Uniform { lo: 2.0, hi: 2.0 };
        assert_eq!(d.sample(&mut stream_rng(0, 0)), 2.0);
    }

    #[test]
    fn normal_mean_within_tolerance() {
        let d = Dist::normal(10.0, 2.0);
        let s = samples(&d, 20_000);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn truncated_normal_respects_floor() {
        let d = Dist::Normal {
            mean: 0.0,
            sd: 5.0,
            min: 0.5,
        };
        assert!(samples(&d, 2000).iter().all(|&v| v >= 0.5));
    }

    #[test]
    fn lognormal_median_matches() {
        let d = Dist::lognormal_median(30.0, 0.5);
        let mut s = samples(&d, 20_001);
        s.sort_by(f64::total_cmp);
        let median = s[s.len() / 2];
        assert!((median - 30.0).abs() / 30.0 < 0.05, "median {median}");
    }

    #[test]
    fn exp_mean_matches_rate() {
        let d = Dist::Exp { rate: 0.25 };
        let s = samples(&d, 20_000);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn exp_zero_rate_is_zero() {
        assert_eq!(Dist::Exp { rate: 0.0 }.sample(&mut stream_rng(0, 0)), 0.0);
    }

    #[test]
    fn mix_blends_components() {
        let d = Dist::Mix {
            p: 0.9,
            a: Box::new(Dist::constant(1.0)),
            b: Box::new(Dist::constant(100.0)),
        };
        let s = samples(&d, 10_000);
        let ones = s.iter().filter(|&&v| v == 1.0).count();
        assert!((ones as f64 / 10_000.0 - 0.9).abs() < 0.02);
        assert!((d.mean() - (0.9 + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn shifted_adds_base() {
        let d = Dist::Shifted {
            base: 5.0,
            excess: Box::new(Dist::Exp { rate: 1.0 }),
        };
        assert!(samples(&d, 1000).iter().all(|&v| v >= 5.0));
        assert!((d.mean() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn weibull_shapes() {
        // shape = 1 is exponential with mean = scale.
        let d = Dist::Weibull {
            scale: 4.0,
            shape: 1.0,
        };
        let s = samples(&d, 20_000);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean {mean}");
        assert!((d.mean() - 4.0).abs() < 1e-6, "analytic {}", d.mean());
        // shape = 2 (Rayleigh): mean = scale·Γ(1.5) = scale·√π/2.
        let d = Dist::Weibull {
            scale: 2.0,
            shape: 2.0,
        };
        let expect = 2.0 * (std::f64::consts::PI.sqrt() / 2.0);
        assert!((d.mean() - expect).abs() < 1e-6, "{} vs {expect}", d.mean());
        let s = samples(&d, 20_000);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - expect).abs() < 0.05, "sampled {mean}");
        // Degenerate parameters are safe.
        assert_eq!(
            Dist::Weibull {
                scale: 0.0,
                shape: 1.0
            }
            .sample(&mut stream_rng(0, 0)),
            0.0
        );
    }

    #[test]
    fn pareto_floor_and_mean() {
        let d = Dist::Pareto {
            xm: 3.0,
            alpha: 3.0,
        };
        let s = samples(&d, 20_000);
        assert!(s.iter().all(|&v| v >= 3.0), "Pareto floor");
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 4.5).abs() < 0.15, "mean {mean} (expect 4.5)");
        assert!((d.mean() - 4.5).abs() < 1e-9);
        // α ≤ 1 has infinite mean.
        assert!(Dist::Pareto {
            xm: 1.0,
            alpha: 1.0
        }
        .mean()
        .is_infinite());
        assert_eq!(
            Dist::Pareto {
                xm: 0.0,
                alpha: 2.0
            }
            .sample(&mut stream_rng(0, 0)),
            0.0
        );
    }

    #[test]
    fn samples_never_negative_or_nonfinite() {
        let dists = [
            Dist::normal(-10.0, 1.0),
            Dist::LogNormal {
                mu: 0.0,
                sigma: 2.0,
            },
            Dist::Uniform { lo: 0.0, hi: 1.0 },
            Dist::Weibull {
                scale: 2.0,
                shape: 0.7,
            },
            Dist::Pareto {
                xm: 1.0,
                alpha: 1.5,
            },
        ];
        for d in &dists {
            for v in samples(d, 2000) {
                assert!(v.is_finite() && v >= 0.0);
            }
        }
    }
}
