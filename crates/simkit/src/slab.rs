//! Generational slab storage for event entries.
//!
//! Every scheduled event lives in one [`Slot`]: payload, timestamp,
//! sequence number, and the intrusive doubly-linked-list wiring that
//! threads it into a timing-wheel bucket (see [`crate::wheel`]). Freed
//! slots go on a free list through their `next` field and bump their
//! generation counter, so a stale `(index, generation)` key — an event
//! that already fired or was cancelled, then had its slot reused —
//! misses instead of cancelling an unrelated event. That makes
//! cancellation O(1) with no hashing and no tombstones: the slot is
//! unlinked and reusable immediately.

/// Null link ("end of list" / "no slot").
pub(crate) const NIL: u32 = u32::MAX;
/// "Not linked into any wheel bucket."
pub(crate) const HOME_NONE: u16 = u16::MAX;

/// One event's storage.
pub(crate) struct Slot<H> {
    /// Bumped on free; a key only matches while its generation does.
    pub gen: u32,
    /// Firing time in microseconds.
    pub at: u64,
    /// Global scheduling order, the deterministic tiebreak.
    pub seq: u64,
    /// Intrusive list links (or free-list `next` while the slot is free).
    pub prev: u32,
    pub next: u32,
    /// Wheel bucket this slot is linked into (`level * SLOTS + slot`).
    pub home: u16,
    /// `None` while the slot is free.
    pub value: Option<H>,
}

/// Slab of event slots with an internal free list.
pub(crate) struct Slab<H> {
    slots: Vec<Slot<H>>,
    free_head: u32,
    live: usize,
}

impl<H> Slab<H> {
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(capacity),
            free_head: NIL,
            live: 0,
        }
    }

    /// Live (scheduled, not yet fired or cancelled) entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Make room for `additional` more live entries without reallocating.
    pub fn reserve(&mut self, additional: usize) {
        self.slots.reserve(additional);
    }

    /// Store a new entry, unlinked (`home == HOME_NONE`), and return its
    /// `(index, generation)` key parts.
    pub fn alloc(&mut self, at: u64, seq: u64, value: H) -> (u32, u32) {
        self.live += 1;
        if self.free_head != NIL {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            self.free_head = slot.next;
            slot.at = at;
            slot.seq = seq;
            slot.prev = NIL;
            slot.next = NIL;
            slot.home = HOME_NONE;
            slot.value = Some(value);
            (idx, slot.gen)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab holds at most u32::MAX events");
            assert!(idx != NIL, "slab holds at most u32::MAX events");
            self.slots.push(Slot {
                gen: 0,
                at,
                seq,
                prev: NIL,
                next: NIL,
                home: HOME_NONE,
                value: Some(value),
            });
            (idx, 0)
        }
    }

    /// Free a slot (which must be live and already unlinked from its
    /// bucket), returning its payload. The generation bump invalidates
    /// every outstanding key to it.
    pub fn free(&mut self, idx: u32) -> H {
        self.live -= 1;
        let slot = &mut self.slots[idx as usize];
        debug_assert_eq!(slot.home, HOME_NONE, "free only unlinked slots");
        slot.gen = slot.gen.wrapping_add(1);
        slot.prev = NIL;
        slot.next = self.free_head;
        self.free_head = idx;
        slot.value.take().expect("live slots carry a payload")
    }

    pub fn get(&self, idx: u32) -> &Slot<H> {
        &self.slots[idx as usize]
    }

    pub fn get_mut(&mut self, idx: u32) -> &mut Slot<H> {
        &mut self.slots[idx as usize]
    }

    /// Does `(idx, gen)` name a live entry?
    pub fn is_live(&self, idx: u32, gen: u32) -> bool {
        self.slots
            .get(idx as usize)
            .is_some_and(|s| s.gen == gen && s.value.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_reuses_slots_with_fresh_generations() {
        let mut slab: Slab<&str> = Slab::with_capacity(4);
        let (i0, g0) = slab.alloc(10, 0, "a");
        let (i1, g1) = slab.alloc(20, 1, "b");
        assert_eq!(slab.len(), 2);
        assert!(slab.is_live(i0, g0) && slab.is_live(i1, g1));

        assert_eq!(slab.free(i0), "a");
        assert_eq!(slab.len(), 1);
        assert!(!slab.is_live(i0, g0), "freed key must miss");

        let (i2, g2) = slab.alloc(30, 2, "c");
        assert_eq!(i2, i0, "free list reuses the slot");
        assert_ne!(g2, g0, "reuse bumps the generation");
        assert!(slab.is_live(i2, g2));
        assert!(!slab.is_live(i0, g0), "stale key still misses after reuse");
    }

    #[test]
    fn out_of_range_keys_miss() {
        let slab: Slab<u8> = Slab::with_capacity(0);
        assert!(!slab.is_live(7, 0));
        assert!(!slab.is_live(NIL, 0));
    }

    #[test]
    fn free_list_is_lifo_and_len_tracks() {
        let mut slab: Slab<u32> = Slab::with_capacity(0);
        let keys: Vec<(u32, u32)> = (0..8).map(|i| slab.alloc(i, i, i as u32)).collect();
        assert_eq!(slab.len(), 8);
        for &(idx, _) in &keys {
            slab.free(idx);
        }
        assert_eq!(slab.len(), 0);
        // Refill: every slot comes back, all with bumped generations.
        let again: Vec<(u32, u32)> = (0..8).map(|i| slab.alloc(i, 8 + i, i as u32)).collect();
        assert_eq!(slab.len(), 8);
        for (&(i_old, g_old), &(i_new, g_new)) in keys.iter().zip(again.iter().rev()) {
            assert_eq!(i_old, i_new, "LIFO reuse");
            assert_ne!(g_old, g_new);
        }
    }
}
