//! The event queue: a hierarchical calendar (timing-wheel) queue over a
//! generational slab.
//!
//! This replaced the original `BinaryHeap` + `HashSet` queue (preserved
//! as [`crate::reference::HeapQueue`]) to make the paper-scale runs
//! tractable: at 9,408 nodes × 1.152 M tasks, the simulation pushes,
//! cancels, and fires tens of millions of events, and the heap paid
//! O(log n) sift costs, a SipHash lookup per operation, and lazy
//! tombstone drains after every mass cancellation. Here:
//!
//! - **schedule** is O(1): bump a seq counter, take a slab slot, link it
//!   into its wheel bucket;
//! - **cancel** is O(1): generation check, unlink, free — no hashing,
//!   and no tombstones for later pops to drain, so `cancel_many` after a
//!   node crash leaves the queue immediately clean;
//! - **pop** is amortized O(1): advance to the next occupied bucket via
//!   bitmap scans, cascading coarse buckets at most once per level per
//!   event.
//!
//! Ties at equal timestamps pop in scheduling order — the property that
//! makes simulations deterministic — structurally, via per-bucket FIFO
//! lists (see [`crate::wheel`] for the argument). Equivalence with the
//! reference queue over random interleavings is pinned by
//! `tests/queue_differential.rs`.

use crate::slab::Slab;
use crate::time::SimTime;
use crate::wheel::Wheel;

/// Opaque handle to a scheduled event, usable to cancel it.
///
/// Generational: the slot index names where the event lives, the
/// generation proves it is still the *same* event. Keys to fired or
/// cancelled events miss harmlessly, even after the slot is reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    pub(crate) idx: u32,
    pub(crate) gen: u32,
}

/// A time-ordered queue of handlers with O(1) scheduling and
/// cancellation.
pub struct EventQueue<H> {
    slab: Slab<H>,
    wheel: Wheel,
    next_seq: u64,
}

impl<H> Default for EventQueue<H> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<H> EventQueue<H> {
    pub fn new() -> Self {
        EventQueue::with_capacity(0)
    }

    /// A queue with slab capacity for `capacity` concurrently pending
    /// events (it grows beyond that; this just avoids rehoming the slab
    /// mid-run).
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            slab: Slab::with_capacity(capacity),
            wheel: Wheel::new(),
            next_seq: 0,
        }
    }

    /// Make room for `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.slab.reserve(additional);
    }

    pub fn push(&mut self, at: SimTime, handler: H) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        let (idx, gen) = self.slab.alloc(at.as_micros(), seq, handler);
        self.wheel.insert(&mut self.slab, idx);
        EventKey { idx, gen }
    }

    /// Cancel a pending event. Returns `true` if the event was still
    /// pending; cancelling an already-fired or already-cancelled event is
    /// a no-op returning `false`. The slot is freed immediately — there
    /// is no tombstone for a later pop to drain.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if !self.slab.is_live(key.idx, key.gen) {
            return false;
        }
        self.wheel.remove(&mut self.slab, key.idx);
        self.slab.free(key.idx);
        true
    }

    /// Number of events that will still fire.
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slab.len() == 0
    }

    /// Timestamp of the next event that will fire, if any. Does not
    /// advance the queue's internal clock, so events scheduled after a
    /// peek land exactly where they would have without it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.wheel.peek_time(&self.slab).map(SimTime::from_micros)
    }

    /// Pop the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, H)> {
        let idx = self.wheel.pop(&mut self.slab)?;
        let at = SimTime::from_micros(self.slab.get(idx).at);
        Some((at, self.slab.free(idx)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 'c');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, h)| h)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_pop_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, h)| h)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut q = EventQueue::new();
        let _a = q.push(SimTime::from_secs(1), 'a');
        let b = q.push(SimTime::from_secs(2), 'b');
        let _c = q.push(SimTime::from_secs(3), 'c');
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double-cancel reports false");
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, h)| h)).collect();
        assert_eq!(order, vec!['a', 'c']);
    }

    #[test]
    fn cancel_after_fire_is_noop_even_when_the_slot_is_reused() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), 'a');
        assert!(q.pop().is_some());
        assert!(!q.cancel(a));
        // The freed slot is recycled by the next push; the stale key must
        // still miss rather than cancel the newcomer.
        let b = q.push(SimTime::from_secs(2), 'b');
        assert_eq!(b.idx, a.idx, "slab reuses the slot");
        assert!(!q.cancel(a), "stale generation misses");
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 'b')));
    }

    #[test]
    fn cancel_unknown_key_is_noop() {
        let mut q: EventQueue<char> = EventQueue::new();
        assert!(!q.cancel(EventKey { idx: 42, gen: 0 }));
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_cancellations() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reflects_cancellation_of_the_head() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn mass_cancel_leaves_no_tombstones_for_peek_or_pop() {
        // The latency-cliff regression test: cancel everything in flight
        // except one far-future survivor, then peek — the old queue paid
        // a full heap drain here; the calendar queue must answer from
        // clean state immediately.
        let mut q = EventQueue::new();
        let keys: Vec<EventKey> = (0..10_000)
            .map(|i| q.push(SimTime::from_micros(1_000 + i), i))
            .collect();
        let survivor = q.push(SimTime::from_secs(600), 424242);
        for k in keys {
            assert!(q.cancel(k));
        }
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(600)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(600), 424242)));
        assert!(q.pop().is_none());
        let _ = survivor;
    }

    #[test]
    fn interleaved_schedule_now_after_peek_keeps_order() {
        // peek_time must not cascade: an event scheduled at the peeked
        // time afterwards still fires after same-time earlier events.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(10)));
        q.push(SimTime::from_secs(10), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, h)| h)).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn with_capacity_and_reserve_do_not_change_behavior() {
        let mut q = EventQueue::with_capacity(100);
        q.reserve(1_000);
        for i in 0..500u64 {
            q.push(SimTime::from_micros(i % 7), i);
        }
        let mut last = (SimTime::ZERO, 0u64);
        let mut n = 0;
        while let Some((at, v)) = q.pop() {
            assert!(at > last.0 || (at == last.0 && v > last.1) || n == 0);
            last = (at, v);
            n += 1;
        }
        assert_eq!(n, 500);
    }
}
