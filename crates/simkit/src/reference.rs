//! The original binary-heap event queue, kept as the *reference model*.
//!
//! This is the `BinaryHeap` + `HashSet` queue the engine shipped with
//! before the calendar-queue rework: O(log n) push/pop, hashed
//! cancellation tombstones drained lazily at the next peek/pop. It is
//! no longer on any hot path — [`crate::event::EventQueue`] replaced it —
//! but it stays public because its behavior *defines* correctness for
//! the replacement: `tests/queue_differential.rs` replays random
//! schedule/cancel/pop/peek interleavings against both queues and
//! requires identical observable behavior (times, payload order,
//! same-timestamp FIFO, cancel results, lengths).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Opaque handle to an event scheduled on a [`HeapQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeapKey {
    seq: u64,
}

struct Entry<H> {
    at: SimTime,
    seq: u64,
    /// `None` after the handler has been taken.
    handler: Option<H>,
}

impl<H> PartialEq for Entry<H> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<H> Eq for Entry<H> {}

impl<H> PartialOrd for Entry<H> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<H> Ord for Entry<H> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered queue of handlers with O(1) lazy cancellation.
pub struct HeapQueue<H> {
    heap: BinaryHeap<Entry<H>>,
    next_seq: u64,
    /// Sequence numbers of events that are scheduled and not yet fired or
    /// cancelled. Membership here is the single source of truth for "will
    /// this event run".
    pending: HashSet<u64>,
}

impl<H> Default for HeapQueue<H> {
    fn default() -> Self {
        HeapQueue::new()
    }
}

impl<H> HeapQueue<H> {
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending: HashSet::new(),
        }
    }

    pub fn push(&mut self, at: SimTime, handler: H) -> HeapKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            handler: Some(handler),
        });
        self.pending.insert(seq);
        HeapKey { seq }
    }

    /// Cancel a pending event. Returns `true` if the event was still
    /// pending; cancelling an already-fired or already-cancelled event is a
    /// no-op returning `false`. The heap entry is removed lazily on pop.
    pub fn cancel(&mut self, key: HeapKey) -> bool {
        self.pending.remove(&key.seq)
    }

    /// Number of events that will still fire.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Timestamp of the next event that will fire, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, H)> {
        self.skip_cancelled();
        let mut entry = self.heap.pop()?;
        self.pending.remove(&entry.seq);
        let handler = entry
            .handler
            .take()
            .expect("live heap entries always carry their handler");
        Some((entry.at, handler))
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.pending.contains(&top.seq) {
                break;
            }
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = HeapQueue::new();
        q.push(SimTime::from_secs(3), 'c');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, h)| h)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_pop_in_scheduling_order() {
        let mut q = HeapQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, h)| h)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut q = HeapQueue::new();
        let _a = q.push(SimTime::from_secs(1), 'a');
        let b = q.push(SimTime::from_secs(2), 'b');
        let _c = q.push(SimTime::from_secs(3), 'c');
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double-cancel reports false");
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, h)| h)).collect();
        assert_eq!(order, vec!['a', 'c']);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = HeapQueue::new();
        let a = q.push(SimTime::from_secs(1), 'a');
        assert!(q.pop().is_some());
        assert!(!q.cancel(a));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_key_is_noop() {
        let mut q: HeapQueue<char> = HeapQueue::new();
        assert!(!q.cancel(HeapKey { seq: 42 }));
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_cancellations() {
        let mut q = HeapQueue::new();
        let a = q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = HeapQueue::new();
        let a = q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }
}
