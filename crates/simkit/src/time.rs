//! Simulation time.
//!
//! [`SimTime`] is a point on the simulated clock *and* (by convention) a
//! duration from time zero — the models in this workspace only ever need
//! non-negative offsets, so a single saturating unsigned microsecond type
//! keeps the arithmetic honest without a second `Duration` type at every
//! call site. Microsecond resolution covers the full dynamic range the
//! paper needs: process dispatch costs of ~150 µs (1/6,400 s) up to
//! multi-hour pipeline stages.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time (or an offset from time zero), in microseconds.
///
/// Arithmetic saturates rather than wrapping: a model that subtracts a
/// larger delay from a smaller timestamp gets `SimTime::ZERO`, never a
/// 584,000-year timestamp.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from whole minutes (pipeline stages in §IV-B are quoted in
    /// minutes).
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60 * 1_000_000)
    }

    /// Construct from fractional seconds, clamping negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimTime::ZERO;
        }
        SimTime((s * 1e6).round() as u64)
    }

    /// The value in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The value in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The value in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The value in fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60e6
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (floors at [`SimTime::ZERO`]).
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Largest of two times.
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// Smallest of two times.
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s < 1e-3 {
            write!(f, "{}us", self.0)
        } else if s < 1.0 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if s < 120.0 {
            write!(f, "{s:.3}s")
        } else {
            write!(f, "{:.2}min", self.as_mins_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_millis(1_500));
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(5);
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(b - a, SimTime::from_secs(4));
    }

    #[test]
    fn addition_saturates_at_max() {
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn scaling() {
        assert_eq!(SimTime::from_secs(10) * 0.5, SimTime::from_secs(5));
        assert_eq!(SimTime::from_secs(10) * 3u64, SimTime::from_secs(30));
        assert_eq!(SimTime::from_secs(10) / 4, SimTime::from_millis(2_500));
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = (1..=4).map(SimTime::from_secs).sum();
        assert_eq!(total, SimTime::from_secs(10));
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", SimTime::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", SimTime::from_mins(12)), "12.00min");
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
