//! Deterministic-replay contract of `Simulation`: the same seed must
//! reproduce the exact same event sequence (observed through the
//! telemetry bus), the same fired count, and the same world trajectory
//! — run after run. Different seeds must diverge, proving the RNG
//! stream actually feeds the model.

use std::sync::Arc;

use htpar_simkit::{stream_rng, SimTime, Simulation};
use htpar_telemetry::{Event, EventBus, Recorder};
use rand::Rng;

/// A small stochastic workload: a chain of events whose inter-arrival
/// gaps and payloads are drawn from the simulation RNG, with every
/// third event scheduling a decoy that is immediately cancelled. The
/// trace therefore exercises scheduling, firing, cancellation, and the
/// RNG stream together.
fn run_workload(seed: u64) -> (Vec<(f64, u64)>, u64, Vec<u64>) {
    let bus = EventBus::shared();
    let recorder = Recorder::shared();
    bus.attach(recorder.clone());

    let mut sim = Simulation::with_seed(Vec::<u64>::new(), seed);
    sim.set_telemetry(Arc::clone(&bus));

    fn tick(sim: &mut Simulation<Vec<u64>>, remaining: u32) {
        let value = sim.rng().gen::<u64>();
        sim.world_mut().push(value);
        if remaining == 0 {
            return;
        }
        // Gap in (0, 2] seconds, drawn from the sim RNG.
        let gap_us = 1 + (sim.rng().gen::<u64>() % 2_000_000);
        sim.schedule_in(SimTime::from_micros(gap_us), move |s| {
            tick(s, remaining - 1)
        });
        if remaining % 3 == 0 {
            let decoy = sim.schedule_in(SimTime::from_secs(1_000), |s| {
                s.world_mut().push(u64::MAX);
            });
            assert!(sim.cancel(decoy));
        }
    }

    sim.schedule_at(SimTime::ZERO, |s| tick(s, 60));
    sim.run();

    let trace: Vec<(f64, u64)> = recorder
        .events()
        .into_iter()
        .filter_map(|e| match e {
            Event::SimEventFired { sim_time, count } => Some((sim_time, count)),
            _ => None,
        })
        .collect();
    (trace, sim.events_fired(), sim.into_world())
}

#[test]
fn same_seed_replays_identically_three_times() {
    let first = run_workload(0xD15C_0DE5);
    let second = run_workload(0xD15C_0DE5);
    let third = run_workload(0xD15C_0DE5);
    assert_eq!(first, second, "run 2 diverged from run 1");
    assert_eq!(second, third, "run 3 diverged from run 2");
    assert_eq!(first.1, 61, "one kickoff plus 60 chained ticks");
    assert!(
        first.2.iter().all(|&v| v != u64::MAX),
        "cancelled decoys never fire"
    );
}

#[test]
fn different_seeds_diverge() {
    let a = run_workload(1);
    let b = run_workload(2);
    assert_ne!(a.2, b.2, "world trajectories must depend on the seed");
    assert_ne!(a.0, b.0, "event timings must depend on the seed");
}

#[test]
fn telemetry_does_not_perturb_the_run() {
    // An uninstrumented run and an instrumented run of the same seed
    // must produce the same world: observation is free of side effects.
    let (_, fired, world) = run_workload(42);

    let mut bare = Simulation::with_seed(Vec::<u64>::new(), 42);
    fn tick(sim: &mut Simulation<Vec<u64>>, remaining: u32) {
        let value = sim.rng().gen::<u64>();
        sim.world_mut().push(value);
        if remaining == 0 {
            return;
        }
        let gap_us = 1 + (sim.rng().gen::<u64>() % 2_000_000);
        bare_schedule(sim, gap_us, remaining);
        if remaining % 3 == 0 {
            let decoy = sim.schedule_in(SimTime::from_secs(1_000), |s| {
                s.world_mut().push(u64::MAX);
            });
            assert!(sim.cancel(decoy));
        }
    }
    fn bare_schedule(sim: &mut Simulation<Vec<u64>>, gap_us: u64, remaining: u32) {
        sim.schedule_in(SimTime::from_micros(gap_us), move |s| {
            tick(s, remaining - 1)
        });
    }
    bare.schedule_at(SimTime::ZERO, |s| tick(s, 60));
    bare.run();
    assert_eq!(bare.events_fired(), fired);
    assert_eq!(bare.into_world(), world);
}

#[test]
fn stream_rng_streams_are_independent_and_reproducible() {
    let mut a1 = stream_rng(9, 0);
    let mut a2 = stream_rng(9, 0);
    let mut b = stream_rng(9, 1);
    let s1: Vec<u64> = (0..32).map(|_| a1.gen::<u64>()).collect();
    let s2: Vec<u64> = (0..32).map(|_| a2.gen::<u64>()).collect();
    let s3: Vec<u64> = (0..32).map(|_| b.gen::<u64>()).collect();
    assert_eq!(s1, s2, "same (seed, stream) reproduces");
    assert_ne!(s1, s3, "different streams diverge");
}
