//! Differential test: the calendar queue against the binary-heap
//! reference model.
//!
//! [`htpar_simkit::reference::HeapQueue`] is the queue the engine
//! shipped with; its behavior defines correctness for the calendar
//! rework. Random interleavings of push / cancel / stale-cancel / pop /
//! peek must produce identical observable behavior from both queues:
//! the same pop times and payloads (including FIFO order within equal
//! timestamps), the same cancel return values, the same `peek_time`,
//! and the same length after every step.
//!
//! One intentional asymmetry is kept out of the generated traces: the
//! calendar queue clamps a push scheduled before the last popped time
//! to "now" (the engine never does this — simulations only schedule
//! forward), while the heap would happily run time backwards. Pushes
//! are therefore generated as offsets from the latest popped timestamp.

use htpar_simkit::reference::{HeapKey, HeapQueue};
use htpar_simkit::{EventKey, EventQueue, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Push `copies` events at `last_popped + offset_us` (copies > 1
    /// exercises same-timestamp FIFO).
    Push {
        offset_us: u64,
        copies: u8,
    },
    /// Push far in the future — lands in a coarse wheel level and must
    /// cascade down correctly before popping.
    PushFar {
        offset_us: u64,
    },
    /// Cancel a still-live event (picked by index into the live set).
    Cancel {
        pick: usize,
    },
    /// Cancel a key that was already popped or cancelled — must be a
    /// no-op in both queues, even if the calendar slab reused the slot.
    CancelSpent {
        pick: usize,
    },
    Pop,
    Peek,
}

/// Weighted op generator (the vendored proptest has no `prop_oneof!`,
/// so the weighting lives in a hand-rolled [`Strategy`]).
#[derive(Debug, Clone)]
struct OpStrategy;

impl Strategy for OpStrategy {
    type Value = Op;
    fn generate(&self, rng: &mut TestRng) -> Op {
        match rng.below(16) {
            0..=4 => Op::Push {
                offset_us: rng.below(5_000_000),
                copies: 1 + rng.below(3) as u8,
            },
            5 => Op::PushFar {
                offset_us: (1 << 20) + rng.below(1 << 40),
            },
            6..=8 => Op::Cancel {
                pick: rng.next_u64() as usize,
            },
            9 => Op::CancelSpent {
                pick: rng.next_u64() as usize,
            },
            10..=13 => Op::Pop,
            _ => Op::Peek,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn calendar_queue_matches_the_heap_reference(
        ops in proptest::collection::vec(OpStrategy, 1..200)
    ) {
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        // Keys for events still pending in both queues, and for events
        // that already fired or were cancelled (stale-cancel fodder).
        let mut live: Vec<(u64, EventKey, HeapKey)> = Vec::new();
        let mut spent: Vec<(EventKey, HeapKey)> = Vec::new();
        let mut last_popped_us = 0u64;
        let mut next_payload = 0u64;

        for op in ops {
            match op {
                Op::Push { offset_us, copies } => {
                    let at = SimTime::from_micros(last_popped_us.saturating_add(offset_us));
                    for _ in 0..copies {
                        let ck = cal.push(at, next_payload);
                        let hk = heap.push(at, next_payload);
                        live.push((next_payload, ck, hk));
                        next_payload += 1;
                    }
                }
                Op::PushFar { offset_us } => {
                    let at = SimTime::from_micros(last_popped_us.saturating_add(offset_us));
                    let ck = cal.push(at, next_payload);
                    let hk = heap.push(at, next_payload);
                    live.push((next_payload, ck, hk));
                    next_payload += 1;
                }
                Op::Cancel { pick } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (_, ck, hk) = live.swap_remove(pick % live.len());
                    prop_assert!(cal.cancel(ck), "live key must cancel");
                    prop_assert!(heap.cancel(hk), "live key must cancel");
                    spent.push((ck, hk));
                }
                Op::CancelSpent { pick } => {
                    if spent.is_empty() {
                        continue;
                    }
                    let (ck, hk) = spent[pick % spent.len()];
                    prop_assert!(!cal.cancel(ck), "spent key must miss");
                    prop_assert!(!heap.cancel(hk), "spent key must miss");
                }
                Op::Pop => {
                    let a = cal.pop();
                    let b = heap.pop();
                    prop_assert_eq!(a, b, "pop disagreement");
                    if let Some((at, payload)) = a {
                        last_popped_us = at.as_micros();
                        let i = live
                            .iter()
                            .position(|&(p, _, _)| p == payload)
                            .expect("popped payload was live");
                        let (_, ck, hk) = live.swap_remove(i);
                        spent.push((ck, hk));
                    }
                }
                Op::Peek => {
                    prop_assert_eq!(cal.peek_time(), heap.peek_time(), "peek disagreement");
                }
            }
            prop_assert_eq!(cal.len(), heap.len(), "length disagreement");
        }

        // Drain whatever is left: full remaining order must agree.
        loop {
            let a = cal.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b, "drain disagreement");
            if a.is_none() {
                break;
            }
        }
        prop_assert!(cal.is_empty() && heap.is_empty());
    }
}
