//! Vendored stand-in for `parking_lot`, implementing the subset of its
//! API this workspace uses on top of `std::sync`.
//!
//! The signature differences that matter (and are preserved here):
//! `lock()` returns the guard directly (no poisoning `Result`), and
//! `Condvar::wait` takes `&mut MutexGuard`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Mutex without poisoning: panicking while holding the lock simply
/// releases it for the next locker, matching parking_lot semantics
/// closely enough for this workspace.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard holding the lock. The inner Option is always `Some` except
/// transiently inside `Condvar::wait`, which moves the std guard out and
/// back in around the blocking call.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_deref_mut()
            .expect("guard present outside wait")
    }
}

/// Condition variable paired with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of a timed wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present");
        let (inner, timed_out) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r.timed_out())
            }
        };
        guard.guard = Some(inner);
        WaitTimeoutResult(timed_out)
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// RwLock without poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { guard }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            while !*done {
                c.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
