//! Vendored ChaCha8 random number generator.
//!
//! This is a genuine ChaCha8 implementation (IETF variant layout with a
//! 64-bit block counter and zero nonce/stream), not a statistical toy:
//! the keystream is produced by the standard quarter-round core over a
//! 16-word state, so seed-derived streams have cryptographic-grade
//! decorrelation. Output word order within a block is the little-endian
//! serialization order, matching the real `rand_chacha` construction.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed by a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn block(&self) -> [u32; 16] {
        let mut initial = [0u32; 16];
        initial[..4].copy_from_slice(&CONSTANTS);
        initial[4..12].copy_from_slice(&self.key);
        initial[12] = self.counter as u32;
        initial[13] = (self.counter >> 32) as u32;
        initial[14] = 0;
        initial[15] = 0;

        let mut state = initial;
        for _ in 0..4 {
            // Two rounds per iteration: one column round, one diagonal.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(initial.iter()) {
            *s = s.wrapping_add(*i);
        }
        state
    }

    fn refill(&mut self) {
        self.buffer = self.block();
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Current 64-bit block counter (diagnostic).
    pub fn get_word_pos(&self) -> u128 {
        (self.counter as u128) * 16 + self.index as u128
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16, // force refill on first draw
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::from_seed([7; 32]);
        let mut b = ChaCha8Rng::from_seed([7; 32]);
        let mut c = ChaCha8Rng::from_seed([8; 32]);
        let va: Vec<u64> = (0..64).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn seed_from_u64_expands() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn keystream_is_well_distributed() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        // Bit balance across the stream.
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let frac = ones as f64 / (1000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "bit fraction {frac}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
