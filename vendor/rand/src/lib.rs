//! Vendored stand-in for `rand` 0.8: the trait surface this workspace
//! uses (`RngCore`, `Rng`, `SeedableRng`, `seq::SliceRandom`,
//! `rand::random`), with the same value-construction conventions as the
//! real crate (53-bit float mantissa fill, SplitMix64 `seed_from_u64`,
//! Lemire-style bounded integers) so distributions behave sanely.

use std::ops::{Range, RangeInclusive};

/// Core random source: everything derives from `next_u32`/`next_u64`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible from a uniform random bit stream (`Rng::gen`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),*) => {
        $(impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        })*
    };
}

standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
              usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64, u128 => next_u64, i128 => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), as in rand's Standard.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Numeric types usable with `Rng::gen_range`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {
        $(impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = if inclusive {
                    (hi as i128 - lo as i128 + 1) as u128
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                    (hi as i128 - lo as i128) as u128
                };
                if span == 0 {
                    // Inclusive full-width range: any value.
                    return <$t as Standard>::sample(rng);
                }
                // Modulo with rejection of the biased tail.
                let zone = u128::MAX - (u128::MAX - span + 1) % span;
                loop {
                    let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    if v <= zone {
                        return (lo as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        })*
    };
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {
        $(impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        })*
    };
}

uniform_float!(f32, f64);

/// Range argument to `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of rand's trait).
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed with SplitMix64, as the real crate does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len().min(8);
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (subset of rand's SliceRandom).
    pub trait SliceRandom {
        type Item;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = bounded(rng, self.len() as u64) as usize;
                Some(&self[idx])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }

    fn bounded<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator (stand-in for StdRng/SmallRng).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// One-off value from an ambient, time/thread-seeded generator (quality
/// suitable for test temp-file names, not statistics).
pub fn random<T: Standard>() -> T {
    use std::cell::RefCell;
    use std::time::{SystemTime, UNIX_EPOCH};
    thread_local! {
        static AMBIENT: RefCell<rngs::SmallRng> = RefCell::new({
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5EED);
            let tid = {
                use std::collections::hash_map::DefaultHasher;
                use std::hash::{Hash, Hasher};
                let mut h = DefaultHasher::new();
                std::thread::current().id().hash(&mut h);
                h.finish()
            };
            rngs::SmallRng::seed_from_u64(nanos ^ tid.rotate_left(32))
        });
    }
    AMBIENT.with(|rng| T::sample(&mut *rng.borrow_mut()))
}

/// `rand::thread_rng()` equivalent returning an owned generator.
pub fn thread_rng() -> rngs::SmallRng {
    rngs::SmallRng::seed_from_u64(random::<u64>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn gen_range_bounds_ints() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_range_bounds_floats() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn unit_floats_have_sane_mean() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn seed_determinism() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let mut c = SmallRng::seed_from_u64(10);
        let va: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn choose_and_shuffle() {
        use seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(4);
        let items = [1, 2, 3, 4, 5];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..50).collect::<Vec<u32>>());
        v.sort_unstable();
        assert_eq!(v, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn dyn_rng_core_supports_gen() {
        let mut rng = SmallRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen::<f64>();
        assert!((0.0..1.0).contains(&v));
    }
}
