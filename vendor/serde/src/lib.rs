//! Vendored stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` widely but only
//! actually serializes through hand-rolled JSON (see the vendored
//! `serde_json`), so here the traits are universal markers: every type
//! implements them, and `#[derive(Serialize, Deserialize)]` expands to
//! nothing (the derive macros exist so the attribute positions stay
//! valid, including `#[serde(...)]` field attributes).

/// Marker: type can be serialized. Implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker: type can be deserialized. Implemented for every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker mirroring serde's DeserializeOwned.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive_stub::{Deserialize, Serialize};

/// Placeholder for paths like `serde::de::Error` in trait bounds.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}
