//! Vendored JSON support: a real parser and serializer over a dynamic
//! [`Value`] tree, mirroring the corner of `serde_json` this workspace
//! uses. Typed (de)serialization goes through `Value` accessors rather
//! than derive-generated code (the vendored `serde` derives are inert).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Object keys are ordered (BTreeMap) so output is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

/// Parse or access error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
    /// 1-based character offset where parsing failed (0 for non-parse errors).
    pub offset: usize,
}

impl Error {
    pub fn new<S: Into<String>>(msg: S) -> Error {
        Error {
            msg: msg.into(),
            offset: 0,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset > 0 {
            write!(f, "{} at offset {}", self.msg, self.offset)
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup; returns `Value::Null` for misses (like
    /// `serde_json`'s `Value::get` chained with unwrap_or).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            _ => None,
        }
    }

    /// Required typed accessors used by hand-rolled deserializers.
    pub fn req_f64(&self, key: &str) -> Result<f64> {
        self.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| Error::new(format!("missing or non-numeric field `{key}`")))
    }

    pub fn req_u64(&self, key: &str) -> Result<u64> {
        self.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::new(format!("missing or non-integer field `{key}`")))
    }

    pub fn req_str(&self, key: &str) -> Result<&str> {
        self.get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| Error::new(format!("missing or non-string field `{key}`")))
    }

    pub fn req_array(&self, key: &str) -> Result<&Vec<Value>> {
        self.get(key)
            .and_then(Value::as_array)
            .ok_or_else(|| Error::new(format!("missing or non-array field `{key}`")))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn from_str(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos + 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{lit}`)")))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue; // parse_hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("nonempty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Escape a string into a JSON string literal (without surrounding quotes).
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float the way `serde_json` does: integers get no decimal
/// point suppressed — we keep `1.0`-style output off and print shortest
/// round-trip via `{}`.
fn fmt_number(n: f64, out: &mut String) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 1e15 {
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        out.push_str("null");
    }
}

impl Value {
    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => fmt_number(*n, out),
            Value::String(s) => {
                out.push('"');
                out.push_str(&escape_str(s));
                out.push('"');
            }
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(w) = indent {
                        out.push('\n');
                        out.push_str(&" ".repeat(w * (level + 1)));
                    }
                    item.write(out, indent, level + 1);
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * level));
                }
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(w) = indent {
                        out.push('\n');
                        out.push_str(&" ".repeat(w * (level + 1)));
                    }
                    out.push('"');
                    out.push_str(&escape_str(k));
                    out.push_str("\":");
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * level));
                }
                out.push('}');
            }
        }
    }
}

/// Compact serialization of a [`Value`].
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    value.write(&mut out, None, 0);
    out
}

/// Pretty (2-space indented) serialization of a [`Value`].
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    value.write(&mut out, Some(2), 0);
    out
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string(self))
    }
}

/// Build a `Value` with JSON-ish syntax for tests and emitters.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $( $item:tt ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $( $key:literal : $val:tt ),* $(,)? }) => {{
        let mut map = std::collections::BTreeMap::new();
        $( map.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(n as f64)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<i32> for Value {
    fn from(n: i32) -> Value {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(
            from_str("\"a\\nb\\u0041\"").unwrap(),
            Value::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"a": [1, 2, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(v["a"][2]["b"].as_str(), Some("c"));
        assert!(v["d"].is_null());
        assert_eq!(v["a"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("not json").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{} trailing").is_err());
        assert!(from_str("").is_err());
    }

    #[test]
    fn round_trips() {
        let text = r#"{"arr":[1,2.5,"x"],"flag":true,"nested":{"k":null}}"#;
        let v = from_str(text).unwrap();
        assert_eq!(from_str(&to_string(&v)).unwrap(), v);
        assert_eq!(from_str(&to_string_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn json_macro_builds_values() {
        let v = json!({"a": 1u64, "b": [true, null], "c": "s"});
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"][0].as_bool(), Some(true));
        assert!(v["b"][1].is_null());
        assert_eq!(v["c"].as_str(), Some("s"));
    }

    #[test]
    fn escapes_and_unescapes() {
        let v = Value::String("tab\t\"quote\"\nnewline".into());
        let s = to_string(&v);
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn required_accessors_error_on_missing() {
        let v = from_str("{}").unwrap();
        assert!(v.req_f64("energy").is_err());
        assert!(v.req_str("name").is_err());
        assert!(v.req_array("geometry").is_err());
    }
}
