//! Vendored timing harness exposing the `criterion` API subset used by
//! this workspace's benches: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, and `Bencher::iter`.
//!
//! It runs each benchmark `sample_size` times, reports mean wall time
//! (and element throughput when declared) to stdout, and does no
//! statistical analysis — enough to keep `cargo bench` and the
//! `cargo test`-compiled bench targets working offline.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Inhibit constant-folding of benchmark inputs/outputs.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Two-part benchmark id (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Accepts `&str`, `String`, and `BenchmarkId` where criterion does.
pub trait IntoBenchmarkId {
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

pub struct Bencher {
    /// Total time spent inside `iter` closures and iteration count,
    /// accumulated across `iter` calls within one sample.
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: self.sample_size,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        self.run(&label, |b| routine(b));
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_label();
        self.run(&label, |b| routine(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut routine: F) {
        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            routine(&mut bencher);
            total += bencher.elapsed;
            iterations += bencher.iterations;
        }
        let mean = if iterations > 0 {
            total / iterations as u32
        } else {
            Duration::ZERO
        };
        let mut line = format!(
            "{}/{label}: mean {mean:?} over {iterations} iters",
            self.name
        );
        if let Some(tp) = self.throughput {
            let per_iter_secs = mean.as_secs_f64();
            if per_iter_secs > 0.0 {
                match tp {
                    Throughput::Elements(n) => {
                        line.push_str(&format!(" ({:.0} elem/s)", n as f64 / per_iter_secs));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!(" ({:.0} B/s)", n as f64 / per_iter_secs));
                    }
                }
            }
        }
        println!("{line}");
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $( $target:path ),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $( $target:path ),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $( $target ),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($( $group:path ),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
