//! No-op derive macros backing the vendored `serde` stub.
//!
//! The real traits are blanket-implemented for all types, so the derives
//! only need to (a) exist and (b) register the `#[serde(...)]` helper
//! attribute so annotated fields keep compiling.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
