//! Vendored stand-in for `crossbeam-channel`: an MPMC channel built on
//! `Mutex` + `Condvar`, covering the subset of the API this workspace
//! uses (`unbounded`, `bounded`, clonable `Sender`/`Receiver`, `send`,
//! `send_timeout`, `recv`, `try_recv`, `recv_timeout`, disconnect
//! semantics).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<State<T>>,
    ready: Condvar,
    /// Signalled when a bounded channel gains free capacity.
    space: Condvar,
    /// `None` for unbounded channels.
    cap: Option<usize>,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::send_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The channel stayed full for the whole timeout.
    Timeout(T),
    /// All receivers are gone.
    Disconnected(T),
}

impl<T> SendTimeoutError<T> {
    /// Recover the item that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            SendTimeoutError::Timeout(item) | SendTimeoutError::Disconnected(item) => item,
        }
    }
}

impl<T> fmt::Display for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => f.write_str("timed out sending on a full channel"),
            SendTimeoutError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Error returned by [`Receiver::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
        space: Condvar::new(),
        cap,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// An unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// A bounded MPMC channel holding at most `cap` items; `send` blocks
/// while the channel is full. A capacity of zero is rounded up to one
/// (this stand-in does not implement rendezvous channels).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
    match shared.queue.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl<T> Sender<T> {
    /// Send an item, blocking while a bounded channel is full.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut state = lock(&self.shared);
        if state.receivers == 0 {
            return Err(SendError(item));
        }
        if let Some(cap) = self.shared.cap {
            while state.items.len() >= cap {
                state = match self.shared.space.wait(state) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                if state.receivers == 0 {
                    return Err(SendError(item));
                }
            }
        }
        state.items.push_back(item);
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Send an item, waiting at most `timeout` for a full bounded channel
    /// to drain. Unbounded channels never time out.
    pub fn send_timeout(&self, item: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.shared);
        if state.receivers == 0 {
            return Err(SendTimeoutError::Disconnected(item));
        }
        if let Some(cap) = self.shared.cap {
            while state.items.len() >= cap {
                let now = Instant::now();
                if now >= deadline {
                    return Err(SendTimeoutError::Timeout(item));
                }
                let (guard, _) = match self.shared.space.wait_timeout(state, deadline - now) {
                    Ok(r) => r,
                    Err(p) => p.into_inner(),
                };
                state = guard;
                if state.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(item));
                }
            }
        }
        state.items.push_back(item);
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.shared);
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = lock(&self.shared);
        match state.items.pop_front() {
            Some(item) => {
                drop(state);
                self.shared.space.notify_one();
                Ok(item)
            }
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = lock(&self.shared);
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.space.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = match self.shared.ready.wait(state) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.shared);
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.space.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, result) = match self.shared.ready.wait_timeout(state, deadline - now) {
                Ok(r) => r,
                Err(p) => p.into_inner(),
            };
            state = guard;
            if result.timed_out() && state.items.is_empty() {
                return if state.senders == 0 {
                    Err(RecvTimeoutError::Disconnected)
                } else {
                    Err(RecvTimeoutError::Timeout)
                };
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        lock(&self.shared).items.is_empty()
    }

    pub fn len(&self) -> usize {
        lock(&self.shared).items.len()
    }

    /// Iterate over received items until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.shared);
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            // Wake senders blocked on a full bounded channel so they
            // observe the disconnect.
            self.shared.space.notify_all();
        }
    }
}

pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn recv_timeout_expires_then_succeeds() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send("x").unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok("x"));
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(
            tx.send_timeout(3, Duration::from_millis(5)),
            Err(SendTimeoutError::Timeout(3))
        );
        let handle = std::thread::spawn(move || tx.send(3));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        handle.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn bounded_send_observes_receiver_drop() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(10));
        drop(rx);
        assert_eq!(handle.join().unwrap(), Err(SendError(2)));
    }

    #[test]
    fn bounded_send_timeout_disconnect() {
        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        assert_eq!(
            tx.send_timeout(7, Duration::from_millis(5)),
            Err(SendTimeoutError::Disconnected(7))
        );
        assert_eq!(
            SendTimeoutError::Timeout(9).into_inner(),
            9,
            "into_inner recovers the item"
        );
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded::<u64>();
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(p * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), 400);
        all.dedup();
        assert_eq!(all.len(), 400, "no duplicates");
    }
}
