//! Vendored stand-in for `crossbeam-channel`: an unbounded MPMC channel
//! built on `Mutex` + `Condvar`, covering the subset of the API this
//! workspace uses (`unbounded`, clonable `Sender`/`Receiver`, `send`,
//! `recv`, `try_recv`, `recv_timeout`, disconnect semantics).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<State<T>>,
    ready: Condvar,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Error returned by [`Receiver::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// An unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
    match shared.queue.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl<T> Sender<T> {
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut state = lock(&self.shared);
        if state.receivers == 0 {
            return Err(SendError(item));
        }
        state.items.push_back(item);
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.shared);
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = lock(&self.shared);
        match state.items.pop_front() {
            Some(item) => Ok(item),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = lock(&self.shared);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = match self.shared.ready.wait(state) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.shared);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, result) = match self.shared.ready.wait_timeout(state, deadline - now) {
                Ok(r) => r,
                Err(p) => p.into_inner(),
            };
            state = guard;
            if result.timed_out() && state.items.is_empty() {
                return if state.senders == 0 {
                    Err(RecvTimeoutError::Disconnected)
                } else {
                    Err(RecvTimeoutError::Timeout)
                };
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        lock(&self.shared).items.is_empty()
    }

    pub fn len(&self) -> usize {
        lock(&self.shared).items.len()
    }

    /// Iterate over received items until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        lock(&self.shared).receivers -= 1;
    }
}

pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn recv_timeout_expires_then_succeeds() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send("x").unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok("x"));
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded::<u64>();
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(p * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), 400);
        all.dedup();
        assert_eq!(all.len(), 400, "no duplicates");
    }
}
