//! Vendored property-testing mini-framework exposing the slice of the
//! `proptest` API this workspace uses: the `proptest!` macro (with
//! optional `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`,
//! regex-subset string strategies, numeric range strategies,
//! `collection::{vec, btree_map}`, `any::<T>()`, `Just(..).prop_shuffle()`.
//!
//! Generation is deterministic: the RNG is seeded from the test's module
//! path + name + case index, so failures reproduce exactly across runs.

use std::collections::BTreeMap;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// SplitMix64-based generator; deterministic per (test name, case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the fully qualified test name, perturbed per case.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift with rejection of the biased zone.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle(self)
    }

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Constant strategy: always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Values whose contents can be permuted in place (for `prop_shuffle`).
pub trait Shuffleable {
    fn shuffle(&mut self, rng: &mut TestRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut TestRng) {
        for i in (1..self.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[derive(Debug, Clone)]
pub struct Shuffle<S>(S);

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut value = self.0.generate(rng);
        value.shuffle(rng);
        value
    }
}

#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

// ---------------------------------------------------------------------------
// Numeric ranges
// ---------------------------------------------------------------------------

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// `proptest::bool::ANY`.
pub mod bool {
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;
    pub const ANY: BoolAny = BoolAny;

    impl super::Strategy for BoolAny {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut super::TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::*;

    /// Element-count range for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        pub min: usize,
        /// Exclusive upper bound.
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.pick(rng);
            let mut map = BTreeMap::new();
            // Keys may collide; retry a bounded number of times to respect
            // the minimum where possible.
            let mut attempts = 0;
            while map.len() < n && attempts < n * 8 + 8 {
                map.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            map
        }
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string strategy
// ---------------------------------------------------------------------------

/// String strategies are written as regex literals (e.g. `"[a-z]{1,5}"`).
/// Supported subset: literal chars, `.` (printable ASCII), character
/// classes with ranges and `^` negation, groups `( )`, and `{m,n}` /
/// `{n}` / `?` / `*` / `+` repetition (unbounded forms capped at 8).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = regex::parse(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"));
        let mut out = String::new();
        regex::emit(&pattern, rng, &mut out);
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

mod regex {
    use super::TestRng;

    #[derive(Debug, Clone)]
    pub enum Node {
        Literal(char),
        /// Uniform over this set of chars.
        Class(Vec<char>),
        Sequence(Vec<(Node, Repeat)>),
    }

    #[derive(Debug, Clone, Copy)]
    pub struct Repeat {
        pub min: u32,
        pub max: u32, // inclusive
    }

    const ONCE: Repeat = Repeat { min: 1, max: 1 };

    pub fn parse(pattern: &str) -> Result<Node, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let (node, consumed) = parse_sequence(&chars, 0, None)?;
        if consumed != chars.len() {
            return Err(format!("unexpected `{}` at {consumed}", chars[consumed]));
        }
        Ok(node)
    }

    fn parse_sequence(
        chars: &[char],
        mut pos: usize,
        close: Option<char>,
    ) -> Result<(Node, usize), String> {
        let mut items: Vec<(Node, Repeat)> = Vec::new();
        while pos < chars.len() {
            if Some(chars[pos]) == close {
                return Ok((Node::Sequence(items), pos));
            }
            let (atom, next) = parse_atom(chars, pos)?;
            let (rep, next) = parse_repeat(chars, next)?;
            items.push((atom, rep));
            pos = next;
        }
        if close.is_some() {
            return Err("unterminated group".to_string());
        }
        Ok((Node::Sequence(items), pos))
    }

    fn parse_atom(chars: &[char], pos: usize) -> Result<(Node, usize), String> {
        match chars[pos] {
            '[' => parse_class(chars, pos + 1),
            '(' => {
                let (inner, end) = parse_sequence(chars, pos + 1, Some(')'))?;
                Ok((inner, end + 1))
            }
            '.' => {
                // Printable ASCII; enough entropy for "anything" tests
                // without producing invalid UTF-8 or control chars.
                Ok((Node::Class((' '..='~').collect()), pos + 1))
            }
            '\\' => {
                let c = *chars.get(pos + 1).ok_or("dangling escape")?;
                Ok((Node::Literal(unescape(c)), pos + 2))
            }
            c if !"{}*+?)".contains(c) => Ok((Node::Literal(c), pos + 1)),
            c => Err(format!("unexpected `{c}`")),
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_class(chars: &[char], mut pos: usize) -> Result<(Node, usize), String> {
        let negate = chars.get(pos) == Some(&'^');
        if negate {
            pos += 1;
        }
        let mut set: Vec<char> = Vec::new();
        let mut first = true;
        while pos < chars.len() && (chars[pos] != ']' || first) {
            let lo = if chars[pos] == '\\' {
                pos += 1;
                unescape(*chars.get(pos).ok_or("dangling escape in class")?)
            } else {
                chars[pos]
            };
            // Range `a-z` unless the `-` is the final char before `]`.
            if chars.get(pos + 1) == Some(&'-') && chars.get(pos + 2).is_some_and(|c| *c != ']') {
                let hi = chars[pos + 2];
                if (lo as u32) > (hi as u32) {
                    return Err(format!("bad range {lo}-{hi}"));
                }
                set.extend((lo..=hi).collect::<Vec<char>>());
                pos += 3;
            } else {
                set.push(lo);
                pos += 1;
            }
            first = false;
        }
        if pos >= chars.len() {
            return Err("unterminated class".to_string());
        }
        let set = if negate {
            (' '..='~').filter(|c| !set.contains(c)).collect()
        } else {
            set
        };
        if set.is_empty() {
            return Err("empty character class".to_string());
        }
        Ok((Node::Class(set), pos + 1))
    }

    fn parse_repeat(chars: &[char], pos: usize) -> Result<(Repeat, usize), String> {
        match chars.get(pos) {
            Some('{') => {
                let close = chars[pos..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or("unterminated repetition")?
                    + pos;
                let body: String = chars[pos + 1..close].iter().collect();
                let (min, max) = if let Some((lo, hi)) = body.split_once(',') {
                    let lo: u32 = lo.trim().parse().map_err(|_| "bad repetition bound")?;
                    let hi: u32 = if hi.trim().is_empty() {
                        lo + 8
                    } else {
                        hi.trim().parse().map_err(|_| "bad repetition bound")?
                    };
                    (lo, hi)
                } else {
                    let n: u32 = body.trim().parse().map_err(|_| "bad repetition count")?;
                    (n, n)
                };
                if min > max {
                    return Err("inverted repetition bounds".to_string());
                }
                Ok((Repeat { min, max }, close + 1))
            }
            Some('?') => Ok((Repeat { min: 0, max: 1 }, pos + 1)),
            Some('*') => Ok((Repeat { min: 0, max: 8 }, pos + 1)),
            Some('+') => Ok((Repeat { min: 1, max: 8 }, pos + 1)),
            _ => Ok((ONCE, pos)),
        }
    }

    pub fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::Class(set) => {
                out.push(set[rng.below(set.len() as u64) as usize]);
            }
            Node::Sequence(items) => {
                for (atom, rep) in items {
                    let n = rep.min + rng.below(u64::from(rep.max - rep.min) + 1) as u32;
                    for _ in 0..n {
                        emit(atom, rng, out);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                $body
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_class_with_ranges() {
        let mut rng = TestRng::for_case("t1", 0);
        for _ in 0..200 {
            let s = "[a-z0-9]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn regex_groups_and_paths() {
        let mut rng = TestRng::for_case("t2", 0);
        for _ in 0..200 {
            let s = "[a-z]{1,5}(/[a-z.]{1,8}){0,4}".generate(&mut rng);
            assert!(!s.is_empty());
            for (i, seg) in s.split('/').enumerate() {
                if i == 0 {
                    assert!(seg.chars().all(|c| c.is_ascii_lowercase()));
                } else {
                    assert!(seg.chars().all(|c| c.is_ascii_lowercase() || c == '.'));
                }
            }
        }
    }

    #[test]
    fn regex_negated_class_and_printable_range() {
        let mut rng = TestRng::for_case("t3", 0);
        for _ in 0..200 {
            let s = "[^{}]{0,100}".generate(&mut rng);
            assert!(!s.contains('{') && !s.contains('}'));
            let t = "[ -~]{0,12}".generate(&mut rng);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn numeric_ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("t4", 0);
        for _ in 0..500 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (1.0f64..2.0).generate(&mut rng);
            assert!((1.0..2.0).contains(&f));
            let big = (0u64..1u64 << 34).generate(&mut rng);
            assert!(big < 1u64 << 34);
        }
    }

    #[test]
    fn shuffle_permutes() {
        let original: Vec<u64> = (1..=20).collect();
        let strat = Just(original.clone()).prop_shuffle();
        let mut rng = TestRng::for_case("t5", 0);
        let shuffled = strat.generate(&mut rng);
        let mut sorted = shuffled.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
    }

    #[test]
    fn determinism_per_test_name() {
        let a = {
            let mut rng = TestRng::for_case("same", 7);
            "[a-z]{8}".generate(&mut rng)
        };
        let b = {
            let mut rng = TestRng::for_case("same", 7);
            "[a-z]{8}".generate(&mut rng)
        };
        assert_eq!(a, b);
        let c = {
            let mut rng = TestRng::for_case("other", 7);
            "[a-z]{8}".generate(&mut rng)
        };
        assert_ne!(a, c, "different test names should diverge (w.h.p.)");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_with_config(x in 0u32..10, s in "[a-z]{1,3}") {
            prop_assert!(x < 10);
            prop_assert!((1..=3).contains(&s.len()));
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(
            items in crate::collection::vec("[0-9]{1,3}", 1..6),
            byte in any::<u8>(),
        ) {
            prop_assert!((1..6).contains(&items.len()));
            let _ = byte;
        }
    }
}
