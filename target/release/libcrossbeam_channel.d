/root/repo/target/release/libcrossbeam_channel.rlib: /root/repo/vendor/crossbeam-channel/src/lib.rs
