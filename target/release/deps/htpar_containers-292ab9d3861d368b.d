/root/repo/target/release/deps/htpar_containers-292ab9d3861d368b.d: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs

/root/repo/target/release/deps/libhtpar_containers-292ab9d3861d368b.rlib: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs

/root/repo/target/release/deps/libhtpar_containers-292ab9d3861d368b.rmeta: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs

crates/containers/src/lib.rs:
crates/containers/src/runtime.rs:
crates/containers/src/stress.rs:
