/root/repo/target/release/deps/tab_srun_vs_parallel-c0de618b70cdf65a.d: crates/bench/src/bin/tab_srun_vs_parallel.rs

/root/repo/target/release/deps/tab_srun_vs_parallel-c0de618b70cdf65a: crates/bench/src/bin/tab_srun_vs_parallel.rs

crates/bench/src/bin/tab_srun_vs_parallel.rs:
