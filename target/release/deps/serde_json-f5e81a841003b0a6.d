/root/repo/target/release/deps/serde_json-f5e81a841003b0a6.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-f5e81a841003b0a6.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-f5e81a841003b0a6.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
