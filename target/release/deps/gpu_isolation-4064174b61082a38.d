/root/repo/target/release/deps/gpu_isolation-4064174b61082a38.d: examples/gpu_isolation.rs

/root/repo/target/release/deps/gpu_isolation-4064174b61082a38: examples/gpu_isolation.rs

examples/gpu_isolation.rs:
