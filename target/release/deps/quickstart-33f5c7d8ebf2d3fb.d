/root/repo/target/release/deps/quickstart-33f5c7d8ebf2d3fb.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-33f5c7d8ebf2d3fb: examples/quickstart.rs

examples/quickstart.rs:
