/root/repo/target/release/deps/proptest-10b3146d04f253ff.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-10b3146d04f253ff.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-10b3146d04f253ff.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
