/root/repo/target/release/deps/ablation_engine-e5d91d7695063bce.d: crates/bench/src/bin/ablation_engine.rs

/root/repo/target/release/deps/ablation_engine-e5d91d7695063bce: crates/bench/src/bin/ablation_engine.rs

crates/bench/src/bin/ablation_engine.rs:
