/root/repo/target/release/deps/tab_overhead_comparison-b39614ef8f2b8b76.d: crates/bench/src/bin/tab_overhead_comparison.rs

/root/repo/target/release/deps/tab_overhead_comparison-b39614ef8f2b8b76: crates/bench/src/bin/tab_overhead_comparison.rs

crates/bench/src/bin/tab_overhead_comparison.rs:
