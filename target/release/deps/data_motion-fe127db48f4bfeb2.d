/root/repo/target/release/deps/data_motion-fe127db48f4bfeb2.d: examples/data_motion.rs

/root/repo/target/release/deps/data_motion-fe127db48f4bfeb2: examples/data_motion.rs

examples/data_motion.rs:
