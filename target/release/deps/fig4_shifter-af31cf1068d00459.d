/root/repo/target/release/deps/fig4_shifter-af31cf1068d00459.d: crates/bench/src/bin/fig4_shifter.rs

/root/repo/target/release/deps/fig4_shifter-af31cf1068d00459: crates/bench/src/bin/fig4_shifter.rs

crates/bench/src/bin/fig4_shifter.rs:
