/root/repo/target/release/deps/htpar_bench-88e853b8468eb709.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhtpar_bench-88e853b8468eb709.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhtpar_bench-88e853b8468eb709.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
