/root/repo/target/release/deps/remote_cluster-8d41091f30fe1a2f.d: examples/remote_cluster.rs

/root/repo/target/release/deps/remote_cluster-8d41091f30fe1a2f: examples/remote_cluster.rs

examples/remote_cluster.rs:
