/root/repo/target/release/deps/htpar_simkit-4d5354170c10788b.d: crates/simkit/src/lib.rs crates/simkit/src/dist.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/release/deps/libhtpar_simkit-4d5354170c10788b.rlib: crates/simkit/src/lib.rs crates/simkit/src/dist.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/release/deps/libhtpar_simkit-4d5354170c10788b.rmeta: crates/simkit/src/lib.rs crates/simkit/src/dist.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/dist.rs:
crates/simkit/src/engine.rs:
crates/simkit/src/event.rs:
crates/simkit/src/resource.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
