/root/repo/target/release/deps/serde_derive_stub-1fd94257e797b8c3.d: vendor/serde_derive_stub/src/lib.rs

/root/repo/target/release/deps/libserde_derive_stub-1fd94257e797b8c3.so: vendor/serde_derive_stub/src/lib.rs

vendor/serde_derive_stub/src/lib.rs:
