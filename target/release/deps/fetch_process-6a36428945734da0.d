/root/repo/target/release/deps/fetch_process-6a36428945734da0.d: examples/fetch_process.rs

/root/repo/target/release/deps/fetch_process-6a36428945734da0: examples/fetch_process.rs

examples/fetch_process.rs:
