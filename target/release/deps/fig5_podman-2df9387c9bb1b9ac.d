/root/repo/target/release/deps/fig5_podman-2df9387c9bb1b9ac.d: crates/bench/src/bin/fig5_podman.rs

/root/repo/target/release/deps/fig5_podman-2df9387c9bb1b9ac: crates/bench/src/bin/fig5_podman.rs

crates/bench/src/bin/fig5_podman.rs:
