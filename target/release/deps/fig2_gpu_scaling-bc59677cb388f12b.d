/root/repo/target/release/deps/fig2_gpu_scaling-bc59677cb388f12b.d: crates/bench/src/bin/fig2_gpu_scaling.rs

/root/repo/target/release/deps/fig2_gpu_scaling-bc59677cb388f12b: crates/bench/src/bin/fig2_gpu_scaling.rs

crates/bench/src/bin/fig2_gpu_scaling.rs:
