/root/repo/target/release/deps/tab_data_motion-7d28cdf39366589a.d: crates/bench/src/bin/tab_data_motion.rs

/root/repo/target/release/deps/tab_data_motion-7d28cdf39366589a: crates/bench/src/bin/tab_data_motion.rs

crates/bench/src/bin/tab_data_motion.rs:
