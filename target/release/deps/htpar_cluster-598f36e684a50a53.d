/root/repo/target/release/deps/htpar_cluster-598f36e684a50a53.d: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs

/root/repo/target/release/deps/libhtpar_cluster-598f36e684a50a53.rlib: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs

/root/repo/target/release/deps/libhtpar_cluster-598f36e684a50a53.rmeta: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs

crates/cluster/src/lib.rs:
crates/cluster/src/des.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/launch.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/slurm.rs:
crates/cluster/src/weak_scaling.rs:
