/root/repo/target/release/deps/htpar_storage-7862103f4daa71d4.d: crates/storage/src/lib.rs crates/storage/src/dataset.rs crates/storage/src/flow.rs crates/storage/src/lustre.rs crates/storage/src/nvme.rs crates/storage/src/staging.rs crates/storage/src/stripe.rs

/root/repo/target/release/deps/libhtpar_storage-7862103f4daa71d4.rlib: crates/storage/src/lib.rs crates/storage/src/dataset.rs crates/storage/src/flow.rs crates/storage/src/lustre.rs crates/storage/src/nvme.rs crates/storage/src/staging.rs crates/storage/src/stripe.rs

/root/repo/target/release/deps/libhtpar_storage-7862103f4daa71d4.rmeta: crates/storage/src/lib.rs crates/storage/src/dataset.rs crates/storage/src/flow.rs crates/storage/src/lustre.rs crates/storage/src/nvme.rs crates/storage/src/staging.rs crates/storage/src/stripe.rs

crates/storage/src/lib.rs:
crates/storage/src/dataset.rs:
crates/storage/src/flow.rs:
crates/storage/src/lustre.rs:
crates/storage/src/nvme.rs:
crates/storage/src/staging.rs:
crates/storage/src/stripe.rs:
