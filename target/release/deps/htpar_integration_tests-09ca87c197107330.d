/root/repo/target/release/deps/htpar_integration_tests-09ca87c197107330.d: tests/lib.rs

/root/repo/target/release/deps/libhtpar_integration_tests-09ca87c197107330.rlib: tests/lib.rs

/root/repo/target/release/deps/libhtpar_integration_tests-09ca87c197107330.rmeta: tests/lib.rs

tests/lib.rs:
