/root/repo/target/release/deps/tab_forge_curation-d42d8febc797da64.d: crates/bench/src/bin/tab_forge_curation.rs

/root/repo/target/release/deps/tab_forge_curation-d42d8febc797da64: crates/bench/src/bin/tab_forge_curation.rs

crates/bench/src/bin/tab_forge_curation.rs:
