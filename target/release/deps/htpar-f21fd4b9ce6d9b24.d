/root/repo/target/release/deps/htpar-f21fd4b9ce6d9b24.d: crates/cli/src/main.rs

/root/repo/target/release/deps/htpar-f21fd4b9ce6d9b24: crates/cli/src/main.rs

crates/cli/src/main.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
