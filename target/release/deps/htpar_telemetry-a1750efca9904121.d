/root/repo/target/release/deps/htpar_telemetry-a1750efca9904121.d: crates/telemetry/src/lib.rs crates/telemetry/src/bus.rs crates/telemetry/src/event.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sinks.rs

/root/repo/target/release/deps/libhtpar_telemetry-a1750efca9904121.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/bus.rs crates/telemetry/src/event.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sinks.rs

/root/repo/target/release/deps/libhtpar_telemetry-a1750efca9904121.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/bus.rs crates/telemetry/src/event.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sinks.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/bus.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/sinks.rs:
