/root/repo/target/release/deps/robustness_seeds-b97862663a0aa160.d: crates/bench/src/bin/robustness_seeds.rs

/root/repo/target/release/deps/robustness_seeds-b97862663a0aa160: crates/bench/src/bin/robustness_seeds.rs

crates/bench/src/bin/robustness_seeds.rs:
