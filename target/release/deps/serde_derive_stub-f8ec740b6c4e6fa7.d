/root/repo/target/release/deps/serde_derive_stub-f8ec740b6c4e6fa7.d: vendor/serde_derive_stub/src/lib.rs

/root/repo/target/release/deps/libserde_derive_stub-f8ec740b6c4e6fa7.so: vendor/serde_derive_stub/src/lib.rs

vendor/serde_derive_stub/src/lib.rs:
