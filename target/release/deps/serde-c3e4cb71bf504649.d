/root/repo/target/release/deps/serde-c3e4cb71bf504649.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c3e4cb71bf504649.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c3e4cb71bf504649.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
