/root/repo/target/release/deps/htpar_wms-9d1850e4b658caf8.d: crates/wms/src/lib.rs crates/wms/src/compare.rs crates/wms/src/engine.rs crates/wms/src/timeline.rs

/root/repo/target/release/deps/libhtpar_wms-9d1850e4b658caf8.rlib: crates/wms/src/lib.rs crates/wms/src/compare.rs crates/wms/src/engine.rs crates/wms/src/timeline.rs

/root/repo/target/release/deps/libhtpar_wms-9d1850e4b658caf8.rmeta: crates/wms/src/lib.rs crates/wms/src/compare.rs crates/wms/src/engine.rs crates/wms/src/timeline.rs

crates/wms/src/lib.rs:
crates/wms/src/compare.rs:
crates/wms/src/engine.rs:
crates/wms/src/timeline.rs:
