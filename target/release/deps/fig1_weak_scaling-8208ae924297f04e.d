/root/repo/target/release/deps/fig1_weak_scaling-8208ae924297f04e.d: crates/bench/src/bin/fig1_weak_scaling.rs

/root/repo/target/release/deps/fig1_weak_scaling-8208ae924297f04e: crates/bench/src/bin/fig1_weak_scaling.rs

crates/bench/src/bin/fig1_weak_scaling.rs:
