/root/repo/target/release/deps/ablation_io_strategy-e1c2096fd1ed732f.d: crates/bench/src/bin/ablation_io_strategy.rs

/root/repo/target/release/deps/ablation_io_strategy-e1c2096fd1ed732f: crates/bench/src/bin/ablation_io_strategy.rs

crates/bench/src/bin/ablation_io_strategy.rs:
