/root/repo/target/release/deps/crossbeam_channel-61cd77873fcaa1c4.d: vendor/crossbeam-channel/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_channel-61cd77873fcaa1c4.rlib: vendor/crossbeam-channel/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_channel-61cd77873fcaa1c4.rmeta: vendor/crossbeam-channel/src/lib.rs

vendor/crossbeam-channel/src/lib.rs:
