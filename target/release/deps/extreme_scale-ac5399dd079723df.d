/root/repo/target/release/deps/extreme_scale-ac5399dd079723df.d: examples/extreme_scale.rs

/root/repo/target/release/deps/extreme_scale-ac5399dd079723df: examples/extreme_scale.rs

examples/extreme_scale.rs:
