/root/repo/target/release/deps/htpar_examples-aa2faef33e0232c8.d: examples/lib.rs

/root/repo/target/release/deps/libhtpar_examples-aa2faef33e0232c8.rlib: examples/lib.rs

/root/repo/target/release/deps/libhtpar_examples-aa2faef33e0232c8.rmeta: examples/lib.rs

examples/lib.rs:
