/root/repo/target/release/deps/htpar_cli-af2f7cdf90583c82.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/exec.rs

/root/repo/target/release/deps/libhtpar_cli-af2f7cdf90583c82.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/exec.rs

/root/repo/target/release/deps/libhtpar_cli-af2f7cdf90583c82.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/exec.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/exec.rs:
