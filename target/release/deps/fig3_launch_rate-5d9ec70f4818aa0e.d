/root/repo/target/release/deps/fig3_launch_rate-5d9ec70f4818aa0e.d: crates/bench/src/bin/fig3_launch_rate.rs

/root/repo/target/release/deps/fig3_launch_rate-5d9ec70f4818aa0e: crates/bench/src/bin/fig3_launch_rate.rs

crates/bench/src/bin/fig3_launch_rate.rs:
