/root/repo/target/release/deps/htpar_workloads-51b50dd8c55c8c02.d: crates/workloads/src/lib.rs crates/workloads/src/celeritas.rs crates/workloads/src/darshan.rs crates/workloads/src/dedup.rs crates/workloads/src/forge.rs crates/workloads/src/goes.rs crates/workloads/src/wfbench.rs

/root/repo/target/release/deps/libhtpar_workloads-51b50dd8c55c8c02.rlib: crates/workloads/src/lib.rs crates/workloads/src/celeritas.rs crates/workloads/src/darshan.rs crates/workloads/src/dedup.rs crates/workloads/src/forge.rs crates/workloads/src/goes.rs crates/workloads/src/wfbench.rs

/root/repo/target/release/deps/libhtpar_workloads-51b50dd8c55c8c02.rmeta: crates/workloads/src/lib.rs crates/workloads/src/celeritas.rs crates/workloads/src/darshan.rs crates/workloads/src/dedup.rs crates/workloads/src/forge.rs crates/workloads/src/goes.rs crates/workloads/src/wfbench.rs

crates/workloads/src/lib.rs:
crates/workloads/src/celeritas.rs:
crates/workloads/src/darshan.rs:
crates/workloads/src/dedup.rs:
crates/workloads/src/forge.rs:
crates/workloads/src/goes.rs:
crates/workloads/src/wfbench.rs:
