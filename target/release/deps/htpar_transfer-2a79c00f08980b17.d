/root/repo/target/release/deps/htpar_transfer-2a79c00f08980b17.d: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs

/root/repo/target/release/deps/libhtpar_transfer-2a79c00f08980b17.rlib: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs

/root/repo/target/release/deps/libhtpar_transfer-2a79c00f08980b17.rmeta: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs

crates/transfer/src/lib.rs:
crates/transfer/src/bwlimit.rs:
crates/transfer/src/dtn.rs:
crates/transfer/src/filelist.rs:
crates/transfer/src/rsyncd.rs:
