/root/repo/target/release/deps/darshan_pipeline-4326b15aaa21710d.d: examples/darshan_pipeline.rs

/root/repo/target/release/deps/darshan_pipeline-4326b15aaa21710d: examples/darshan_pipeline.rs

examples/darshan_pipeline.rs:
