/root/repo/target/release/deps/tab_darshan_pipeline-842f770ff88b435a.d: crates/bench/src/bin/tab_darshan_pipeline.rs

/root/repo/target/release/deps/tab_darshan_pipeline-842f770ff88b435a: crates/bench/src/bin/tab_darshan_pipeline.rs

crates/bench/src/bin/tab_darshan_pipeline.rs:
