/root/repo/target/release/libserde_derive_stub.so: /root/repo/vendor/serde_derive_stub/src/lib.rs
