/root/repo/target/debug/deps/fig5_podman-f914282b3de317ab.d: crates/bench/src/bin/fig5_podman.rs

/root/repo/target/debug/deps/fig5_podman-f914282b3de317ab: crates/bench/src/bin/fig5_podman.rs

crates/bench/src/bin/fig5_podman.rs:
