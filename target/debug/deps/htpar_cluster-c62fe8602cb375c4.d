/root/repo/target/debug/deps/htpar_cluster-c62fe8602cb375c4.d: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_cluster-c62fe8602cb375c4.rmeta: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/des.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/launch.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/slurm.rs:
crates/cluster/src/weak_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
