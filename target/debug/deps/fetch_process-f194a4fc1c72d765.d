/root/repo/target/debug/deps/fetch_process-f194a4fc1c72d765.d: examples/fetch_process.rs

/root/repo/target/debug/deps/fetch_process-f194a4fc1c72d765: examples/fetch_process.rs

examples/fetch_process.rs:
