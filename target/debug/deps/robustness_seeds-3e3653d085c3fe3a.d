/root/repo/target/debug/deps/robustness_seeds-3e3653d085c3fe3a.d: crates/bench/src/bin/robustness_seeds.rs

/root/repo/target/debug/deps/robustness_seeds-3e3653d085c3fe3a: crates/bench/src/bin/robustness_seeds.rs

crates/bench/src/bin/robustness_seeds.rs:
