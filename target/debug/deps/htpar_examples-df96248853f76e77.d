/root/repo/target/debug/deps/htpar_examples-df96248853f76e77.d: examples/lib.rs

/root/repo/target/debug/deps/htpar_examples-df96248853f76e77: examples/lib.rs

examples/lib.rs:
