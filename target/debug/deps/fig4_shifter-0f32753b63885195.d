/root/repo/target/debug/deps/fig4_shifter-0f32753b63885195.d: crates/bench/src/bin/fig4_shifter.rs

/root/repo/target/debug/deps/libfig4_shifter-0f32753b63885195.rmeta: crates/bench/src/bin/fig4_shifter.rs

crates/bench/src/bin/fig4_shifter.rs:
