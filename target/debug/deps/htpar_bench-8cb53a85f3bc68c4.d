/root/repo/target/debug/deps/htpar_bench-8cb53a85f3bc68c4.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_bench-8cb53a85f3bc68c4.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
