/root/repo/target/debug/deps/htpar_containers-9732c87b273d9619.d: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs

/root/repo/target/debug/deps/htpar_containers-9732c87b273d9619: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs

crates/containers/src/lib.rs:
crates/containers/src/runtime.rs:
crates/containers/src/stress.rs:
