/root/repo/target/debug/deps/htpar_telemetry-aee8a2e8c04971cb.d: crates/telemetry/src/lib.rs crates/telemetry/src/bus.rs crates/telemetry/src/event.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sinks.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_telemetry-aee8a2e8c04971cb.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/bus.rs crates/telemetry/src/event.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sinks.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/bus.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/sinks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
