/root/repo/target/debug/deps/htpar_simkit-207965055db6b3da.d: crates/simkit/src/lib.rs crates/simkit/src/dist.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/libhtpar_simkit-207965055db6b3da.rmeta: crates/simkit/src/lib.rs crates/simkit/src/dist.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/dist.rs:
crates/simkit/src/engine.rs:
crates/simkit/src/event.rs:
crates/simkit/src/resource.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
