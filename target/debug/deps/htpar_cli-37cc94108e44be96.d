/root/repo/target/debug/deps/htpar_cli-37cc94108e44be96.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/exec.rs

/root/repo/target/debug/deps/libhtpar_cli-37cc94108e44be96.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/exec.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/exec.rs:
