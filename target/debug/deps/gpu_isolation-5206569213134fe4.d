/root/repo/target/debug/deps/gpu_isolation-5206569213134fe4.d: examples/gpu_isolation.rs

/root/repo/target/debug/deps/libgpu_isolation-5206569213134fe4.rmeta: examples/gpu_isolation.rs

examples/gpu_isolation.rs:
