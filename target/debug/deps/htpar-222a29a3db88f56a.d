/root/repo/target/debug/deps/htpar-222a29a3db88f56a.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/htpar-222a29a3db88f56a: crates/cli/src/main.rs

crates/cli/src/main.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
