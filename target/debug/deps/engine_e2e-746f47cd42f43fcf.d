/root/repo/target/debug/deps/engine_e2e-746f47cd42f43fcf.d: tests/engine_e2e.rs

/root/repo/target/debug/deps/engine_e2e-746f47cd42f43fcf: tests/engine_e2e.rs

tests/engine_e2e.rs:
