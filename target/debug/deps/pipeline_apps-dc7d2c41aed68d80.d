/root/repo/target/debug/deps/pipeline_apps-dc7d2c41aed68d80.d: tests/pipeline_apps.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_apps-dc7d2c41aed68d80.rmeta: tests/pipeline_apps.rs Cargo.toml

tests/pipeline_apps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
