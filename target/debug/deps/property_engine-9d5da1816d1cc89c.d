/root/repo/target/debug/deps/property_engine-9d5da1816d1cc89c.d: tests/property_engine.rs

/root/repo/target/debug/deps/property_engine-9d5da1816d1cc89c: tests/property_engine.rs

tests/property_engine.rs:
