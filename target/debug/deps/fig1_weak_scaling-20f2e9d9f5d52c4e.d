/root/repo/target/debug/deps/fig1_weak_scaling-20f2e9d9f5d52c4e.d: crates/bench/src/bin/fig1_weak_scaling.rs

/root/repo/target/debug/deps/fig1_weak_scaling-20f2e9d9f5d52c4e: crates/bench/src/bin/fig1_weak_scaling.rs

crates/bench/src/bin/fig1_weak_scaling.rs:
