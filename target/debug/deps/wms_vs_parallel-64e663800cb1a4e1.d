/root/repo/target/debug/deps/wms_vs_parallel-64e663800cb1a4e1.d: tests/wms_vs_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libwms_vs_parallel-64e663800cb1a4e1.rmeta: tests/wms_vs_parallel.rs Cargo.toml

tests/wms_vs_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
