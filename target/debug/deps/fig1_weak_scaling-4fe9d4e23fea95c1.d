/root/repo/target/debug/deps/fig1_weak_scaling-4fe9d4e23fea95c1.d: crates/bench/src/bin/fig1_weak_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_weak_scaling-4fe9d4e23fea95c1.rmeta: crates/bench/src/bin/fig1_weak_scaling.rs Cargo.toml

crates/bench/src/bin/fig1_weak_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
