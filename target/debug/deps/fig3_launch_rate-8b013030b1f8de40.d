/root/repo/target/debug/deps/fig3_launch_rate-8b013030b1f8de40.d: crates/bench/src/bin/fig3_launch_rate.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_launch_rate-8b013030b1f8de40.rmeta: crates/bench/src/bin/fig3_launch_rate.rs Cargo.toml

crates/bench/src/bin/fig3_launch_rate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
