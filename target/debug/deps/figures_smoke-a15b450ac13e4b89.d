/root/repo/target/debug/deps/figures_smoke-a15b450ac13e4b89.d: tests/figures_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libfigures_smoke-a15b450ac13e4b89.rmeta: tests/figures_smoke.rs Cargo.toml

tests/figures_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
