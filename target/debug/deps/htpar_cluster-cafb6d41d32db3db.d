/root/repo/target/debug/deps/htpar_cluster-cafb6d41d32db3db.d: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs

/root/repo/target/debug/deps/libhtpar_cluster-cafb6d41d32db3db.rlib: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs

/root/repo/target/debug/deps/libhtpar_cluster-cafb6d41d32db3db.rmeta: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs

crates/cluster/src/lib.rs:
crates/cluster/src/des.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/launch.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/slurm.rs:
crates/cluster/src/weak_scaling.rs:
