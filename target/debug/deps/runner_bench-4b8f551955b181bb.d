/root/repo/target/debug/deps/runner_bench-4b8f551955b181bb.d: crates/bench/benches/runner_bench.rs Cargo.toml

/root/repo/target/debug/deps/librunner_bench-4b8f551955b181bb.rmeta: crates/bench/benches/runner_bench.rs Cargo.toml

crates/bench/benches/runner_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
