/root/repo/target/debug/deps/fetch_process-f3e91627478a2b7a.d: examples/fetch_process.rs

/root/repo/target/debug/deps/fetch_process-f3e91627478a2b7a: examples/fetch_process.rs

examples/fetch_process.rs:
