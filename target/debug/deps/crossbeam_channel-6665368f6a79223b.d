/root/repo/target/debug/deps/crossbeam_channel-6665368f6a79223b.d: vendor/crossbeam-channel/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_channel-6665368f6a79223b.rlib: vendor/crossbeam-channel/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_channel-6665368f6a79223b.rmeta: vendor/crossbeam-channel/src/lib.rs

vendor/crossbeam-channel/src/lib.rs:
