/root/repo/target/debug/deps/ablation_io_strategy-877b68f93b1502fa.d: crates/bench/src/bin/ablation_io_strategy.rs

/root/repo/target/debug/deps/ablation_io_strategy-877b68f93b1502fa: crates/bench/src/bin/ablation_io_strategy.rs

crates/bench/src/bin/ablation_io_strategy.rs:
