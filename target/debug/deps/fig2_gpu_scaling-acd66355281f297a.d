/root/repo/target/debug/deps/fig2_gpu_scaling-acd66355281f297a.d: crates/bench/src/bin/fig2_gpu_scaling.rs

/root/repo/target/debug/deps/libfig2_gpu_scaling-acd66355281f297a.rmeta: crates/bench/src/bin/fig2_gpu_scaling.rs

crates/bench/src/bin/fig2_gpu_scaling.rs:
