/root/repo/target/debug/deps/fig2_gpu_scaling-f40b982cc2f52c8c.d: crates/bench/src/bin/fig2_gpu_scaling.rs

/root/repo/target/debug/deps/fig2_gpu_scaling-f40b982cc2f52c8c: crates/bench/src/bin/fig2_gpu_scaling.rs

crates/bench/src/bin/fig2_gpu_scaling.rs:
