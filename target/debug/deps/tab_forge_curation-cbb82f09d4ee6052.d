/root/repo/target/debug/deps/tab_forge_curation-cbb82f09d4ee6052.d: crates/bench/src/bin/tab_forge_curation.rs

/root/repo/target/debug/deps/tab_forge_curation-cbb82f09d4ee6052: crates/bench/src/bin/tab_forge_curation.rs

crates/bench/src/bin/tab_forge_curation.rs:
