/root/repo/target/debug/deps/pipeline_apps-b6b64f0b8821923d.d: tests/pipeline_apps.rs

/root/repo/target/debug/deps/pipeline_apps-b6b64f0b8821923d: tests/pipeline_apps.rs

tests/pipeline_apps.rs:
