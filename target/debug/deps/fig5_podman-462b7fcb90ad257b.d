/root/repo/target/debug/deps/fig5_podman-462b7fcb90ad257b.d: crates/bench/src/bin/fig5_podman.rs

/root/repo/target/debug/deps/libfig5_podman-462b7fcb90ad257b.rmeta: crates/bench/src/bin/fig5_podman.rs

crates/bench/src/bin/fig5_podman.rs:
