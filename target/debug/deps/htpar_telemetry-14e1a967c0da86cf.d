/root/repo/target/debug/deps/htpar_telemetry-14e1a967c0da86cf.d: crates/telemetry/src/lib.rs crates/telemetry/src/bus.rs crates/telemetry/src/event.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sinks.rs

/root/repo/target/debug/deps/htpar_telemetry-14e1a967c0da86cf: crates/telemetry/src/lib.rs crates/telemetry/src/bus.rs crates/telemetry/src/event.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sinks.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/bus.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/sinks.rs:
