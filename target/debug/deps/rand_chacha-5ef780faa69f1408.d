/root/repo/target/debug/deps/rand_chacha-5ef780faa69f1408.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-5ef780faa69f1408.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
