/root/repo/target/debug/deps/htpar_integration_tests-57891e8e2aa18500.d: tests/lib.rs

/root/repo/target/debug/deps/libhtpar_integration_tests-57891e8e2aa18500.rlib: tests/lib.rs

/root/repo/target/debug/deps/libhtpar_integration_tests-57891e8e2aa18500.rmeta: tests/lib.rs

tests/lib.rs:
