/root/repo/target/debug/deps/fig1_weak_scaling-2bc8c2a94c7c08b0.d: crates/bench/src/bin/fig1_weak_scaling.rs

/root/repo/target/debug/deps/libfig1_weak_scaling-2bc8c2a94c7c08b0.rmeta: crates/bench/src/bin/fig1_weak_scaling.rs

crates/bench/src/bin/fig1_weak_scaling.rs:
