/root/repo/target/debug/deps/htpar_bench-3570c33f3a05d33c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_bench-3570c33f3a05d33c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
