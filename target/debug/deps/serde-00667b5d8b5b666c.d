/root/repo/target/debug/deps/serde-00667b5d8b5b666c.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-00667b5d8b5b666c.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
