/root/repo/target/debug/deps/serde_json-a82444c5c6f3aefa.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-a82444c5c6f3aefa.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-a82444c5c6f3aefa.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
