/root/repo/target/debug/deps/staged_pipeline-344cc29e898c8e8b.d: tests/staged_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libstaged_pipeline-344cc29e898c8e8b.rmeta: tests/staged_pipeline.rs Cargo.toml

tests/staged_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
