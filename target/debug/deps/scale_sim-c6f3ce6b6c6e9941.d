/root/repo/target/debug/deps/scale_sim-c6f3ce6b6c6e9941.d: tests/scale_sim.rs Cargo.toml

/root/repo/target/debug/deps/libscale_sim-c6f3ce6b6c6e9941.rmeta: tests/scale_sim.rs Cargo.toml

tests/scale_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
