/root/repo/target/debug/deps/htpar_integration_tests-5aa50fcf81316f6c.d: tests/lib.rs

/root/repo/target/debug/deps/libhtpar_integration_tests-5aa50fcf81316f6c.rmeta: tests/lib.rs

tests/lib.rs:
