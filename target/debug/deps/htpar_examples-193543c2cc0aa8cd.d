/root/repo/target/debug/deps/htpar_examples-193543c2cc0aa8cd.d: examples/lib.rs

/root/repo/target/debug/deps/libhtpar_examples-193543c2cc0aa8cd.rlib: examples/lib.rs

/root/repo/target/debug/deps/libhtpar_examples-193543c2cc0aa8cd.rmeta: examples/lib.rs

examples/lib.rs:
