/root/repo/target/debug/deps/robustness_seeds-9b4e33e20f4b8bee.d: crates/bench/src/bin/robustness_seeds.rs Cargo.toml

/root/repo/target/debug/deps/librobustness_seeds-9b4e33e20f4b8bee.rmeta: crates/bench/src/bin/robustness_seeds.rs Cargo.toml

crates/bench/src/bin/robustness_seeds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
