/root/repo/target/debug/deps/htpar_examples-434197e99ad80e0d.d: examples/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_examples-434197e99ad80e0d.rmeta: examples/lib.rs Cargo.toml

examples/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
