/root/repo/target/debug/deps/engine_e2e-8b3f86a39e823683.d: tests/engine_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libengine_e2e-8b3f86a39e823683.rmeta: tests/engine_e2e.rs Cargo.toml

tests/engine_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
