/root/repo/target/debug/deps/queue_bench-f3e246bdf0ebf27d.d: crates/bench/benches/queue_bench.rs Cargo.toml

/root/repo/target/debug/deps/libqueue_bench-f3e246bdf0ebf27d.rmeta: crates/bench/benches/queue_bench.rs Cargo.toml

crates/bench/benches/queue_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
