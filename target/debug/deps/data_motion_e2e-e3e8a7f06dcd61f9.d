/root/repo/target/debug/deps/data_motion_e2e-e3e8a7f06dcd61f9.d: tests/data_motion_e2e.rs

/root/repo/target/debug/deps/data_motion_e2e-e3e8a7f06dcd61f9: tests/data_motion_e2e.rs

tests/data_motion_e2e.rs:
