/root/repo/target/debug/deps/tab_srun_vs_parallel-acc55b15b34c0b9b.d: crates/bench/src/bin/tab_srun_vs_parallel.rs

/root/repo/target/debug/deps/libtab_srun_vs_parallel-acc55b15b34c0b9b.rmeta: crates/bench/src/bin/tab_srun_vs_parallel.rs

crates/bench/src/bin/tab_srun_vs_parallel.rs:
