/root/repo/target/debug/deps/data_motion-4c9a03aabb6db6b4.d: examples/data_motion.rs

/root/repo/target/debug/deps/libdata_motion-4c9a03aabb6db6b4.rmeta: examples/data_motion.rs

examples/data_motion.rs:
