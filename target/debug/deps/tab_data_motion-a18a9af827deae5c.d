/root/repo/target/debug/deps/tab_data_motion-a18a9af827deae5c.d: crates/bench/src/bin/tab_data_motion.rs

/root/repo/target/debug/deps/tab_data_motion-a18a9af827deae5c: crates/bench/src/bin/tab_data_motion.rs

crates/bench/src/bin/tab_data_motion.rs:
