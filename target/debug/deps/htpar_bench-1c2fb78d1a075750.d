/root/repo/target/debug/deps/htpar_bench-1c2fb78d1a075750.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/htpar_bench-1c2fb78d1a075750: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
