/root/repo/target/debug/deps/fetch_process-1a09f9f0c8455c6d.d: examples/fetch_process.rs Cargo.toml

/root/repo/target/debug/deps/libfetch_process-1a09f9f0c8455c6d.rmeta: examples/fetch_process.rs Cargo.toml

examples/fetch_process.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
