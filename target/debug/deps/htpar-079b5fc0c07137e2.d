/root/repo/target/debug/deps/htpar-079b5fc0c07137e2.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/htpar-079b5fc0c07137e2: crates/cli/src/main.rs

crates/cli/src/main.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
