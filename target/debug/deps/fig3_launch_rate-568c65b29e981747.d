/root/repo/target/debug/deps/fig3_launch_rate-568c65b29e981747.d: crates/bench/src/bin/fig3_launch_rate.rs

/root/repo/target/debug/deps/fig3_launch_rate-568c65b29e981747: crates/bench/src/bin/fig3_launch_rate.rs

crates/bench/src/bin/fig3_launch_rate.rs:
