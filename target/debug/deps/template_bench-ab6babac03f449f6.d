/root/repo/target/debug/deps/template_bench-ab6babac03f449f6.d: crates/bench/benches/template_bench.rs Cargo.toml

/root/repo/target/debug/deps/libtemplate_bench-ab6babac03f449f6.rmeta: crates/bench/benches/template_bench.rs Cargo.toml

crates/bench/benches/template_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
