/root/repo/target/debug/deps/htpar_storage-d8b66ce21b25de95.d: crates/storage/src/lib.rs crates/storage/src/dataset.rs crates/storage/src/flow.rs crates/storage/src/lustre.rs crates/storage/src/nvme.rs crates/storage/src/staging.rs crates/storage/src/stripe.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_storage-d8b66ce21b25de95.rmeta: crates/storage/src/lib.rs crates/storage/src/dataset.rs crates/storage/src/flow.rs crates/storage/src/lustre.rs crates/storage/src/nvme.rs crates/storage/src/staging.rs crates/storage/src/stripe.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/dataset.rs:
crates/storage/src/flow.rs:
crates/storage/src/lustre.rs:
crates/storage/src/nvme.rs:
crates/storage/src/staging.rs:
crates/storage/src/stripe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
