/root/repo/target/debug/deps/fig2_gpu_scaling-5dd2c84af0c2a144.d: crates/bench/src/bin/fig2_gpu_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_gpu_scaling-5dd2c84af0c2a144.rmeta: crates/bench/src/bin/fig2_gpu_scaling.rs Cargo.toml

crates/bench/src/bin/fig2_gpu_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
