/root/repo/target/debug/deps/htpar_workloads-f3d4a929825e775a.d: crates/workloads/src/lib.rs crates/workloads/src/celeritas.rs crates/workloads/src/darshan.rs crates/workloads/src/dedup.rs crates/workloads/src/forge.rs crates/workloads/src/goes.rs crates/workloads/src/wfbench.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_workloads-f3d4a929825e775a.rmeta: crates/workloads/src/lib.rs crates/workloads/src/celeritas.rs crates/workloads/src/darshan.rs crates/workloads/src/dedup.rs crates/workloads/src/forge.rs crates/workloads/src/goes.rs crates/workloads/src/wfbench.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/celeritas.rs:
crates/workloads/src/darshan.rs:
crates/workloads/src/dedup.rs:
crates/workloads/src/forge.rs:
crates/workloads/src/goes.rs:
crates/workloads/src/wfbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
