/root/repo/target/debug/deps/htpar_wms-dd915e70157cd936.d: crates/wms/src/lib.rs crates/wms/src/compare.rs crates/wms/src/engine.rs crates/wms/src/timeline.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_wms-dd915e70157cd936.rmeta: crates/wms/src/lib.rs crates/wms/src/compare.rs crates/wms/src/engine.rs crates/wms/src/timeline.rs Cargo.toml

crates/wms/src/lib.rs:
crates/wms/src/compare.rs:
crates/wms/src/engine.rs:
crates/wms/src/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
