/root/repo/target/debug/deps/tab_forge_curation-b01c68e9bf9a3719.d: crates/bench/src/bin/tab_forge_curation.rs Cargo.toml

/root/repo/target/debug/deps/libtab_forge_curation-b01c68e9bf9a3719.rmeta: crates/bench/src/bin/tab_forge_curation.rs Cargo.toml

crates/bench/src/bin/tab_forge_curation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
