/root/repo/target/debug/deps/figures_smoke-7b4fc36fb60daab7.d: tests/figures_smoke.rs

/root/repo/target/debug/deps/figures_smoke-7b4fc36fb60daab7: tests/figures_smoke.rs

tests/figures_smoke.rs:
