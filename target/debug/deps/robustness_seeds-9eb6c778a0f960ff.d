/root/repo/target/debug/deps/robustness_seeds-9eb6c778a0f960ff.d: crates/bench/src/bin/robustness_seeds.rs

/root/repo/target/debug/deps/robustness_seeds-9eb6c778a0f960ff: crates/bench/src/bin/robustness_seeds.rs

crates/bench/src/bin/robustness_seeds.rs:
