/root/repo/target/debug/deps/htpar_transfer-e45e6944e9fac169.d: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_transfer-e45e6944e9fac169.rmeta: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs Cargo.toml

crates/transfer/src/lib.rs:
crates/transfer/src/bwlimit.rs:
crates/transfer/src/dtn.rs:
crates/transfer/src/filelist.rs:
crates/transfer/src/rsyncd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
