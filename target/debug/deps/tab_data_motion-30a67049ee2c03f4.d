/root/repo/target/debug/deps/tab_data_motion-30a67049ee2c03f4.d: crates/bench/src/bin/tab_data_motion.rs

/root/repo/target/debug/deps/tab_data_motion-30a67049ee2c03f4: crates/bench/src/bin/tab_data_motion.rs

crates/bench/src/bin/tab_data_motion.rs:
