/root/repo/target/debug/deps/htpar_wms-1efde6499783fa2b.d: crates/wms/src/lib.rs crates/wms/src/compare.rs crates/wms/src/engine.rs crates/wms/src/timeline.rs

/root/repo/target/debug/deps/libhtpar_wms-1efde6499783fa2b.rmeta: crates/wms/src/lib.rs crates/wms/src/compare.rs crates/wms/src/engine.rs crates/wms/src/timeline.rs

crates/wms/src/lib.rs:
crates/wms/src/compare.rs:
crates/wms/src/engine.rs:
crates/wms/src/timeline.rs:
