/root/repo/target/debug/deps/data_motion-885807feff65210b.d: examples/data_motion.rs

/root/repo/target/debug/deps/data_motion-885807feff65210b: examples/data_motion.rs

examples/data_motion.rs:
