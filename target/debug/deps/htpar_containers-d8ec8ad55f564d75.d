/root/repo/target/debug/deps/htpar_containers-d8ec8ad55f564d75.d: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs

/root/repo/target/debug/deps/htpar_containers-d8ec8ad55f564d75: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs

crates/containers/src/lib.rs:
crates/containers/src/runtime.rs:
crates/containers/src/stress.rs:
