/root/repo/target/debug/deps/crossbeam_channel-351b2805d5a1af78.d: vendor/crossbeam-channel/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_channel-351b2805d5a1af78.rmeta: vendor/crossbeam-channel/src/lib.rs

vendor/crossbeam-channel/src/lib.rs:
