/root/repo/target/debug/deps/data_motion-15060bbf7d1c5d7e.d: examples/data_motion.rs Cargo.toml

/root/repo/target/debug/deps/libdata_motion-15060bbf7d1c5d7e.rmeta: examples/data_motion.rs Cargo.toml

examples/data_motion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
