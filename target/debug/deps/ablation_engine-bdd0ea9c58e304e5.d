/root/repo/target/debug/deps/ablation_engine-bdd0ea9c58e304e5.d: crates/bench/src/bin/ablation_engine.rs Cargo.toml

/root/repo/target/debug/deps/libablation_engine-bdd0ea9c58e304e5.rmeta: crates/bench/src/bin/ablation_engine.rs Cargo.toml

crates/bench/src/bin/ablation_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
