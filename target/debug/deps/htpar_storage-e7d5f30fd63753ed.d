/root/repo/target/debug/deps/htpar_storage-e7d5f30fd63753ed.d: crates/storage/src/lib.rs crates/storage/src/dataset.rs crates/storage/src/flow.rs crates/storage/src/lustre.rs crates/storage/src/nvme.rs crates/storage/src/staging.rs crates/storage/src/stripe.rs

/root/repo/target/debug/deps/libhtpar_storage-e7d5f30fd63753ed.rlib: crates/storage/src/lib.rs crates/storage/src/dataset.rs crates/storage/src/flow.rs crates/storage/src/lustre.rs crates/storage/src/nvme.rs crates/storage/src/staging.rs crates/storage/src/stripe.rs

/root/repo/target/debug/deps/libhtpar_storage-e7d5f30fd63753ed.rmeta: crates/storage/src/lib.rs crates/storage/src/dataset.rs crates/storage/src/flow.rs crates/storage/src/lustre.rs crates/storage/src/nvme.rs crates/storage/src/staging.rs crates/storage/src/stripe.rs

crates/storage/src/lib.rs:
crates/storage/src/dataset.rs:
crates/storage/src/flow.rs:
crates/storage/src/lustre.rs:
crates/storage/src/nvme.rs:
crates/storage/src/staging.rs:
crates/storage/src/stripe.rs:
