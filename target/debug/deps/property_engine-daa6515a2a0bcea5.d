/root/repo/target/debug/deps/property_engine-daa6515a2a0bcea5.d: tests/property_engine.rs

/root/repo/target/debug/deps/property_engine-daa6515a2a0bcea5: tests/property_engine.rs

tests/property_engine.rs:
