/root/repo/target/debug/deps/fetch_process-ed3e356b121fef9c.d: examples/fetch_process.rs Cargo.toml

/root/repo/target/debug/deps/libfetch_process-ed3e356b121fef9c.rmeta: examples/fetch_process.rs Cargo.toml

examples/fetch_process.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
