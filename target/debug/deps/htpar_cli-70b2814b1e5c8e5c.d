/root/repo/target/debug/deps/htpar_cli-70b2814b1e5c8e5c.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/exec.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_cli-70b2814b1e5c8e5c.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/exec.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
