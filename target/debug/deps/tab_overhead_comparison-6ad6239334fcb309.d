/root/repo/target/debug/deps/tab_overhead_comparison-6ad6239334fcb309.d: crates/bench/src/bin/tab_overhead_comparison.rs

/root/repo/target/debug/deps/libtab_overhead_comparison-6ad6239334fcb309.rmeta: crates/bench/src/bin/tab_overhead_comparison.rs

crates/bench/src/bin/tab_overhead_comparison.rs:
