/root/repo/target/debug/deps/htpar_bench-249efbad25f5b8a6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/htpar_bench-249efbad25f5b8a6: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
