/root/repo/target/debug/deps/fig4_shifter-31e67f5476f33f1a.d: crates/bench/src/bin/fig4_shifter.rs

/root/repo/target/debug/deps/fig4_shifter-31e67f5476f33f1a: crates/bench/src/bin/fig4_shifter.rs

crates/bench/src/bin/fig4_shifter.rs:
