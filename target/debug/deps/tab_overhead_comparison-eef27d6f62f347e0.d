/root/repo/target/debug/deps/tab_overhead_comparison-eef27d6f62f347e0.d: crates/bench/src/bin/tab_overhead_comparison.rs

/root/repo/target/debug/deps/tab_overhead_comparison-eef27d6f62f347e0: crates/bench/src/bin/tab_overhead_comparison.rs

crates/bench/src/bin/tab_overhead_comparison.rs:
