/root/repo/target/debug/deps/remote_cluster-d8275c408dc2b041.d: examples/remote_cluster.rs Cargo.toml

/root/repo/target/debug/deps/libremote_cluster-d8275c408dc2b041.rmeta: examples/remote_cluster.rs Cargo.toml

examples/remote_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
