/root/repo/target/debug/deps/htpar_bench-8ec3a162f75f06c6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhtpar_bench-8ec3a162f75f06c6.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhtpar_bench-8ec3a162f75f06c6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
