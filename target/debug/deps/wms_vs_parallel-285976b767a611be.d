/root/repo/target/debug/deps/wms_vs_parallel-285976b767a611be.d: tests/wms_vs_parallel.rs

/root/repo/target/debug/deps/wms_vs_parallel-285976b767a611be: tests/wms_vs_parallel.rs

tests/wms_vs_parallel.rs:
