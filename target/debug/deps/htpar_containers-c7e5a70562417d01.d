/root/repo/target/debug/deps/htpar_containers-c7e5a70562417d01.d: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs

/root/repo/target/debug/deps/libhtpar_containers-c7e5a70562417d01.rlib: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs

/root/repo/target/debug/deps/libhtpar_containers-c7e5a70562417d01.rmeta: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs

crates/containers/src/lib.rs:
crates/containers/src/runtime.rs:
crates/containers/src/stress.rs:
