/root/repo/target/debug/deps/htpar_transfer-35fe6daf0253b005.d: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs

/root/repo/target/debug/deps/htpar_transfer-35fe6daf0253b005: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs

crates/transfer/src/lib.rs:
crates/transfer/src/bwlimit.rs:
crates/transfer/src/dtn.rs:
crates/transfer/src/filelist.rs:
crates/transfer/src/rsyncd.rs:
