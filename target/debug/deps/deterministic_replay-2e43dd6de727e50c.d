/root/repo/target/debug/deps/deterministic_replay-2e43dd6de727e50c.d: crates/simkit/tests/deterministic_replay.rs Cargo.toml

/root/repo/target/debug/deps/libdeterministic_replay-2e43dd6de727e50c.rmeta: crates/simkit/tests/deterministic_replay.rs Cargo.toml

crates/simkit/tests/deterministic_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
