/root/repo/target/debug/deps/htpar_transfer-f08e42a0b950084e.d: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs

/root/repo/target/debug/deps/htpar_transfer-f08e42a0b950084e: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs

crates/transfer/src/lib.rs:
crates/transfer/src/bwlimit.rs:
crates/transfer/src/dtn.rs:
crates/transfer/src/filelist.rs:
crates/transfer/src/rsyncd.rs:
