/root/repo/target/debug/deps/serde_derive_stub-b2ae0360922da5a3.d: vendor/serde_derive_stub/src/lib.rs

/root/repo/target/debug/deps/libserde_derive_stub-b2ae0360922da5a3.so: vendor/serde_derive_stub/src/lib.rs

vendor/serde_derive_stub/src/lib.rs:
