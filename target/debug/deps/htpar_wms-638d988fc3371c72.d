/root/repo/target/debug/deps/htpar_wms-638d988fc3371c72.d: crates/wms/src/lib.rs crates/wms/src/compare.rs crates/wms/src/engine.rs crates/wms/src/timeline.rs

/root/repo/target/debug/deps/htpar_wms-638d988fc3371c72: crates/wms/src/lib.rs crates/wms/src/compare.rs crates/wms/src/engine.rs crates/wms/src/timeline.rs

crates/wms/src/lib.rs:
crates/wms/src/compare.rs:
crates/wms/src/engine.rs:
crates/wms/src/timeline.rs:
