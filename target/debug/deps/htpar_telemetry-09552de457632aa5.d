/root/repo/target/debug/deps/htpar_telemetry-09552de457632aa5.d: crates/telemetry/src/lib.rs crates/telemetry/src/bus.rs crates/telemetry/src/event.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sinks.rs

/root/repo/target/debug/deps/libhtpar_telemetry-09552de457632aa5.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/bus.rs crates/telemetry/src/event.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sinks.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/bus.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/sinks.rs:
