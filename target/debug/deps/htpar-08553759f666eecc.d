/root/repo/target/debug/deps/htpar-08553759f666eecc.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/htpar-08553759f666eecc: crates/cli/src/main.rs

crates/cli/src/main.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
