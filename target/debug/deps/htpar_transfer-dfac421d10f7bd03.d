/root/repo/target/debug/deps/htpar_transfer-dfac421d10f7bd03.d: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs

/root/repo/target/debug/deps/libhtpar_transfer-dfac421d10f7bd03.rlib: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs

/root/repo/target/debug/deps/libhtpar_transfer-dfac421d10f7bd03.rmeta: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs

crates/transfer/src/lib.rs:
crates/transfer/src/bwlimit.rs:
crates/transfer/src/dtn.rs:
crates/transfer/src/filelist.rs:
crates/transfer/src/rsyncd.rs:
