/root/repo/target/debug/deps/fig5_podman-4cc31e39cc8f77c6.d: crates/bench/src/bin/fig5_podman.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_podman-4cc31e39cc8f77c6.rmeta: crates/bench/src/bin/fig5_podman.rs Cargo.toml

crates/bench/src/bin/fig5_podman.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
