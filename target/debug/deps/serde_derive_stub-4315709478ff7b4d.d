/root/repo/target/debug/deps/serde_derive_stub-4315709478ff7b4d.d: vendor/serde_derive_stub/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive_stub-4315709478ff7b4d.rmeta: vendor/serde_derive_stub/src/lib.rs Cargo.toml

vendor/serde_derive_stub/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
