/root/repo/target/debug/deps/tab_darshan_pipeline-9c8ac2f2fee8eb9a.d: crates/bench/src/bin/tab_darshan_pipeline.rs

/root/repo/target/debug/deps/tab_darshan_pipeline-9c8ac2f2fee8eb9a: crates/bench/src/bin/tab_darshan_pipeline.rs

crates/bench/src/bin/tab_darshan_pipeline.rs:
