/root/repo/target/debug/deps/tab_overhead_comparison-1003b1badefb103a.d: crates/bench/src/bin/tab_overhead_comparison.rs

/root/repo/target/debug/deps/tab_overhead_comparison-1003b1badefb103a: crates/bench/src/bin/tab_overhead_comparison.rs

crates/bench/src/bin/tab_overhead_comparison.rs:
