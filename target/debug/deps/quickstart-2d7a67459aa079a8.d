/root/repo/target/debug/deps/quickstart-2d7a67459aa079a8.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-2d7a67459aa079a8.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
