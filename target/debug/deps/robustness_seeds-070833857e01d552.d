/root/repo/target/debug/deps/robustness_seeds-070833857e01d552.d: crates/bench/src/bin/robustness_seeds.rs

/root/repo/target/debug/deps/robustness_seeds-070833857e01d552: crates/bench/src/bin/robustness_seeds.rs

crates/bench/src/bin/robustness_seeds.rs:
