/root/repo/target/debug/deps/tab_overhead_comparison-87f2bd0df260e37b.d: crates/bench/src/bin/tab_overhead_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libtab_overhead_comparison-87f2bd0df260e37b.rmeta: crates/bench/src/bin/tab_overhead_comparison.rs Cargo.toml

crates/bench/src/bin/tab_overhead_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
