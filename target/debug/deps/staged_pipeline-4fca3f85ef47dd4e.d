/root/repo/target/debug/deps/staged_pipeline-4fca3f85ef47dd4e.d: tests/staged_pipeline.rs

/root/repo/target/debug/deps/staged_pipeline-4fca3f85ef47dd4e: tests/staged_pipeline.rs

tests/staged_pipeline.rs:
