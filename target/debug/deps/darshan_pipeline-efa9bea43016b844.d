/root/repo/target/debug/deps/darshan_pipeline-efa9bea43016b844.d: examples/darshan_pipeline.rs

/root/repo/target/debug/deps/libdarshan_pipeline-efa9bea43016b844.rmeta: examples/darshan_pipeline.rs

examples/darshan_pipeline.rs:
