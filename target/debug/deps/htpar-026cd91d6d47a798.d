/root/repo/target/debug/deps/htpar-026cd91d6d47a798.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libhtpar-026cd91d6d47a798.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
