/root/repo/target/debug/deps/serde_derive_stub-5db4f8bb67f613db.d: vendor/serde_derive_stub/src/lib.rs

/root/repo/target/debug/deps/serde_derive_stub-5db4f8bb67f613db: vendor/serde_derive_stub/src/lib.rs

vendor/serde_derive_stub/src/lib.rs:
