/root/repo/target/debug/deps/fig3_launch_rate-ca5572f53f1617d9.d: crates/bench/src/bin/fig3_launch_rate.rs

/root/repo/target/debug/deps/libfig3_launch_rate-ca5572f53f1617d9.rmeta: crates/bench/src/bin/fig3_launch_rate.rs

crates/bench/src/bin/fig3_launch_rate.rs:
