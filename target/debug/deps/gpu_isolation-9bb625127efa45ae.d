/root/repo/target/debug/deps/gpu_isolation-9bb625127efa45ae.d: examples/gpu_isolation.rs

/root/repo/target/debug/deps/gpu_isolation-9bb625127efa45ae: examples/gpu_isolation.rs

examples/gpu_isolation.rs:
