/root/repo/target/debug/deps/htpar_cli-574a18b805056f18.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/exec.rs

/root/repo/target/debug/deps/htpar_cli-574a18b805056f18: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/exec.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/exec.rs:
