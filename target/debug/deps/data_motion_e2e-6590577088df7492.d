/root/repo/target/debug/deps/data_motion_e2e-6590577088df7492.d: tests/data_motion_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libdata_motion_e2e-6590577088df7492.rmeta: tests/data_motion_e2e.rs Cargo.toml

tests/data_motion_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
