/root/repo/target/debug/deps/htpar_containers-1dcd9c83a74a3766.d: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs

/root/repo/target/debug/deps/libhtpar_containers-1dcd9c83a74a3766.rlib: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs

/root/repo/target/debug/deps/libhtpar_containers-1dcd9c83a74a3766.rmeta: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs

crates/containers/src/lib.rs:
crates/containers/src/runtime.rs:
crates/containers/src/stress.rs:
