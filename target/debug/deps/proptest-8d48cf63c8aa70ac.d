/root/repo/target/debug/deps/proptest-8d48cf63c8aa70ac.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-8d48cf63c8aa70ac.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
