/root/repo/target/debug/deps/fig4_shifter-224c5696c4af7b32.d: crates/bench/src/bin/fig4_shifter.rs

/root/repo/target/debug/deps/fig4_shifter-224c5696c4af7b32: crates/bench/src/bin/fig4_shifter.rs

crates/bench/src/bin/fig4_shifter.rs:
