/root/repo/target/debug/deps/darshan_pipeline-2dbfc3fbc9dab131.d: examples/darshan_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libdarshan_pipeline-2dbfc3fbc9dab131.rmeta: examples/darshan_pipeline.rs Cargo.toml

examples/darshan_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
