/root/repo/target/debug/deps/tab_srun_vs_parallel-cb52260dbfd06bbb.d: crates/bench/src/bin/tab_srun_vs_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libtab_srun_vs_parallel-cb52260dbfd06bbb.rmeta: crates/bench/src/bin/tab_srun_vs_parallel.rs Cargo.toml

crates/bench/src/bin/tab_srun_vs_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
