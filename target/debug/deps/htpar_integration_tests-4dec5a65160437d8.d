/root/repo/target/debug/deps/htpar_integration_tests-4dec5a65160437d8.d: tests/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_integration_tests-4dec5a65160437d8.rmeta: tests/lib.rs Cargo.toml

tests/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
