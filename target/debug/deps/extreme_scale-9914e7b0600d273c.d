/root/repo/target/debug/deps/extreme_scale-9914e7b0600d273c.d: examples/extreme_scale.rs

/root/repo/target/debug/deps/extreme_scale-9914e7b0600d273c: examples/extreme_scale.rs

examples/extreme_scale.rs:
