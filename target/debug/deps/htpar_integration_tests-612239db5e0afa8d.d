/root/repo/target/debug/deps/htpar_integration_tests-612239db5e0afa8d.d: tests/lib.rs

/root/repo/target/debug/deps/htpar_integration_tests-612239db5e0afa8d: tests/lib.rs

tests/lib.rs:
