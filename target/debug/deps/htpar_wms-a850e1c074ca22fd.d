/root/repo/target/debug/deps/htpar_wms-a850e1c074ca22fd.d: crates/wms/src/lib.rs crates/wms/src/compare.rs crates/wms/src/engine.rs crates/wms/src/timeline.rs

/root/repo/target/debug/deps/libhtpar_wms-a850e1c074ca22fd.rlib: crates/wms/src/lib.rs crates/wms/src/compare.rs crates/wms/src/engine.rs crates/wms/src/timeline.rs

/root/repo/target/debug/deps/libhtpar_wms-a850e1c074ca22fd.rmeta: crates/wms/src/lib.rs crates/wms/src/compare.rs crates/wms/src/engine.rs crates/wms/src/timeline.rs

crates/wms/src/lib.rs:
crates/wms/src/compare.rs:
crates/wms/src/engine.rs:
crates/wms/src/timeline.rs:
