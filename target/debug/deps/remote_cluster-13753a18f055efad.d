/root/repo/target/debug/deps/remote_cluster-13753a18f055efad.d: examples/remote_cluster.rs Cargo.toml

/root/repo/target/debug/deps/libremote_cluster-13753a18f055efad.rmeta: examples/remote_cluster.rs Cargo.toml

examples/remote_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
