/root/repo/target/debug/deps/htpar_transfer-e31f9160c7780cd2.d: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs

/root/repo/target/debug/deps/libhtpar_transfer-e31f9160c7780cd2.rlib: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs

/root/repo/target/debug/deps/libhtpar_transfer-e31f9160c7780cd2.rmeta: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs

crates/transfer/src/lib.rs:
crates/transfer/src/bwlimit.rs:
crates/transfer/src/dtn.rs:
crates/transfer/src/filelist.rs:
crates/transfer/src/rsyncd.rs:
