/root/repo/target/debug/deps/fig1_weak_scaling-032d6186058d052f.d: crates/bench/src/bin/fig1_weak_scaling.rs

/root/repo/target/debug/deps/fig1_weak_scaling-032d6186058d052f: crates/bench/src/bin/fig1_weak_scaling.rs

crates/bench/src/bin/fig1_weak_scaling.rs:
