/root/repo/target/debug/deps/tab_data_motion-91ed774a407688d8.d: crates/bench/src/bin/tab_data_motion.rs

/root/repo/target/debug/deps/tab_data_motion-91ed774a407688d8: crates/bench/src/bin/tab_data_motion.rs

crates/bench/src/bin/tab_data_motion.rs:
