/root/repo/target/debug/deps/tab_forge_curation-bf5eaf57a48a6d14.d: crates/bench/src/bin/tab_forge_curation.rs

/root/repo/target/debug/deps/tab_forge_curation-bf5eaf57a48a6d14: crates/bench/src/bin/tab_forge_curation.rs

crates/bench/src/bin/tab_forge_curation.rs:
