/root/repo/target/debug/deps/fetch_process-05075d9418754caf.d: examples/fetch_process.rs

/root/repo/target/debug/deps/libfetch_process-05075d9418754caf.rmeta: examples/fetch_process.rs

examples/fetch_process.rs:
