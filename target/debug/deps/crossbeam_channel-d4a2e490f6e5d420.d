/root/repo/target/debug/deps/crossbeam_channel-d4a2e490f6e5d420.d: vendor/crossbeam-channel/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam_channel-d4a2e490f6e5d420.rmeta: vendor/crossbeam-channel/src/lib.rs Cargo.toml

vendor/crossbeam-channel/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
