/root/repo/target/debug/deps/cli_e2e-00692d55547eefe7.d: crates/cli/tests/cli_e2e.rs

/root/repo/target/debug/deps/cli_e2e-00692d55547eefe7: crates/cli/tests/cli_e2e.rs

crates/cli/tests/cli_e2e.rs:

# env-dep:CARGO_BIN_EXE_htpar=/root/repo/target/debug/htpar
