/root/repo/target/debug/deps/tab_srun_vs_parallel-37b9a76d68cd9a8c.d: crates/bench/src/bin/tab_srun_vs_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libtab_srun_vs_parallel-37b9a76d68cd9a8c.rmeta: crates/bench/src/bin/tab_srun_vs_parallel.rs Cargo.toml

crates/bench/src/bin/tab_srun_vs_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
