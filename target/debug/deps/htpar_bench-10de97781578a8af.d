/root/repo/target/debug/deps/htpar_bench-10de97781578a8af.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhtpar_bench-10de97781578a8af.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhtpar_bench-10de97781578a8af.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
