/root/repo/target/debug/deps/tab_darshan_pipeline-3509bf9af7daacd8.d: crates/bench/src/bin/tab_darshan_pipeline.rs

/root/repo/target/debug/deps/tab_darshan_pipeline-3509bf9af7daacd8: crates/bench/src/bin/tab_darshan_pipeline.rs

crates/bench/src/bin/tab_darshan_pipeline.rs:
