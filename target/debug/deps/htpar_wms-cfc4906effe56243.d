/root/repo/target/debug/deps/htpar_wms-cfc4906effe56243.d: crates/wms/src/lib.rs crates/wms/src/compare.rs crates/wms/src/engine.rs crates/wms/src/timeline.rs

/root/repo/target/debug/deps/libhtpar_wms-cfc4906effe56243.rlib: crates/wms/src/lib.rs crates/wms/src/compare.rs crates/wms/src/engine.rs crates/wms/src/timeline.rs

/root/repo/target/debug/deps/libhtpar_wms-cfc4906effe56243.rmeta: crates/wms/src/lib.rs crates/wms/src/compare.rs crates/wms/src/engine.rs crates/wms/src/timeline.rs

crates/wms/src/lib.rs:
crates/wms/src/compare.rs:
crates/wms/src/engine.rs:
crates/wms/src/timeline.rs:
