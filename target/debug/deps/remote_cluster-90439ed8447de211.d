/root/repo/target/debug/deps/remote_cluster-90439ed8447de211.d: examples/remote_cluster.rs

/root/repo/target/debug/deps/remote_cluster-90439ed8447de211: examples/remote_cluster.rs

examples/remote_cluster.rs:
