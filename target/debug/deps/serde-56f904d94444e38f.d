/root/repo/target/debug/deps/serde-56f904d94444e38f.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-56f904d94444e38f: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
