/root/repo/target/debug/deps/figures_smoke-ec1a062103d86219.d: tests/figures_smoke.rs

/root/repo/target/debug/deps/figures_smoke-ec1a062103d86219: tests/figures_smoke.rs

tests/figures_smoke.rs:
