/root/repo/target/debug/deps/fig2_gpu_scaling-e3980f0cde15b237.d: crates/bench/src/bin/fig2_gpu_scaling.rs

/root/repo/target/debug/deps/fig2_gpu_scaling-e3980f0cde15b237: crates/bench/src/bin/fig2_gpu_scaling.rs

crates/bench/src/bin/fig2_gpu_scaling.rs:
