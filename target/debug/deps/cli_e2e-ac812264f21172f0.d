/root/repo/target/debug/deps/cli_e2e-ac812264f21172f0.d: crates/cli/tests/cli_e2e.rs

/root/repo/target/debug/deps/cli_e2e-ac812264f21172f0: crates/cli/tests/cli_e2e.rs

crates/cli/tests/cli_e2e.rs:

# env-dep:CARGO_BIN_EXE_htpar=/root/repo/target/debug/htpar
