/root/repo/target/debug/deps/htpar_bench-e7eddd65e3129d33.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhtpar_bench-e7eddd65e3129d33.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
