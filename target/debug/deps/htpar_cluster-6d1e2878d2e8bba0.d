/root/repo/target/debug/deps/htpar_cluster-6d1e2878d2e8bba0.d: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs

/root/repo/target/debug/deps/htpar_cluster-6d1e2878d2e8bba0: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs

crates/cluster/src/lib.rs:
crates/cluster/src/des.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/launch.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/slurm.rs:
crates/cluster/src/weak_scaling.rs:
