/root/repo/target/debug/deps/fig4_shifter-dcef774108ea29ee.d: crates/bench/src/bin/fig4_shifter.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_shifter-dcef774108ea29ee.rmeta: crates/bench/src/bin/fig4_shifter.rs Cargo.toml

crates/bench/src/bin/fig4_shifter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
