/root/repo/target/debug/deps/quickstart-fe7bd90cb85cf71b.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-fe7bd90cb85cf71b.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
