/root/repo/target/debug/deps/engine_e2e-90a8caf724b256a5.d: tests/engine_e2e.rs

/root/repo/target/debug/deps/engine_e2e-90a8caf724b256a5: tests/engine_e2e.rs

tests/engine_e2e.rs:
