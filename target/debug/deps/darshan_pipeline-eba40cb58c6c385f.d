/root/repo/target/debug/deps/darshan_pipeline-eba40cb58c6c385f.d: examples/darshan_pipeline.rs

/root/repo/target/debug/deps/darshan_pipeline-eba40cb58c6c385f: examples/darshan_pipeline.rs

examples/darshan_pipeline.rs:
