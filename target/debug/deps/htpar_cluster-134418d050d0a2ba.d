/root/repo/target/debug/deps/htpar_cluster-134418d050d0a2ba.d: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs

/root/repo/target/debug/deps/libhtpar_cluster-134418d050d0a2ba.rmeta: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs

crates/cluster/src/lib.rs:
crates/cluster/src/des.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/launch.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/slurm.rs:
crates/cluster/src/weak_scaling.rs:
