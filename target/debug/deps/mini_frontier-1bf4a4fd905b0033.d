/root/repo/target/debug/deps/mini_frontier-1bf4a4fd905b0033.d: tests/mini_frontier.rs Cargo.toml

/root/repo/target/debug/deps/libmini_frontier-1bf4a4fd905b0033.rmeta: tests/mini_frontier.rs Cargo.toml

tests/mini_frontier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
