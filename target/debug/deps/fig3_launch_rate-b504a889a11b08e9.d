/root/repo/target/debug/deps/fig3_launch_rate-b504a889a11b08e9.d: crates/bench/src/bin/fig3_launch_rate.rs

/root/repo/target/debug/deps/fig3_launch_rate-b504a889a11b08e9: crates/bench/src/bin/fig3_launch_rate.rs

crates/bench/src/bin/fig3_launch_rate.rs:
