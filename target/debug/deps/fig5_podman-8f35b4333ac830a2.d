/root/repo/target/debug/deps/fig5_podman-8f35b4333ac830a2.d: crates/bench/src/bin/fig5_podman.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_podman-8f35b4333ac830a2.rmeta: crates/bench/src/bin/fig5_podman.rs Cargo.toml

crates/bench/src/bin/fig5_podman.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
