/root/repo/target/debug/deps/scale_sim-d4f89baae893fdd6.d: tests/scale_sim.rs

/root/repo/target/debug/deps/scale_sim-d4f89baae893fdd6: tests/scale_sim.rs

tests/scale_sim.rs:
