/root/repo/target/debug/deps/remote_cluster-a9f20080114cc280.d: examples/remote_cluster.rs

/root/repo/target/debug/deps/libremote_cluster-a9f20080114cc280.rmeta: examples/remote_cluster.rs

examples/remote_cluster.rs:
