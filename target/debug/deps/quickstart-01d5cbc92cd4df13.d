/root/repo/target/debug/deps/quickstart-01d5cbc92cd4df13.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-01d5cbc92cd4df13: examples/quickstart.rs

examples/quickstart.rs:
