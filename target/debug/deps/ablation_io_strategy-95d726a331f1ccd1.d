/root/repo/target/debug/deps/ablation_io_strategy-95d726a331f1ccd1.d: crates/bench/src/bin/ablation_io_strategy.rs

/root/repo/target/debug/deps/libablation_io_strategy-95d726a331f1ccd1.rmeta: crates/bench/src/bin/ablation_io_strategy.rs

crates/bench/src/bin/ablation_io_strategy.rs:
