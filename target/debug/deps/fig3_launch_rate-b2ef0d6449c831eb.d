/root/repo/target/debug/deps/fig3_launch_rate-b2ef0d6449c831eb.d: crates/bench/src/bin/fig3_launch_rate.rs

/root/repo/target/debug/deps/fig3_launch_rate-b2ef0d6449c831eb: crates/bench/src/bin/fig3_launch_rate.rs

crates/bench/src/bin/fig3_launch_rate.rs:
