/root/repo/target/debug/deps/tab_darshan_pipeline-aae3016b4bfd1a45.d: crates/bench/src/bin/tab_darshan_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libtab_darshan_pipeline-aae3016b4bfd1a45.rmeta: crates/bench/src/bin/tab_darshan_pipeline.rs Cargo.toml

crates/bench/src/bin/tab_darshan_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
