/root/repo/target/debug/deps/tab_darshan_pipeline-49e3c586a6ac8cb7.d: crates/bench/src/bin/tab_darshan_pipeline.rs

/root/repo/target/debug/deps/libtab_darshan_pipeline-49e3c586a6ac8cb7.rmeta: crates/bench/src/bin/tab_darshan_pipeline.rs

crates/bench/src/bin/tab_darshan_pipeline.rs:
