/root/repo/target/debug/deps/tab_srun_vs_parallel-f5d8c47334c5c7d9.d: crates/bench/src/bin/tab_srun_vs_parallel.rs

/root/repo/target/debug/deps/tab_srun_vs_parallel-f5d8c47334c5c7d9: crates/bench/src/bin/tab_srun_vs_parallel.rs

crates/bench/src/bin/tab_srun_vs_parallel.rs:
