/root/repo/target/debug/deps/extreme_scale-a7e745414ab0d0b0.d: examples/extreme_scale.rs Cargo.toml

/root/repo/target/debug/deps/libextreme_scale-a7e745414ab0d0b0.rmeta: examples/extreme_scale.rs Cargo.toml

examples/extreme_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
