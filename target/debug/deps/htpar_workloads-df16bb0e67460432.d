/root/repo/target/debug/deps/htpar_workloads-df16bb0e67460432.d: crates/workloads/src/lib.rs crates/workloads/src/celeritas.rs crates/workloads/src/darshan.rs crates/workloads/src/dedup.rs crates/workloads/src/forge.rs crates/workloads/src/goes.rs crates/workloads/src/wfbench.rs

/root/repo/target/debug/deps/htpar_workloads-df16bb0e67460432: crates/workloads/src/lib.rs crates/workloads/src/celeritas.rs crates/workloads/src/darshan.rs crates/workloads/src/dedup.rs crates/workloads/src/forge.rs crates/workloads/src/goes.rs crates/workloads/src/wfbench.rs

crates/workloads/src/lib.rs:
crates/workloads/src/celeritas.rs:
crates/workloads/src/darshan.rs:
crates/workloads/src/dedup.rs:
crates/workloads/src/forge.rs:
crates/workloads/src/goes.rs:
crates/workloads/src/wfbench.rs:
