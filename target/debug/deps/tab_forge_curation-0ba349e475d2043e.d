/root/repo/target/debug/deps/tab_forge_curation-0ba349e475d2043e.d: crates/bench/src/bin/tab_forge_curation.rs

/root/repo/target/debug/deps/tab_forge_curation-0ba349e475d2043e: crates/bench/src/bin/tab_forge_curation.rs

crates/bench/src/bin/tab_forge_curation.rs:
