/root/repo/target/debug/deps/htpar_cli-f7f15af323d7e551.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/exec.rs

/root/repo/target/debug/deps/libhtpar_cli-f7f15af323d7e551.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/exec.rs

/root/repo/target/debug/deps/libhtpar_cli-f7f15af323d7e551.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/exec.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/exec.rs:
