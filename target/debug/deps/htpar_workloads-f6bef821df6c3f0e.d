/root/repo/target/debug/deps/htpar_workloads-f6bef821df6c3f0e.d: crates/workloads/src/lib.rs crates/workloads/src/celeritas.rs crates/workloads/src/darshan.rs crates/workloads/src/dedup.rs crates/workloads/src/forge.rs crates/workloads/src/goes.rs crates/workloads/src/wfbench.rs

/root/repo/target/debug/deps/libhtpar_workloads-f6bef821df6c3f0e.rlib: crates/workloads/src/lib.rs crates/workloads/src/celeritas.rs crates/workloads/src/darshan.rs crates/workloads/src/dedup.rs crates/workloads/src/forge.rs crates/workloads/src/goes.rs crates/workloads/src/wfbench.rs

/root/repo/target/debug/deps/libhtpar_workloads-f6bef821df6c3f0e.rmeta: crates/workloads/src/lib.rs crates/workloads/src/celeritas.rs crates/workloads/src/darshan.rs crates/workloads/src/dedup.rs crates/workloads/src/forge.rs crates/workloads/src/goes.rs crates/workloads/src/wfbench.rs

crates/workloads/src/lib.rs:
crates/workloads/src/celeritas.rs:
crates/workloads/src/darshan.rs:
crates/workloads/src/dedup.rs:
crates/workloads/src/forge.rs:
crates/workloads/src/goes.rs:
crates/workloads/src/wfbench.rs:
