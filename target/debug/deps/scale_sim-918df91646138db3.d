/root/repo/target/debug/deps/scale_sim-918df91646138db3.d: tests/scale_sim.rs

/root/repo/target/debug/deps/scale_sim-918df91646138db3: tests/scale_sim.rs

tests/scale_sim.rs:
