/root/repo/target/debug/deps/htpar_examples-6ce018060d8720b8.d: examples/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_examples-6ce018060d8720b8.rmeta: examples/lib.rs Cargo.toml

examples/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
