/root/repo/target/debug/deps/htpar_workloads-1ef03572e7c34a29.d: crates/workloads/src/lib.rs crates/workloads/src/celeritas.rs crates/workloads/src/darshan.rs crates/workloads/src/dedup.rs crates/workloads/src/forge.rs crates/workloads/src/goes.rs crates/workloads/src/wfbench.rs

/root/repo/target/debug/deps/libhtpar_workloads-1ef03572e7c34a29.rlib: crates/workloads/src/lib.rs crates/workloads/src/celeritas.rs crates/workloads/src/darshan.rs crates/workloads/src/dedup.rs crates/workloads/src/forge.rs crates/workloads/src/goes.rs crates/workloads/src/wfbench.rs

/root/repo/target/debug/deps/libhtpar_workloads-1ef03572e7c34a29.rmeta: crates/workloads/src/lib.rs crates/workloads/src/celeritas.rs crates/workloads/src/darshan.rs crates/workloads/src/dedup.rs crates/workloads/src/forge.rs crates/workloads/src/goes.rs crates/workloads/src/wfbench.rs

crates/workloads/src/lib.rs:
crates/workloads/src/celeritas.rs:
crates/workloads/src/darshan.rs:
crates/workloads/src/dedup.rs:
crates/workloads/src/forge.rs:
crates/workloads/src/goes.rs:
crates/workloads/src/wfbench.rs:
