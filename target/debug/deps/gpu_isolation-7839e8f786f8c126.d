/root/repo/target/debug/deps/gpu_isolation-7839e8f786f8c126.d: examples/gpu_isolation.rs

/root/repo/target/debug/deps/gpu_isolation-7839e8f786f8c126: examples/gpu_isolation.rs

examples/gpu_isolation.rs:
