/root/repo/target/debug/deps/mini_frontier-21007fb9f641a184.d: tests/mini_frontier.rs

/root/repo/target/debug/deps/mini_frontier-21007fb9f641a184: tests/mini_frontier.rs

tests/mini_frontier.rs:
