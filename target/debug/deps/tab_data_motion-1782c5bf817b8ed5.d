/root/repo/target/debug/deps/tab_data_motion-1782c5bf817b8ed5.d: crates/bench/src/bin/tab_data_motion.rs

/root/repo/target/debug/deps/libtab_data_motion-1782c5bf817b8ed5.rmeta: crates/bench/src/bin/tab_data_motion.rs

crates/bench/src/bin/tab_data_motion.rs:
