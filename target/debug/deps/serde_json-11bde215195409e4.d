/root/repo/target/debug/deps/serde_json-11bde215195409e4.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-11bde215195409e4: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
