/root/repo/target/debug/deps/htpar_containers-60e8db97c78aee9b.d: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs

/root/repo/target/debug/deps/libhtpar_containers-60e8db97c78aee9b.rmeta: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs

crates/containers/src/lib.rs:
crates/containers/src/runtime.rs:
crates/containers/src/stress.rs:
