/root/repo/target/debug/deps/htpar_simkit-89b38594ca5045c3.d: crates/simkit/src/lib.rs crates/simkit/src/dist.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/htpar_simkit-89b38594ca5045c3: crates/simkit/src/lib.rs crates/simkit/src/dist.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/dist.rs:
crates/simkit/src/engine.rs:
crates/simkit/src/event.rs:
crates/simkit/src/resource.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
