/root/repo/target/debug/deps/robustness_seeds-58bd64a6571e76a0.d: crates/bench/src/bin/robustness_seeds.rs

/root/repo/target/debug/deps/librobustness_seeds-58bd64a6571e76a0.rmeta: crates/bench/src/bin/robustness_seeds.rs

crates/bench/src/bin/robustness_seeds.rs:
