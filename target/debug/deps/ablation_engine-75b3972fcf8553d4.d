/root/repo/target/debug/deps/ablation_engine-75b3972fcf8553d4.d: crates/bench/src/bin/ablation_engine.rs

/root/repo/target/debug/deps/ablation_engine-75b3972fcf8553d4: crates/bench/src/bin/ablation_engine.rs

crates/bench/src/bin/ablation_engine.rs:
