/root/repo/target/debug/deps/rsync_bench-3052f0283cfa1132.d: crates/bench/benches/rsync_bench.rs Cargo.toml

/root/repo/target/debug/deps/librsync_bench-3052f0283cfa1132.rmeta: crates/bench/benches/rsync_bench.rs Cargo.toml

crates/bench/benches/rsync_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
