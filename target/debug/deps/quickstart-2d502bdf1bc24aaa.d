/root/repo/target/debug/deps/quickstart-2d502bdf1bc24aaa.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-2d502bdf1bc24aaa: examples/quickstart.rs

examples/quickstart.rs:
