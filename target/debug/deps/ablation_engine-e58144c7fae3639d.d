/root/repo/target/debug/deps/ablation_engine-e58144c7fae3639d.d: crates/bench/src/bin/ablation_engine.rs

/root/repo/target/debug/deps/ablation_engine-e58144c7fae3639d: crates/bench/src/bin/ablation_engine.rs

crates/bench/src/bin/ablation_engine.rs:
