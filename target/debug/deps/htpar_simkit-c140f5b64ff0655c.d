/root/repo/target/debug/deps/htpar_simkit-c140f5b64ff0655c.d: crates/simkit/src/lib.rs crates/simkit/src/dist.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/libhtpar_simkit-c140f5b64ff0655c.rlib: crates/simkit/src/lib.rs crates/simkit/src/dist.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/libhtpar_simkit-c140f5b64ff0655c.rmeta: crates/simkit/src/lib.rs crates/simkit/src/dist.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/dist.rs:
crates/simkit/src/engine.rs:
crates/simkit/src/event.rs:
crates/simkit/src/resource.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
