/root/repo/target/debug/deps/htpar_examples-9e987238e3a25df0.d: examples/lib.rs

/root/repo/target/debug/deps/libhtpar_examples-9e987238e3a25df0.rmeta: examples/lib.rs

examples/lib.rs:
