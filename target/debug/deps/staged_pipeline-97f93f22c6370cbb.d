/root/repo/target/debug/deps/staged_pipeline-97f93f22c6370cbb.d: tests/staged_pipeline.rs

/root/repo/target/debug/deps/staged_pipeline-97f93f22c6370cbb: tests/staged_pipeline.rs

tests/staged_pipeline.rs:
