/root/repo/target/debug/deps/chaos_resilience-1753c6803cb96399.d: tests/chaos_resilience.rs

/root/repo/target/debug/deps/chaos_resilience-1753c6803cb96399: tests/chaos_resilience.rs

tests/chaos_resilience.rs:
