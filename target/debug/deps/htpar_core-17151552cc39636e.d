/root/repo/target/debug/deps/htpar_core-17151552cc39636e.d: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/chaos.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/gate.rs crates/core/src/halt.rs crates/core/src/input.rs crates/core/src/job.rs crates/core/src/joblog.rs crates/core/src/options.rs crates/core/src/output.rs crates/core/src/parallel.rs crates/core/src/pipe.rs crates/core/src/progress.rs crates/core/src/queue.rs crates/core/src/remote.rs crates/core/src/runner.rs crates/core/src/semaphore.rs crates/core/src/slot.rs crates/core/src/sshexec.rs crates/core/src/stats.rs crates/core/src/template.rs

/root/repo/target/debug/deps/htpar_core-17151552cc39636e: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/chaos.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/gate.rs crates/core/src/halt.rs crates/core/src/input.rs crates/core/src/job.rs crates/core/src/joblog.rs crates/core/src/options.rs crates/core/src/output.rs crates/core/src/parallel.rs crates/core/src/pipe.rs crates/core/src/progress.rs crates/core/src/queue.rs crates/core/src/remote.rs crates/core/src/runner.rs crates/core/src/semaphore.rs crates/core/src/slot.rs crates/core/src/sshexec.rs crates/core/src/stats.rs crates/core/src/template.rs

crates/core/src/lib.rs:
crates/core/src/batch.rs:
crates/core/src/chaos.rs:
crates/core/src/error.rs:
crates/core/src/executor.rs:
crates/core/src/gate.rs:
crates/core/src/halt.rs:
crates/core/src/input.rs:
crates/core/src/job.rs:
crates/core/src/joblog.rs:
crates/core/src/options.rs:
crates/core/src/output.rs:
crates/core/src/parallel.rs:
crates/core/src/pipe.rs:
crates/core/src/progress.rs:
crates/core/src/queue.rs:
crates/core/src/remote.rs:
crates/core/src/runner.rs:
crates/core/src/semaphore.rs:
crates/core/src/slot.rs:
crates/core/src/sshexec.rs:
crates/core/src/stats.rs:
crates/core/src/template.rs:
