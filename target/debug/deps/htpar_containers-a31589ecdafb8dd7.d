/root/repo/target/debug/deps/htpar_containers-a31589ecdafb8dd7.d: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_containers-a31589ecdafb8dd7.rmeta: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs Cargo.toml

crates/containers/src/lib.rs:
crates/containers/src/runtime.rs:
crates/containers/src/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
