/root/repo/target/debug/deps/fig1_weak_scaling-9d41c5bd541d4242.d: crates/bench/src/bin/fig1_weak_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_weak_scaling-9d41c5bd541d4242.rmeta: crates/bench/src/bin/fig1_weak_scaling.rs Cargo.toml

crates/bench/src/bin/fig1_weak_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
