/root/repo/target/debug/deps/fig5_podman-f80c832b51ec17f1.d: crates/bench/src/bin/fig5_podman.rs

/root/repo/target/debug/deps/fig5_podman-f80c832b51ec17f1: crates/bench/src/bin/fig5_podman.rs

crates/bench/src/bin/fig5_podman.rs:
