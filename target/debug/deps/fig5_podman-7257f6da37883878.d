/root/repo/target/debug/deps/fig5_podman-7257f6da37883878.d: crates/bench/src/bin/fig5_podman.rs

/root/repo/target/debug/deps/fig5_podman-7257f6da37883878: crates/bench/src/bin/fig5_podman.rs

crates/bench/src/bin/fig5_podman.rs:
