/root/repo/target/debug/deps/fig3_launch_rate-1f927291baf47fdc.d: crates/bench/src/bin/fig3_launch_rate.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_launch_rate-1f927291baf47fdc.rmeta: crates/bench/src/bin/fig3_launch_rate.rs Cargo.toml

crates/bench/src/bin/fig3_launch_rate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
