/root/repo/target/debug/deps/htpar_integration_tests-a0a085cf8086fcb5.d: tests/lib.rs

/root/repo/target/debug/deps/libhtpar_integration_tests-a0a085cf8086fcb5.rlib: tests/lib.rs

/root/repo/target/debug/deps/libhtpar_integration_tests-a0a085cf8086fcb5.rmeta: tests/lib.rs

tests/lib.rs:
