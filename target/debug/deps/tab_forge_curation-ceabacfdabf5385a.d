/root/repo/target/debug/deps/tab_forge_curation-ceabacfdabf5385a.d: crates/bench/src/bin/tab_forge_curation.rs

/root/repo/target/debug/deps/libtab_forge_curation-ceabacfdabf5385a.rmeta: crates/bench/src/bin/tab_forge_curation.rs

crates/bench/src/bin/tab_forge_curation.rs:
