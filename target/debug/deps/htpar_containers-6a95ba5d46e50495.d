/root/repo/target/debug/deps/htpar_containers-6a95ba5d46e50495.d: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_containers-6a95ba5d46e50495.rmeta: crates/containers/src/lib.rs crates/containers/src/runtime.rs crates/containers/src/stress.rs Cargo.toml

crates/containers/src/lib.rs:
crates/containers/src/runtime.rs:
crates/containers/src/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
