/root/repo/target/debug/deps/htpar_examples-23988d8b711d5945.d: examples/lib.rs

/root/repo/target/debug/deps/htpar_examples-23988d8b711d5945: examples/lib.rs

examples/lib.rs:
