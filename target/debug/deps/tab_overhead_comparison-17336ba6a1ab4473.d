/root/repo/target/debug/deps/tab_overhead_comparison-17336ba6a1ab4473.d: crates/bench/src/bin/tab_overhead_comparison.rs

/root/repo/target/debug/deps/tab_overhead_comparison-17336ba6a1ab4473: crates/bench/src/bin/tab_overhead_comparison.rs

crates/bench/src/bin/tab_overhead_comparison.rs:
