/root/repo/target/debug/deps/htpar-d18c37dea0f95828.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/htpar-d18c37dea0f95828: crates/cli/src/main.rs

crates/cli/src/main.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
