/root/repo/target/debug/deps/robustness_seeds-67dc8d25446f3514.d: crates/bench/src/bin/robustness_seeds.rs Cargo.toml

/root/repo/target/debug/deps/librobustness_seeds-67dc8d25446f3514.rmeta: crates/bench/src/bin/robustness_seeds.rs Cargo.toml

crates/bench/src/bin/robustness_seeds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
