/root/repo/target/debug/deps/htpar_storage-b9b42319e25513d2.d: crates/storage/src/lib.rs crates/storage/src/dataset.rs crates/storage/src/flow.rs crates/storage/src/lustre.rs crates/storage/src/nvme.rs crates/storage/src/staging.rs crates/storage/src/stripe.rs

/root/repo/target/debug/deps/libhtpar_storage-b9b42319e25513d2.rmeta: crates/storage/src/lib.rs crates/storage/src/dataset.rs crates/storage/src/flow.rs crates/storage/src/lustre.rs crates/storage/src/nvme.rs crates/storage/src/staging.rs crates/storage/src/stripe.rs

crates/storage/src/lib.rs:
crates/storage/src/dataset.rs:
crates/storage/src/flow.rs:
crates/storage/src/lustre.rs:
crates/storage/src/nvme.rs:
crates/storage/src/staging.rs:
crates/storage/src/stripe.rs:
