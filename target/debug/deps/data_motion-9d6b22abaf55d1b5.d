/root/repo/target/debug/deps/data_motion-9d6b22abaf55d1b5.d: examples/data_motion.rs Cargo.toml

/root/repo/target/debug/deps/libdata_motion-9d6b22abaf55d1b5.rmeta: examples/data_motion.rs Cargo.toml

examples/data_motion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
