/root/repo/target/debug/deps/ablation_engine-85f814d27f6369d3.d: crates/bench/src/bin/ablation_engine.rs

/root/repo/target/debug/deps/libablation_engine-85f814d27f6369d3.rmeta: crates/bench/src/bin/ablation_engine.rs

crates/bench/src/bin/ablation_engine.rs:
