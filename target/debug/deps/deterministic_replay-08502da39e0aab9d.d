/root/repo/target/debug/deps/deterministic_replay-08502da39e0aab9d.d: crates/simkit/tests/deterministic_replay.rs

/root/repo/target/debug/deps/deterministic_replay-08502da39e0aab9d: crates/simkit/tests/deterministic_replay.rs

crates/simkit/tests/deterministic_replay.rs:
