/root/repo/target/debug/deps/htpar_examples-9d0590dc252f2c2c.d: examples/lib.rs

/root/repo/target/debug/deps/libhtpar_examples-9d0590dc252f2c2c.rlib: examples/lib.rs

/root/repo/target/debug/deps/libhtpar_examples-9d0590dc252f2c2c.rmeta: examples/lib.rs

examples/lib.rs:
