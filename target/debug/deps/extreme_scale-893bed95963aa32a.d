/root/repo/target/debug/deps/extreme_scale-893bed95963aa32a.d: examples/extreme_scale.rs

/root/repo/target/debug/deps/libextreme_scale-893bed95963aa32a.rmeta: examples/extreme_scale.rs

examples/extreme_scale.rs:
