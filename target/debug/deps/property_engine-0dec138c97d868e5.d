/root/repo/target/debug/deps/property_engine-0dec138c97d868e5.d: tests/property_engine.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_engine-0dec138c97d868e5.rmeta: tests/property_engine.rs Cargo.toml

tests/property_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
