/root/repo/target/debug/deps/serde_derive_stub-f441a1d2ad218725.d: vendor/serde_derive_stub/src/lib.rs

/root/repo/target/debug/deps/libserde_derive_stub-f441a1d2ad218725.rmeta: vendor/serde_derive_stub/src/lib.rs

vendor/serde_derive_stub/src/lib.rs:
