/root/repo/target/debug/deps/data_motion-8d0cc8200f35395d.d: examples/data_motion.rs

/root/repo/target/debug/deps/data_motion-8d0cc8200f35395d: examples/data_motion.rs

examples/data_motion.rs:
