/root/repo/target/debug/deps/crossbeam_channel-bbb60a19129d9084.d: vendor/crossbeam-channel/src/lib.rs

/root/repo/target/debug/deps/crossbeam_channel-bbb60a19129d9084: vendor/crossbeam-channel/src/lib.rs

vendor/crossbeam-channel/src/lib.rs:
