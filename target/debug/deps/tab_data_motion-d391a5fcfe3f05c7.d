/root/repo/target/debug/deps/tab_data_motion-d391a5fcfe3f05c7.d: crates/bench/src/bin/tab_data_motion.rs Cargo.toml

/root/repo/target/debug/deps/libtab_data_motion-d391a5fcfe3f05c7.rmeta: crates/bench/src/bin/tab_data_motion.rs Cargo.toml

crates/bench/src/bin/tab_data_motion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
