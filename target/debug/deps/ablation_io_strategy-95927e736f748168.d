/root/repo/target/debug/deps/ablation_io_strategy-95927e736f748168.d: crates/bench/src/bin/ablation_io_strategy.rs Cargo.toml

/root/repo/target/debug/deps/libablation_io_strategy-95927e736f748168.rmeta: crates/bench/src/bin/ablation_io_strategy.rs Cargo.toml

crates/bench/src/bin/ablation_io_strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
