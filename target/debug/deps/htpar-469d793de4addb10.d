/root/repo/target/debug/deps/htpar-469d793de4addb10.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar-469d793de4addb10.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
