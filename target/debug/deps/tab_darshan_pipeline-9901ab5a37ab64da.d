/root/repo/target/debug/deps/tab_darshan_pipeline-9901ab5a37ab64da.d: crates/bench/src/bin/tab_darshan_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libtab_darshan_pipeline-9901ab5a37ab64da.rmeta: crates/bench/src/bin/tab_darshan_pipeline.rs Cargo.toml

crates/bench/src/bin/tab_darshan_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
