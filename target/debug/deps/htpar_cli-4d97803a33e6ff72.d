/root/repo/target/debug/deps/htpar_cli-4d97803a33e6ff72.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/exec.rs

/root/repo/target/debug/deps/htpar_cli-4d97803a33e6ff72: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/exec.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/exec.rs:
