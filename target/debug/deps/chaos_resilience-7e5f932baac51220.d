/root/repo/target/debug/deps/chaos_resilience-7e5f932baac51220.d: tests/chaos_resilience.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_resilience-7e5f932baac51220.rmeta: tests/chaos_resilience.rs Cargo.toml

tests/chaos_resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
