/root/repo/target/debug/deps/fig4_shifter-0d6d94583848bc0f.d: crates/bench/src/bin/fig4_shifter.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_shifter-0d6d94583848bc0f.rmeta: crates/bench/src/bin/fig4_shifter.rs Cargo.toml

crates/bench/src/bin/fig4_shifter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
