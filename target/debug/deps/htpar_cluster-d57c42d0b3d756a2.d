/root/repo/target/debug/deps/htpar_cluster-d57c42d0b3d756a2.d: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_cluster-d57c42d0b3d756a2.rmeta: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/des.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/launch.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/slurm.rs:
crates/cluster/src/weak_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
