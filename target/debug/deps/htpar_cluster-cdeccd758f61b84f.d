/root/repo/target/debug/deps/htpar_cluster-cdeccd758f61b84f.d: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs

/root/repo/target/debug/deps/htpar_cluster-cdeccd758f61b84f: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs

crates/cluster/src/lib.rs:
crates/cluster/src/des.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/launch.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/slurm.rs:
crates/cluster/src/weak_scaling.rs:
