/root/repo/target/debug/deps/htpar_telemetry-65c3d799c29146af.d: crates/telemetry/src/lib.rs crates/telemetry/src/bus.rs crates/telemetry/src/event.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sinks.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_telemetry-65c3d799c29146af.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/bus.rs crates/telemetry/src/event.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sinks.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/bus.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/sinks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
