/root/repo/target/debug/deps/htpar_wms-4cd5ed8b8cb37f6e.d: crates/wms/src/lib.rs crates/wms/src/compare.rs crates/wms/src/engine.rs crates/wms/src/timeline.rs

/root/repo/target/debug/deps/htpar_wms-4cd5ed8b8cb37f6e: crates/wms/src/lib.rs crates/wms/src/compare.rs crates/wms/src/engine.rs crates/wms/src/timeline.rs

crates/wms/src/lib.rs:
crates/wms/src/compare.rs:
crates/wms/src/engine.rs:
crates/wms/src/timeline.rs:
