/root/repo/target/debug/deps/pipeline_apps-e04a72144c7dff5f.d: tests/pipeline_apps.rs

/root/repo/target/debug/deps/pipeline_apps-e04a72144c7dff5f: tests/pipeline_apps.rs

tests/pipeline_apps.rs:
