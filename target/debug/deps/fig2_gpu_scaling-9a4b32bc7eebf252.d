/root/repo/target/debug/deps/fig2_gpu_scaling-9a4b32bc7eebf252.d: crates/bench/src/bin/fig2_gpu_scaling.rs

/root/repo/target/debug/deps/fig2_gpu_scaling-9a4b32bc7eebf252: crates/bench/src/bin/fig2_gpu_scaling.rs

crates/bench/src/bin/fig2_gpu_scaling.rs:
