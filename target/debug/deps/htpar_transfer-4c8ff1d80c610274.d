/root/repo/target/debug/deps/htpar_transfer-4c8ff1d80c610274.d: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_transfer-4c8ff1d80c610274.rmeta: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs Cargo.toml

crates/transfer/src/lib.rs:
crates/transfer/src/bwlimit.rs:
crates/transfer/src/dtn.rs:
crates/transfer/src/filelist.rs:
crates/transfer/src/rsyncd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
