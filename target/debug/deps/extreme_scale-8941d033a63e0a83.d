/root/repo/target/debug/deps/extreme_scale-8941d033a63e0a83.d: examples/extreme_scale.rs

/root/repo/target/debug/deps/extreme_scale-8941d033a63e0a83: examples/extreme_scale.rs

examples/extreme_scale.rs:
