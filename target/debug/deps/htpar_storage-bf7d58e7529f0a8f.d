/root/repo/target/debug/deps/htpar_storage-bf7d58e7529f0a8f.d: crates/storage/src/lib.rs crates/storage/src/dataset.rs crates/storage/src/flow.rs crates/storage/src/lustre.rs crates/storage/src/nvme.rs crates/storage/src/staging.rs crates/storage/src/stripe.rs

/root/repo/target/debug/deps/libhtpar_storage-bf7d58e7529f0a8f.rlib: crates/storage/src/lib.rs crates/storage/src/dataset.rs crates/storage/src/flow.rs crates/storage/src/lustre.rs crates/storage/src/nvme.rs crates/storage/src/staging.rs crates/storage/src/stripe.rs

/root/repo/target/debug/deps/libhtpar_storage-bf7d58e7529f0a8f.rmeta: crates/storage/src/lib.rs crates/storage/src/dataset.rs crates/storage/src/flow.rs crates/storage/src/lustre.rs crates/storage/src/nvme.rs crates/storage/src/staging.rs crates/storage/src/stripe.rs

crates/storage/src/lib.rs:
crates/storage/src/dataset.rs:
crates/storage/src/flow.rs:
crates/storage/src/lustre.rs:
crates/storage/src/nvme.rs:
crates/storage/src/staging.rs:
crates/storage/src/stripe.rs:
