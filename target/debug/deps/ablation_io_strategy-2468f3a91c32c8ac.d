/root/repo/target/debug/deps/ablation_io_strategy-2468f3a91c32c8ac.d: crates/bench/src/bin/ablation_io_strategy.rs

/root/repo/target/debug/deps/ablation_io_strategy-2468f3a91c32c8ac: crates/bench/src/bin/ablation_io_strategy.rs

crates/bench/src/bin/ablation_io_strategy.rs:
