/root/repo/target/debug/deps/remote_cluster-f3f05dc6a0ce06db.d: examples/remote_cluster.rs

/root/repo/target/debug/deps/remote_cluster-f3f05dc6a0ce06db: examples/remote_cluster.rs

examples/remote_cluster.rs:
