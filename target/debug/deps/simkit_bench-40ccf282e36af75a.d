/root/repo/target/debug/deps/simkit_bench-40ccf282e36af75a.d: crates/bench/benches/simkit_bench.rs Cargo.toml

/root/repo/target/debug/deps/libsimkit_bench-40ccf282e36af75a.rmeta: crates/bench/benches/simkit_bench.rs Cargo.toml

crates/bench/benches/simkit_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
