/root/repo/target/debug/deps/gpu_isolation-68ccb4a97f849384.d: examples/gpu_isolation.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_isolation-68ccb4a97f849384.rmeta: examples/gpu_isolation.rs Cargo.toml

examples/gpu_isolation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
