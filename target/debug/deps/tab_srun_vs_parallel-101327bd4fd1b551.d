/root/repo/target/debug/deps/tab_srun_vs_parallel-101327bd4fd1b551.d: crates/bench/src/bin/tab_srun_vs_parallel.rs

/root/repo/target/debug/deps/tab_srun_vs_parallel-101327bd4fd1b551: crates/bench/src/bin/tab_srun_vs_parallel.rs

crates/bench/src/bin/tab_srun_vs_parallel.rs:
