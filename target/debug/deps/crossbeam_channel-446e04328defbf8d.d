/root/repo/target/debug/deps/crossbeam_channel-446e04328defbf8d.d: vendor/crossbeam-channel/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam_channel-446e04328defbf8d.rmeta: vendor/crossbeam-channel/src/lib.rs Cargo.toml

vendor/crossbeam-channel/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
