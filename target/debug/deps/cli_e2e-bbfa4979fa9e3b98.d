/root/repo/target/debug/deps/cli_e2e-bbfa4979fa9e3b98.d: crates/cli/tests/cli_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libcli_e2e-bbfa4979fa9e3b98.rmeta: crates/cli/tests/cli_e2e.rs Cargo.toml

crates/cli/tests/cli_e2e.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_htpar=placeholder:htpar
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
