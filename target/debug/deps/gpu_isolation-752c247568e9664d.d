/root/repo/target/debug/deps/gpu_isolation-752c247568e9664d.d: examples/gpu_isolation.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_isolation-752c247568e9664d.rmeta: examples/gpu_isolation.rs Cargo.toml

examples/gpu_isolation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
