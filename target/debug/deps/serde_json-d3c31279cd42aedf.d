/root/repo/target/debug/deps/serde_json-d3c31279cd42aedf.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-d3c31279cd42aedf.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
