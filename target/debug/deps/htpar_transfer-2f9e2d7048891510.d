/root/repo/target/debug/deps/htpar_transfer-2f9e2d7048891510.d: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs

/root/repo/target/debug/deps/libhtpar_transfer-2f9e2d7048891510.rmeta: crates/transfer/src/lib.rs crates/transfer/src/bwlimit.rs crates/transfer/src/dtn.rs crates/transfer/src/filelist.rs crates/transfer/src/rsyncd.rs

crates/transfer/src/lib.rs:
crates/transfer/src/bwlimit.rs:
crates/transfer/src/dtn.rs:
crates/transfer/src/filelist.rs:
crates/transfer/src/rsyncd.rs:
