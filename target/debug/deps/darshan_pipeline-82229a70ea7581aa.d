/root/repo/target/debug/deps/darshan_pipeline-82229a70ea7581aa.d: examples/darshan_pipeline.rs

/root/repo/target/debug/deps/darshan_pipeline-82229a70ea7581aa: examples/darshan_pipeline.rs

examples/darshan_pipeline.rs:
