/root/repo/target/debug/deps/data_motion_e2e-421913ff09f177d5.d: tests/data_motion_e2e.rs

/root/repo/target/debug/deps/data_motion_e2e-421913ff09f177d5: tests/data_motion_e2e.rs

tests/data_motion_e2e.rs:
