/root/repo/target/debug/deps/quickstart-2b1911ffba40f8d9.d: examples/quickstart.rs

/root/repo/target/debug/deps/libquickstart-2b1911ffba40f8d9.rmeta: examples/quickstart.rs

examples/quickstart.rs:
