/root/repo/target/debug/deps/htpar_cli-40bcc677ecf7140b.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/exec.rs

/root/repo/target/debug/deps/libhtpar_cli-40bcc677ecf7140b.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/exec.rs

/root/repo/target/debug/deps/libhtpar_cli-40bcc677ecf7140b.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/exec.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/exec.rs:
