/root/repo/target/debug/deps/mini_frontier-e225e6d86d473b4f.d: tests/mini_frontier.rs

/root/repo/target/debug/deps/mini_frontier-e225e6d86d473b4f: tests/mini_frontier.rs

tests/mini_frontier.rs:
