/root/repo/target/debug/deps/htpar_simkit-b65e13275d4c1874.d: crates/simkit/src/lib.rs crates/simkit/src/dist.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libhtpar_simkit-b65e13275d4c1874.rmeta: crates/simkit/src/lib.rs crates/simkit/src/dist.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs Cargo.toml

crates/simkit/src/lib.rs:
crates/simkit/src/dist.rs:
crates/simkit/src/engine.rs:
crates/simkit/src/event.rs:
crates/simkit/src/resource.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
