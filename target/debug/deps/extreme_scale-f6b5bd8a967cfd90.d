/root/repo/target/debug/deps/extreme_scale-f6b5bd8a967cfd90.d: examples/extreme_scale.rs Cargo.toml

/root/repo/target/debug/deps/libextreme_scale-f6b5bd8a967cfd90.rmeta: examples/extreme_scale.rs Cargo.toml

examples/extreme_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
