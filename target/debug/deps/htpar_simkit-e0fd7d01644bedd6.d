/root/repo/target/debug/deps/htpar_simkit-e0fd7d01644bedd6.d: crates/simkit/src/lib.rs crates/simkit/src/dist.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/htpar_simkit-e0fd7d01644bedd6: crates/simkit/src/lib.rs crates/simkit/src/dist.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/dist.rs:
crates/simkit/src/engine.rs:
crates/simkit/src/event.rs:
crates/simkit/src/resource.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
