/root/repo/target/debug/deps/serde-7b3792158228615b.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-7b3792158228615b.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
