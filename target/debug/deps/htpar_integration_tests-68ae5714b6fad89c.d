/root/repo/target/debug/deps/htpar_integration_tests-68ae5714b6fad89c.d: tests/lib.rs

/root/repo/target/debug/deps/htpar_integration_tests-68ae5714b6fad89c: tests/lib.rs

tests/lib.rs:
