/root/repo/target/debug/deps/serde-80efaf817fbcbb52.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-80efaf817fbcbb52.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
