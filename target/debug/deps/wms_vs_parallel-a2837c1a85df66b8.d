/root/repo/target/debug/deps/wms_vs_parallel-a2837c1a85df66b8.d: tests/wms_vs_parallel.rs

/root/repo/target/debug/deps/wms_vs_parallel-a2837c1a85df66b8: tests/wms_vs_parallel.rs

tests/wms_vs_parallel.rs:
