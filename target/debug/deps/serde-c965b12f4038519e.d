/root/repo/target/debug/deps/serde-c965b12f4038519e.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c965b12f4038519e.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c965b12f4038519e.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
