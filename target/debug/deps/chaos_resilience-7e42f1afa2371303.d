/root/repo/target/debug/deps/chaos_resilience-7e42f1afa2371303.d: tests/chaos_resilience.rs

/root/repo/target/debug/deps/chaos_resilience-7e42f1afa2371303: tests/chaos_resilience.rs

tests/chaos_resilience.rs:
