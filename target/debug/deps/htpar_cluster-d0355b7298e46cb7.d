/root/repo/target/debug/deps/htpar_cluster-d0355b7298e46cb7.d: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs

/root/repo/target/debug/deps/libhtpar_cluster-d0355b7298e46cb7.rlib: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs

/root/repo/target/debug/deps/libhtpar_cluster-d0355b7298e46cb7.rmeta: crates/cluster/src/lib.rs crates/cluster/src/des.rs crates/cluster/src/gpu.rs crates/cluster/src/launch.rs crates/cluster/src/machine.rs crates/cluster/src/slurm.rs crates/cluster/src/weak_scaling.rs

crates/cluster/src/lib.rs:
crates/cluster/src/des.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/launch.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/slurm.rs:
crates/cluster/src/weak_scaling.rs:
