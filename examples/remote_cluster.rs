//! Multi-host dispatch: `--sshlogin` as a library.
//!
//! The paper distributes across nodes with a Slurm driver script; GNU
//! Parallel's native alternative is `--sshlogin 8/node01,8/node02 ...`.
//! This example builds a 3-"node" cluster whose ssh transport is a local
//! shim (we have no real remote hosts), runs 24 jobs across it, and
//! shows the per-host placement the slot-aware pool produced.

use std::collections::BTreeMap;

use htpar_core::prelude::*;
use htpar_core::sshexec::multi_host_from_specs;
use htpar_examples::Workspace;

fn main() -> Result<()> {
    let ws = Workspace::new("remote");
    // A stand-in for ssh: prints the target host, then runs the command
    // locally — the data path is identical, minus the network.
    let shim = ws.path("fake-ssh");
    std::fs::write(
        &shim,
        "#!/bin/sh\n# argv: -o BatchMode=yes <host> -- sh -c <cmd>\nhost=$3\nshift 6\nout=$(sh -c \"$1\")\necho \"[$host] $out\"\n",
    )?;
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        std::fs::set_permissions(&shim, std::fs::Permissions::from_mode(0o755))?;
    }

    // parallel -S 4/node01,2/node02,2/node03 ...
    let multi = multi_host_from_specs(
        &["4/node01", "2/node02", "2/node03"],
        1,
        &shim.display().to_string(),
    )?;
    let pool = std::sync::Arc::clone(multi.pool());
    println!(
        "cluster: {} hosts, {} total slots",
        pool.dispatched().len(),
        pool.total_slots()
    );

    let report = Parallel::new("echo task-{} on $(hostname) pid $$ | cut -d' ' -f1-2")
        .jobs(pool.total_slots())
        .keep_order(true)
        .executor(multi)
        .args((1..=24).map(|i| i.to_string()))
        .run()?;

    for r in &report.results {
        print!("{}", r.stdout);
    }
    println!();
    println!("placement (slot-aware, least-loaded host wins):");
    let placement: BTreeMap<String, u64> = pool.dispatched().into_iter().collect();
    for (host, jobs) in &placement {
        println!("  {host}: {jobs} jobs");
    }
    let total: u64 = placement.values().sum();
    assert_eq!(total, 24);
    println!(
        "\nall {} jobs succeeded: {}",
        report.jobs_total,
        report.all_succeeded()
    );
    Ok(())
}
