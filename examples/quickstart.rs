//! Quickstart: the library equivalent of
//!
//! ```text
//! parallel -j4 -k gzip --best {} ::: *.log        # shell idiom
//! ```
//!
//! showing both real-process execution and in-process executors, plus
//! the replacement strings, keep-order output, and the job log.

use htpar_core::prelude::*;

fn main() -> Result<()> {
    // 1. Real processes: `echo` over three inputs, two slots, ordered
    //    output. This is `parallel -j2 -k echo hello-{} ::: a b c`.
    println!("-- real processes --");
    let report = Parallel::new("echo hello-{}")
        .jobs(2)
        .keep_order(true)
        .args(["a", "b", "c"])
        .run()?;
    for result in &report.results {
        print!(
            "seq {} (slot {}): {}",
            result.seq, result.slot, result.stdout
        );
    }
    println!(
        "{} jobs, {} ok, wall {:?}, {:.0} launches/s",
        report.jobs_total, report.succeeded, report.wall, report.launch_rate
    );

    // 2. Replacement strings: path operations on file-name arguments,
    //    dry-run so nothing executes.
    println!("\n-- replacement strings (dry run) --");
    let report = Parallel::new("convert {} thumbs/{/.}.png # from {//}")
        .dry_run(true)
        .keep_order(true)
        .args(["shots/alpha.jpg", "shots/beta.jpg"])
        .run()?;
    for r in &report.results {
        print!("{}", r.stdout);
    }

    // 3. In-process executor: no fork/exec, just the scheduling engine —
    //    the mode the simulators and tests use.
    println!("\n-- in-process executor --");
    let report = Parallel::new("task {#} of slot {%}: {}")
        .jobs(4)
        .keep_order(true)
        .executor(FnExecutor::new(|cmd| {
            Ok(TaskOutput::stdout(format!("[ran] {}\n", cmd.rendered())))
        }))
        .args((1..=6).map(|i| format!("input{i}")))
        .run()?;
    for r in &report.results {
        print!("{}", r.stdout);
    }

    // 4. Cartesian product of input sources: the §IV-B Darshan grid,
    //    `parallel ... ::: {1..12} ::: {0..2}` — 36 jobs.
    println!("\n-- input products --");
    let report = Parallel::new("darshan_arch.py {1} {2}")
        .dry_run(true)
        .args((1..=12).map(|m| m.to_string()))
        .args((0..=2).map(|a| a.to_string()))
        .run()?;
    println!("product of 12 months x 3 apps = {} jobs", report.jobs_total);

    Ok(())
}
