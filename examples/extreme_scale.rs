//! Fig. 1-style extreme-scale run on the simulated Frontier.
//!
//! `cargo run -p htpar-examples --release --bin extreme_scale [nodes]`
//! (default 9,000 — 96% of Frontier, 1.152 M tasks).

use htpar_cluster::weak_scaling::{run, WeakScalingConfig};
use htpar_cluster::{driver_shard, Machine, SlurmEnv};

fn main() {
    let nodes: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9000);
    let machine = Machine::frontier();
    println!(
        "simulated {} @ {} nodes ({:.1}% of the machine), 128 tasks/node",
        machine.name,
        nodes,
        machine.occupancy(nodes) * 100.0
    );

    // The driver script's sharding (listing 1): show that the awk idiom
    // distributes an input list evenly.
    let inputs: Vec<u64> = (0..(nodes as u64 * 128)).collect();
    let shards = driver_shard(&inputs, nodes);
    let env = SlurmEnv {
        nnodes: nodes,
        nodeid: 0,
    };
    println!(
        "driver shard: node 0 takes {} of {} inputs (first: {:?})",
        shards[0].len(),
        inputs.len(),
        &shards[0][..3.min(shards[0].len())]
    );
    assert!(env.takes_line(shards[0][0] + 1));

    let result = run(&WeakScalingConfig::frontier(nodes, 2024));
    let s = result.task_summary();
    println!("\n{} tasks completed", result.tasks_total);
    println!("completion time distribution (seconds from job start):");
    println!("  min {:>7.1}", s.min);
    println!("  q1  {:>7.1}", s.q1);
    println!("  med {:>7.1}", s.median);
    println!("  q3  {:>7.1}", s.q3);
    println!("  p99 {:>7.1}", s.p99);
    println!("  max {:>7.1}", s.max);
    println!(
        "makespan incl. Lustre copy-back: {:.1}s",
        result.makespan_secs
    );
    if nodes >= 9000 {
        println!("(paper: max 561s at 9,000 nodes / 1.152M tasks)");
    }
}
