//! §IV-A — the data fetch-process workflow (listings 2 and 3).
//!
//! The paper's `getdata` script downloads eight GOES-16 sector images
//! every cycle and appends the batch timestamp to a queue file; the
//! `procdata` script follows the queue with `tail -f | parallel -k -j8`
//! and computes per-image cloud fractions with ImageMagick. Here the
//! fetch stage is a producer thread (mock CDN), the queue is a
//! [`FollowQueue`], and the process stage is `Parallel::run_stream` —
//! processing starts the moment a batch lands, while fetching continues.

use htpar_core::prelude::*;
use htpar_examples::Workspace;
use htpar_workloads::goes::{self, Image, REGIONS};

fn main() -> Result<()> {
    let cycles: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let ws = Workspace::new("fetch");
    let data_dir = ws.path("data");
    std::fs::create_dir_all(&data_dir)?;
    println!(
        "fetch-process pipeline: {cycles} fetch cycles x {} regions",
        REGIONS.len()
    );

    // ---- getdata: fetch stage (listing 2) ----
    // Images land as real PGM files in ./data, then the batch timestamp
    // is appended to the queue — exactly the listing's curl + echo.
    let (queue_writer, queue) = FollowQueue::channel();
    let fetch_dir = data_dir.clone();
    let fetcher = std::thread::spawn(move || {
        for cycle in 0..cycles {
            let ts = 1_700_000_000 + cycle * 30; // "every 30 seconds"
                                                 // parallel -j8 curl ... ::: cgl ne nr se sp sr pr pnw
            let images = goes::fetch_all_regions(ts, 96, 96);
            for img in &images {
                std::fs::write(fetch_dir.join(img.file_name()), img.to_pgm()).expect("write image");
            }
            println!("[getdata] fetched {} images at ts={ts}", images.len());
            // echo $ts >> q.proc
            queue_writer.push(ts.to_string());
        }
        // dropping the writer closes the queue (the demo's stop signal)
    });

    // ---- procdata: process stage (listing 3) ----
    // tail -n+0 -f q.proc | parallel -k -j8 'convert ./data/*_{ts}.pgm ...'
    let proc_dir = data_dir.clone();
    let report = Parallel::new("convert ./data/*_{}.pgm -fuzz 10% ... info:")
        .jobs(8)
        .keep_order(true)
        .executor(FnExecutor::new(move |cmd| {
            let ts: u64 = cmd.args[0].parse().map_err(|e| format!("bad ts: {e}"))?;
            // Glob ./data/*_{ts}.pgm and analyze the real files.
            let mut images = Vec::new();
            for region in REGIONS {
                let path = proc_dir.join(format!("{region}_{ts}.pgm"));
                let bytes = std::fs::read(&path).map_err(|e| e.to_string())?;
                images.push(Image::from_pgm(&bytes, region, ts)?);
            }
            Ok(TaskOutput::stdout(goes::process_batch(&images, 10.0)))
        }))
        .run_stream(queue)?;

    fetcher.join().expect("fetcher thread");

    for result in &report.results {
        println!("[procdata]{}", result.stdout.trim_end());
    }
    println!(
        "\nprocessed {} batches, all succeeded: {}",
        report.jobs_total,
        report.all_succeeded()
    );
    Ok(())
}
