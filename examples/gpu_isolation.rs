//! §IV-D — GPU isolation with Celeritas-style tasks.
//!
//! The paper's idiom:
//!
//! ```text
//! parallel -j8 HIP_VISIBLE_DEVICES="$(({%} - 1))" celer-sim {} \
//!     > outdir/{}.out ::: *.inp.json
//! ```
//!
//! Each of the 8 slots is pinned to one GPU via the slot number `{%}`.
//! Here the input files are real `.inp.json` files on disk, the kernel
//! is the toy Monte Carlo transport from `htpar-workloads`, and the
//! "GPU" binding is checked: with isolation every device gets work; a
//! broken binding would pile everything on device 0.

use std::collections::BTreeMap;

use htpar_core::prelude::*;
use htpar_examples::Workspace;
use htpar_workloads::celeritas::{device_for_slot, run_sim, CelerInput};

fn main() -> Result<()> {
    let ws = Workspace::new("gpu");
    // Write 16 .inp.json problem files (two rounds over 8 GPUs).
    let mut inputs = Vec::new();
    for i in 0..16u64 {
        let input = CelerInput::benchmark(20_000 + 1_000 * i, i);
        let path = ws.path(&format!("run{i:02}.inp.json"));
        std::fs::write(&path, input.to_json())?;
        inputs.push(path.display().to_string());
    }
    println!(
        "wrote {} .inp.json inputs under {}",
        inputs.len(),
        ws.root.display()
    );

    let report = Parallel::new("HIP_VISIBLE_DEVICES={%} celer-sim {}")
        .jobs(8)
        .keep_order(true)
        .executor(FnExecutor::new(move |cmd| {
            // The binding the template expresses: slot {%} → device slot-1.
            let device = device_for_slot(cmd.slot);
            let json = std::fs::read_to_string(&cmd.args[0]).map_err(|e| e.to_string())?;
            let input = CelerInput::from_json(&json).map_err(|e| e.to_string())?;
            let output = run_sim(&input, device);
            Ok(TaskOutput::stdout(format!(
                "{}: transmitted {}/{} (mean exit {:.0} MeV) on GPU {}\n",
                cmd.args[0].rsplit('/').next().unwrap_or("?"),
                output.transmitted,
                output.primaries,
                output.mean_exit_energy_mev,
                device,
            )))
        }))
        .args(inputs)
        .run()?;

    for r in &report.results {
        print!("{}", r.stdout);
    }
    println!("\nwork distribution across GPUs:");
    let mut devices_used = 0;
    let mut by_device: BTreeMap<u32, u32> = BTreeMap::new();
    for r in &report.results {
        *by_device.entry(device_for_slot(r.slot)).or_insert(0) += 1;
    }
    for (device, tasks) in &by_device {
        println!("  GPU {device}: {tasks} tasks");
        devices_used += 1;
    }
    println!("devices used: {devices_used}/8 — the {{%}} idiom spread work over every GPU");
    Ok(())
}
