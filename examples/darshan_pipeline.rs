//! §IV-B — massive Darshan log processing.
//!
//! Two pieces from the paper:
//!
//! 1. The **invocation** (listing 5): `parallel -j36 python3
//!    darshan_arch.py ::: {1..12} ::: {0..2}` — a 12×3 product of
//!    (month, app) tasks. Here each task parses and aggregates a real
//!    slice of synthetic Darshan logs.
//! 2. The **staged NVMe prefetch pipeline** (Fig. 7): process dataset
//!    *i* while copying *i+1* and deleting *i−1*; 358 min vs 430 min.
//!    Shown twice: as the stage-barrier plan, and as a dependency DAG
//!    executed through `htpar_core::dag` (the `htpar dag` grammar).
//!
//! `--emit-dag PATH` regenerates `examples/prefetch_pipeline.dag`, the
//! shipped copy of the DAG form (run it with `htpar dag PATH`).

use std::sync::Arc;

use htpar_core::dag::{DagRunner, DagSpec};
use htpar_core::prelude::*;
use htpar_storage::staging::PrefetchPipeline;
use htpar_workloads::darshan::{generate_archive_slice, DarshanLog, IoSummary};

/// Minutes→milliseconds when the ops become real `sleep`s: the 358 min
/// critical path replays in 358 ms.
const DAG_SECS_SCALE: f64 = 1.0 / 60_000.0;

fn main() -> Result<()> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--emit-dag") {
        let path = args
            .get(i + 1)
            .map(String::as_str)
            .unwrap_or("examples/prefetch_pipeline.dag");
        let spec = PrefetchPipeline::darshan_paper().dag_spec(5, DAG_SECS_SCALE);
        std::fs::write(path, &spec).map_err(Error::from)?;
        println!(
            "wrote {path} ({} lines); run it with: htpar dag {path}",
            spec.lines().count()
        );
        return Ok(());
    }
    // ---- listing 5: the 36-way aggregation ----
    let apps = ["gromacs", "lammps", "vasp"];
    println!("processing the month x app grid (12 x 3 = 36 tasks, -j36):");
    let report = Parallel::new("python3 ./darshan_arch.py {1} {2}")
        .jobs(36)
        .keep_order(true)
        .executor(FnExecutor::new(move |cmd| {
            let month: u32 = cmd.args[0].parse().map_err(|e| format!("month: {e}"))?;
            let app_idx: usize = cmd.args[1].parse().map_err(|e| format!("app: {e}"))?;
            let app = apps[app_idx % apps.len()];
            // Generate + serialize + re-parse + aggregate: the real data
            // path a darshan-parser-based script walks.
            let logs = generate_archive_slice(2024, month, app, 200);
            let mut summary = IoSummary::default();
            for log in &logs {
                let reparsed = DarshanLog::parse(&log.to_text()).map_err(|e| e.to_string())?;
                summary.add(&reparsed);
            }
            Ok(TaskOutput::stdout(format!(
                "month {month:>2} {app:<8} jobs {} read {:>6.1} TiB written {:>5.1} TiB opens {}\n",
                summary.jobs,
                summary.bytes_read as f64 / (1u64 << 40) as f64,
                summary.bytes_written as f64 / (1u64 << 40) as f64,
                summary.opens,
            )))
        }))
        .args((1..=12).map(|m| m.to_string()))
        .args((0..=2).map(|a| a.to_string()))
        .run()?;
    for r in &report.results {
        print!("{}", r.stdout);
    }
    println!(
        "{} aggregation tasks, wall {:?}\n",
        report.jobs_total, report.wall
    );

    // ---- Fig. 7: the prefetch pipeline schedule ----
    println!("staged NVMe prefetch pipeline over 5 datasets:");
    let plan = PrefetchPipeline::darshan_paper().plan(5);
    for (i, stage) in plan.stages.iter().enumerate() {
        println!(
            "  stage {}: {} concurrent ops, {:.0} min",
            i + 1,
            stage.ops.len(),
            stage.duration_secs / 60.0
        );
    }
    println!(
        "  pipelined {:.0} min vs all-Lustre {:.0} min -> {:.1}% faster (paper: 358 vs 430, 17%)",
        plan.total_secs / 60.0,
        plan.baseline_secs / 60.0,
        plan.improvement() * 100.0
    );

    // ---- the same pipeline as a dependency DAG ----
    // Barriers become edges: proc_i waits on (copy_i, proc_{i-1}) only,
    // so the copy stream runs ahead of the compute chain.
    let pipeline = PrefetchPipeline::darshan_paper();
    let spec_text = pipeline.dag_spec(5, DAG_SECS_SCALE);
    let dag = DagSpec::parse(&spec_text)?.build()?;
    println!(
        "\nsame pipeline as a DAG ({} ops; grammar: `htpar dag`):",
        dag.len()
    );
    for line in spec_text.lines().filter(|l| !l.starts_with('#')).take(4) {
        println!("  {line}");
    }
    println!("  ...");
    let report = DagRunner {
        options: Options {
            jobs: 3, // one slot each for the proc, copy, and delete streams
            ..Options::default()
        },
        executor: Arc::new(FnExecutor::noop()),
        bus: None,
    }
    .run(&dag)?;
    assert!(report.all_succeeded());
    println!(
        "  executed {} ops in dependency order ({} failed, {} skipped)",
        report.total, report.failed, report.skipped_dep_failed
    );
    println!(
        "  DAG critical path {:.0} min (= barrier plan here: processing dominates the copies)",
        pipeline.dag_makespan_secs(5) / 60.0
    );
    Ok(())
}
