//! Shared helpers for the example binaries.
//!
//! The examples are the library's "listing 1–5" equivalents: each maps a
//! shell idiom from the paper onto the `htpar` API. Run any of them with
//! `cargo run -p htpar-examples --bin <name>`.

use std::path::PathBuf;

/// A per-process temp workspace that cleans up on drop.
pub struct Workspace {
    pub root: PathBuf,
}

impl Workspace {
    /// Create `$TMPDIR/htpar-example-<tag>-<pid>`.
    pub fn new(tag: &str) -> Workspace {
        let root = std::env::temp_dir().join(format!("htpar-example-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create example workspace");
        Workspace { root }
    }

    /// A path inside the workspace.
    pub fn path(&self, rel: &str) -> PathBuf {
        self.root.join(rel)
    }
}

impl Drop for Workspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_creates_and_cleans() {
        let path;
        {
            let ws = Workspace::new("selftest");
            path = ws.root.clone();
            assert!(path.is_dir());
            std::fs::write(ws.path("f.txt"), "x").unwrap();
        }
        assert!(!path.exists());
    }
}
