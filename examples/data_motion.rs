//! §IV-E — parallel data motion with the mini-rsync.
//!
//! The paper's idiom:
//!
//! ```text
//! find /gpfs/proj/data -type f | parallel -j32 -X rsync -R -Ha {} /lustre/proj/
//! ```
//!
//! Here the tree is real (a temp directory), `find` is
//! [`htpar_transfer::find_files`], `-X` batching comes from the engine,
//! and each job runs the real incremental mini-rsync. A second pass
//! shows the incremental property: everything is up to date, nothing
//! recopied.

use std::path::Path;

use htpar_core::prelude::*;
use htpar_examples::Workspace;
use htpar_transfer::{find_files, sync_tree, SyncOptions, SyncStats};

fn run_transfer(files: &[String], dst: &Path) -> Result<(u64, u64)> {
    let dst = dst.to_path_buf();
    let report = Parallel::new("rsync -R -Ha {} /lustre/proj/")
        .jobs(8)
        .context_replace() // -X: pack many files per rsync invocation
        .max_args(16)
        .executor(FnExecutor::new(move |cmd| {
            let opts = SyncOptions {
                relative: true, // -R
                ..Default::default()
            };
            let stats: SyncStats =
                sync_tree(cmd.args.iter(), &dst, &opts).map_err(|e| e.to_string())?;
            Ok(TaskOutput::stdout(format!(
                "{} {}\n",
                stats.files_copied, stats.files_up_to_date
            )))
        }))
        .args(files.to_vec())
        .run()?;
    let mut copied = 0u64;
    let mut skipped = 0u64;
    for r in &report.results {
        let mut parts = r.stdout.split_whitespace();
        copied += parts.next().unwrap_or("0").parse::<u64>().unwrap_or(0);
        skipped += parts.next().unwrap_or("0").parse::<u64>().unwrap_or(0);
    }
    println!(
        "  {} rsync batches over {} files: {copied} copied, {skipped} up-to-date",
        report.jobs_total,
        files.len()
    );
    Ok((copied, skipped))
}

fn main() -> Result<()> {
    let ws = Workspace::new("motion");
    let src = ws.path("gpfs/proj/data");
    for dir in ["raw/2023", "raw/2024", "derived"] {
        for i in 0..40 {
            let p = src.join(dir).join(format!("f{i:03}.dat"));
            std::fs::create_dir_all(p.parent().unwrap())?;
            std::fs::write(&p, format!("payload {dir}/{i}").repeat(64))?;
        }
    }
    let dst = ws.path("lustre/proj");

    // find /gpfs/proj/data -type f
    let files: Vec<String> = find_files(&src)?
        .into_iter()
        .map(|p| p.display().to_string())
        .collect();
    println!("find produced {} files", files.len());

    println!("first transfer (cold destination):");
    let (copied, _) = run_transfer(&files, &dst)?;
    assert_eq!(copied as usize, files.len());

    println!("second transfer (incremental no-op):");
    let (copied, skipped) = run_transfer(&files, &dst)?;
    assert_eq!(copied, 0);
    assert_eq!(skipped as usize, files.len());

    // Verify the mirrored tree byte-for-byte.
    let mut verified = 0;
    for f in &files {
        let mirrored = htpar_transfer::rsyncd::destination_path(Path::new(f), &dst, true);
        assert_eq!(std::fs::read(f)?, std::fs::read(&mirrored)?);
        verified += 1;
    }
    println!(
        "verified {verified} mirrored files byte-for-byte under {}",
        dst.display()
    );
    Ok(())
}
