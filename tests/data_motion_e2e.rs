//! The §IV-E data mover end-to-end on real files: find → batch (-X) →
//! parallel mini-rsync, plus the modeled DTN comparison.

use std::path::Path;

use htpar_core::prelude::*;
use htpar_integration_tests::TestDir;
use htpar_transfer::dtn::{representative_population, MotionComparison};
use htpar_transfer::rsyncd::destination_path;
use htpar_transfer::{find_files, sync_tree, DtnConfig, SyncOptions};

fn build_tree(dir: &TestDir, files: usize) -> Vec<String> {
    let src = dir.path("gpfs/proj/data");
    for i in 0..files {
        let p = src.join(format!("sub{:02}/f{i:04}.dat", i % 7));
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        std::fs::write(&p, format!("content-{i}").repeat(1 + i % 5)).unwrap();
    }
    find_files(&src)
        .unwrap()
        .into_iter()
        .map(|p| p.display().to_string())
        .collect()
}

fn parallel_rsync(files: &[String], dst: &Path, jobs: usize) -> (u64, u64) {
    let dst = dst.to_path_buf();
    let report = Parallel::new("rsync -R -Ha {} /dst/")
        .jobs(jobs)
        .context_replace()
        .max_args(8)
        .executor(FnExecutor::new(move |cmd| {
            let opts = SyncOptions {
                relative: true,
                ..Default::default()
            };
            let stats = sync_tree(cmd.args.iter(), &dst, &opts).map_err(|e| e.to_string())?;
            Ok(TaskOutput::stdout(format!(
                "{} {}",
                stats.files_copied, stats.files_up_to_date
            )))
        }))
        .args(files.to_vec())
        .run()
        .unwrap();
    assert!(report.all_succeeded());
    let mut copied = 0;
    let mut fresh = 0;
    for r in &report.results {
        let mut it = r.stdout.split_whitespace();
        copied += it.next().unwrap().parse::<u64>().unwrap();
        fresh += it.next().unwrap().parse::<u64>().unwrap();
    }
    (copied, fresh)
}

#[test]
fn find_batch_rsync_mirrors_and_is_idempotent() {
    let dir = TestDir::new("motion");
    let files = build_tree(&dir, 60);
    let dst = dir.path("lustre/proj");

    let (copied, skipped) = parallel_rsync(&files, &dst, 8);
    assert_eq!(copied, 60);
    assert_eq!(skipped, 0);

    // Byte-for-byte mirror with -R structure.
    for f in &files {
        let mirrored = destination_path(Path::new(f), &dst, true);
        assert_eq!(
            std::fs::read(f).unwrap(),
            std::fs::read(&mirrored).unwrap(),
            "{mirrored:?}"
        );
    }

    // Idempotent second pass.
    let (copied, skipped) = parallel_rsync(&files, &dst, 8);
    assert_eq!(copied, 0);
    assert_eq!(skipped, 60);
}

#[test]
fn incremental_transfer_moves_only_changes() {
    let dir = TestDir::new("delta");
    let files = build_tree(&dir, 30);
    let dst = dir.path("mirror");
    parallel_rsync(&files, &dst, 4);

    // Touch 5 files with different sizes.
    for f in files.iter().take(5) {
        std::fs::write(f, "MODIFIED".repeat(40)).unwrap(); // size differs from every original
    }
    let (copied, skipped) = parallel_rsync(&files, &dst, 4);
    assert_eq!(copied, 5, "only the changed files move");
    assert_eq!(skipped, 25);
    for f in files.iter().take(5) {
        let mirrored = destination_path(Path::new(f), &dst, true);
        assert_eq!(std::fs::read(f).unwrap(), std::fs::read(&mirrored).unwrap());
    }
}

#[test]
fn concurrent_rsync_streams_do_not_corrupt_disjoint_files() {
    // 8 jobs × batches over 200 files, all into one destination root:
    // directory creation races must be handled by create_dir_all.
    let dir = TestDir::new("concurrent");
    let files = build_tree(&dir, 200);
    let dst = dir.path("dst");
    let (copied, _) = parallel_rsync(&files, &dst, 8);
    assert_eq!(copied, 200);
    let mirrored = find_files(&dst).unwrap();
    assert_eq!(mirrored.len(), 200);
}

#[test]
fn modeled_dtn_comparison_holds_at_smaller_population() {
    // The full check lives in htpar-transfer's tests; here we assert the
    // cross-crate wiring end to end with a different population.
    let dataset = representative_population(31, 20_000, 256.0 * 1024.0 * 1024.0);
    let cmp = MotionComparison::run(&dataset, &DtnConfig::paper_calibrated());
    assert!(cmp.speedup_vs_sequential() > 100.0);
    assert!(cmp.speedup_vs_wms() > 8.0);
    assert!(cmp.parallel.per_node_mbps > 1_500.0);
    assert_eq!(cmp.parallel.streams_used, 256);
}
