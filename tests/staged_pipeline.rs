//! The §IV-B staged prefetch pipeline executed for real on disk: small
//! Darshan datasets move between a "Lustre" directory and an "NVMe"
//! directory while processing runs, with the engine driving each stage's
//! concurrent operations — a working miniature of Fig. 7.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use htpar_core::prelude::*;
use htpar_integration_tests::TestDir;
use htpar_workloads::darshan::{
    generate_archive_slice, process_dir, write_slice_to_dir, IoSummary,
};

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

#[test]
fn five_stage_pipeline_on_real_files_matches_direct_processing() {
    let dir = TestDir::new("staged");
    let lustre = dir.path("lustre");
    let nvme = dir.path("nvme");

    // Five datasets of 40 logs each on "Lustre".
    let n_datasets = 5usize;
    let mut expected = Vec::new();
    for d in 0..n_datasets {
        let logs = generate_archive_slice(100 + d as u64, d as u32 + 1, "app", 40);
        write_slice_to_dir(&lustre.join(format!("D{d}")), &logs).unwrap();
        expected.push(IoSummary::of(&logs));
    }

    // Pipeline state: events record (stage op, dataset, start, end).
    type Event = (String, usize, Instant, Instant);
    let events: Arc<Mutex<Vec<Event>>> = Arc::new(Mutex::new(Vec::new()));
    let mut summaries: Vec<Option<IoSummary>> = vec![None; n_datasets];

    for stage in 0..n_datasets {
        // Each stage runs its concurrent ops through the engine (the
        // Fig. 6 synchronization barrier = the engine's run() boundary).
        let mut ops: Vec<String> = vec![format!("process:{stage}")];
        if stage + 1 < n_datasets {
            ops.push(format!("copy:{}", stage + 1));
        }
        if stage >= 2 {
            // Dataset stage-1 was staged on NVMe and is now processed;
            // dataset 0 was processed straight from Lustre and never
            // occupied NVMe.
            ops.push(format!("delete:{}", stage - 1));
        }
        let lustre2 = lustre.clone();
        let nvme2 = nvme.clone();
        let events2 = Arc::clone(&events);
        let out = Arc::new(Mutex::new(Vec::<(usize, IoSummary)>::new()));
        let out2 = Arc::clone(&out);
        let report = Parallel::new("stage-op {}")
            .jobs(3)
            .executor(FnExecutor::new(move |cmd| {
                let started = Instant::now();
                let (op, ds) = cmd.args[0].split_once(':').unwrap();
                let ds: usize = ds.parse().unwrap();
                match op {
                    "process" => {
                        // Stage 1 reads from Lustre; later stages from NVMe.
                        let src: PathBuf = if ds == 0 {
                            lustre2.join(format!("D{ds}"))
                        } else {
                            nvme2.join(format!("D{ds}"))
                        };
                        let summary = process_dir(&src).map_err(|e| e.to_string())?;
                        out2.lock().unwrap().push((ds, summary));
                    }
                    "copy" => {
                        copy_dir(
                            &lustre2.join(format!("D{ds}")),
                            &nvme2.join(format!("D{ds}")),
                        );
                    }
                    "delete" => {
                        std::fs::remove_dir_all(nvme2.join(format!("D{ds}")))
                            .map_err(|e| e.to_string())?;
                    }
                    other => return Err(format!("unknown op {other}")),
                }
                events2
                    .lock()
                    .unwrap()
                    .push((op.to_string(), ds, started, Instant::now()));
                Ok(TaskOutput::success())
            }))
            .args(ops)
            .run()
            .unwrap();
        assert!(
            report.all_succeeded(),
            "stage {stage}: {:?}",
            report.failures().collect::<Vec<_>>()
        );
        for (ds, summary) in out.lock().unwrap().drain(..) {
            summaries[ds] = Some(summary);
        }
    }

    // Every dataset's pipelined result equals direct processing.
    for (ds, expect) in expected.iter().enumerate() {
        assert_eq!(summaries[ds].as_ref(), Some(expect), "dataset {ds}");
    }

    // Prefetch discipline held: dataset d (d ≥ 1) was copied to NVMe in
    // an earlier stage than it was processed.
    let events = events.lock().unwrap();
    for d in 1..n_datasets {
        let copied = events
            .iter()
            .find(|(op, ds, _, _)| op == "copy" && *ds == d)
            .expect("copy event");
        let processed = events
            .iter()
            .find(|(op, ds, _, _)| op == "process" && *ds == d)
            .expect("process event");
        assert!(
            copied.3 <= processed.2,
            "D{d} copy finished before its processing started"
        );
    }

    // NVMe holds only the final dataset afterwards: D0 was never staged,
    // D1..Dn-2 were staged then deleted, Dn-1 remains.
    assert!(!nvme.join("D0").exists());
    for d in 1..n_datasets - 1 {
        assert!(
            !nvme.join(format!("D{d}")).exists(),
            "D{d} deleted from NVMe"
        );
    }
    assert!(nvme.join(format!("D{}", n_datasets - 1)).exists());
}

#[test]
fn within_stage_ops_actually_overlap() {
    // The engine's 3 slots let process/copy/delete run concurrently: a
    // stage whose ops each sleep 40 ms completes in well under 120 ms.
    let report = Parallel::new("op {}")
        .jobs(3)
        .executor(FnExecutor::sleep(std::time::Duration::from_millis(40)))
        .args(["process:1", "copy:2", "delete:0"])
        .run()
        .unwrap();
    assert!(report.all_succeeded());
    assert!(
        report.wall < std::time::Duration::from_millis(110),
        "ops overlapped: {:?}",
        report.wall
    );
}
